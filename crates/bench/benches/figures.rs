//! Criterion benchmarks timing the computational kernels behind each figure.
//!
//! Besides the printed table, `cargo bench` writes a machine-readable
//! `BENCH_PIM.json` (benchmark name → mean/min/max ns + sample count) into
//! the working directory via the criterion shim's `criterion_main!`; see
//! EXPERIMENTS.md for the `PIM_BENCH_JSON` / `PIM_BENCH_SAMPLES` knobs.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_core::flow::FlowConfig;
use pim_core::pipeline::Pipeline;
use pim_core::scenario::{ScenarioPreset, StandardScenario};
use pim_core::weighting::sensitivity_weighted_norm;
use pim_passivity::check::{assess, assess_with_sampling};
use pim_passivity::enforce::{enforce_passivity, EnforcementConfig, PerturbationNorm};
use pim_passivity::grid::{Adaptive, CrossingRefined, FixedLog, FrequencyGrid};
use pim_pdn::{
    analytic_sensitivity, monte_carlo_sensitivity_with, target_impedance, SensitivityOptions,
};
use pim_runtime::ThreadPool;
use pim_vectfit::{fit_magnitude, vector_fit, MagnitudeFitConfig, VfConfig};

fn bench_figures(c: &mut Criterion) {
    let sc = StandardScenario::reduced().expect("scenario");
    let vf_cfg = VfConfig { n_poles: 14, n_iterations: 4, ..VfConfig::default() };
    let xi = analytic_sensitivity(&sc.data, &sc.network, sc.observation_port).expect("xi");
    let weights = pim_pdn::sensitivity::sensitivity_to_weights(&xi, 1e-2).expect("weights");
    let weighted = vector_fit(&sc.data, Some(&weights), &vf_cfg).expect("weighted fit");
    let omegas = sc.data.grid().omegas();
    let (fo, fx): (Vec<f64>, Vec<f64>) =
        omegas.iter().zip(&xi).filter(|(&w, _)| w > 0.0).map(|(&w, &x)| (w, x)).unzip();
    let xi_model = fit_magnitude(&fo, &fx, &MagnitudeFitConfig { order: 6, ..Default::default() })
        .expect("xi model");

    c.bench_function("fig1_standard_vector_fit", |b| {
        b.iter(|| vector_fit(&sc.data, None, &vf_cfg).expect("fit"))
    });
    c.bench_function("fig2_target_impedance", |b| {
        b.iter(|| target_impedance(&sc.data, &sc.network, sc.observation_port).expect("zt"))
    });
    c.bench_function("fig3_sensitivity_and_magnitude_fit", |b| {
        b.iter(|| {
            let xi = analytic_sensitivity(&sc.data, &sc.network, sc.observation_port).expect("xi");
            let (fo, fx): (Vec<f64>, Vec<f64>) =
                omegas.iter().zip(&xi).filter(|(&w, _)| w > 0.0).map(|(&w, &x)| (w, x)).unzip();
            fit_magnitude(&fo, &fx, &MagnitudeFitConfig { order: 6, ..Default::default() })
                .expect("fit")
        })
    });
    c.bench_function("fig4_passivity_assessment", |b| {
        b.iter(|| assess(&weighted.model, &omegas).expect("assess"))
    });
    // Sampling-strategy ablation on the same assessment: the fixed log grid
    // (no refinement), the historical crossing refinement, and the adaptive
    // bisection that resolves sub-grid violation bands (see the `grid`
    // module of pim-passivity and the Fig. 5 anomaly resolution).
    let base_grid = FrequencyGrid::from_omegas(&omegas);
    let mut sampling = c.benchmark_group("assess_adaptive_vs_fixed");
    sampling.bench_function("assess_fixed_log", |b| {
        b.iter(|| {
            assess_with_sampling(pim_runtime::global(), &weighted.model, &base_grid, &FixedLog)
                .expect("assess")
        })
    });
    sampling.bench_function("assess_crossing_refined", |b| {
        b.iter(|| {
            assess_with_sampling(
                pim_runtime::global(),
                &weighted.model,
                &base_grid,
                &CrossingRefined,
            )
            .expect("assess")
        })
    });
    sampling.bench_function("assess_adaptive", |b| {
        b.iter(|| {
            assess_with_sampling(
                pim_runtime::global(),
                &weighted.model,
                &base_grid,
                &Adaptive::default(),
            )
            .expect("assess")
        })
    });
    sampling.finish();
    let mut slow = c.benchmark_group("enforcement");
    slow.sample_size(10);
    slow.bench_function("fig5_weighted_enforcement", |b| {
        b.iter(|| {
            let norm = sensitivity_weighted_norm(&weighted.model, &xi_model).expect("norm");
            let cfg = EnforcementConfig {
                sweep_points: 120,
                max_iterations: 60,
                sigma_margin: 1e-3,
                ..Default::default()
            };
            enforce_passivity(&weighted.model, &norm, sc.data.grid().max_omega(), &cfg)
        })
    });
    slow.bench_function("ablation_standard_norm_enforcement", |b| {
        b.iter(|| {
            let norm = PerturbationNorm::standard(&weighted.model).expect("norm");
            let cfg = EnforcementConfig {
                sweep_points: 120,
                max_iterations: 60,
                sigma_margin: 1e-3,
                ..Default::default()
            };
            enforce_passivity(&weighted.model, &norm, sc.data.grid().max_omega(), &cfg)
        })
    });
    slow.finish();
    c.bench_function("fig6_model_resampling", |b| {
        b.iter(|| {
            weighted
                .model
                .sample(sc.data.grid(), pim_rfdata::ParameterKind::Scattering, 50.0)
                .expect("sample")
        })
    });
    c.bench_function("ablation_sensitivity_order_4_vs_8", |b| {
        b.iter(|| {
            for order in [4usize, 8] {
                fit_magnitude(&fo, &fx, &MagnitudeFitConfig { order, ..Default::default() })
                    .expect("fit");
            }
        })
    });

    // --- pim-runtime: serial vs parallel trajectories. The parallel
    // variants are bit-identical to the serial ones (pinned by the
    // integration/property suites); these benches track the wall-clock
    // ratio. On a single-core host the ratio is ~1 (the pool degrades to
    // near-serial scheduling); see EXPERIMENTS.md.
    let serial_pool = ThreadPool::new(1);
    // At least 2 threads so the parallel variants exercise the pooled path
    // even on a single-core host (where the ratio is then ~1 by necessity).
    let wide_pool =
        ThreadPool::new(std::thread::available_parallelism().map_or(2, usize::from).max(2));
    let sweep_presets = [ScenarioPreset::Reduced, ScenarioPreset::Minimal];
    let sweep_config = FlowConfig {
        vf: VfConfig { n_poles: 14, n_iterations: 4, ..VfConfig::default() },
        sensitivity_order: 6,
        weight_floor: 1e-2,
        enforcement: EnforcementConfig {
            sweep_points: 120,
            sigma_margin: 1e-3,
            max_iterations: 60,
            ..Default::default()
        },
        run_standard_enforcement: true,
        ..FlowConfig::default()
    };
    let mut sweeps = c.benchmark_group("runtime");
    sweeps.sample_size(5);
    sweeps.bench_function("sweep_presets_serial", |b| {
        b.iter(|| Pipeline::sweep_with(&serial_pool, &sweep_presets, &sweep_config).expect("sweep"))
    });
    sweeps.bench_function("sweep_presets_parallel", |b| {
        b.iter(|| Pipeline::sweep_with(&wide_pool, &sweep_presets, &sweep_config).expect("sweep"))
    });
    sweeps.finish();
    let mc_options = SensitivityOptions { sigma: 1e-5, trials: 64, seed: 0x5EED_CAFE };
    c.bench_function("mc_sensitivity_serial", |b| {
        b.iter(|| {
            monte_carlo_sensitivity_with(
                &serial_pool,
                &sc.data,
                &sc.network,
                sc.observation_port,
                &mc_options,
            )
            .expect("mc")
        })
    });
    c.bench_function("mc_sensitivity_parallel", |b| {
        b.iter(|| {
            monte_carlo_sensitivity_with(
                &wide_pool,
                &sc.data,
                &sc.network,
                sc.observation_port,
                &mc_options,
            )
            .expect("mc")
        })
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
