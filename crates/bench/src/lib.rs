//! # pim-bench
//!
//! Benchmark and figure-regeneration harness for the DATE 2014 reproduction.
//!
//! Every figure of the paper's evaluation section has a regeneration binary
//! in `src/bin/` (printing the series the paper plots) and a Criterion
//! benchmark in `benches/` timing the underlying computation. See
//! `EXPERIMENTS.md` at the workspace root for the experiment index.

#![deny(missing_docs)]

use pim_core::flow::{run_flow, FlowConfig, FlowReport};
use pim_core::scenario::StandardScenario;

/// Builds the reduced reproduction scenario and runs the full flow, the
/// shared setup of every figure binary.
///
/// # Panics
///
/// Panics on any failure of the underlying flow (the harness binaries are
/// diagnostic tools, not library code).
pub fn run_reduced_flow() -> (StandardScenario, FlowReport) {
    let scenario = StandardScenario::reduced().expect("scenario construction");
    let report = run_flow(
        &scenario.data,
        &scenario.network,
        scenario.observation_port,
        &FlowConfig::default(),
    )
    .expect("macromodeling flow");
    (scenario, report)
}
