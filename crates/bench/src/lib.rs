//! # pim-bench
//!
//! Benchmark and figure-regeneration harness for the DATE 2014 reproduction.
//!
//! Every figure of the paper's evaluation section has a regeneration binary
//! in `src/bin/` (printing the series the paper plots) and a Criterion
//! benchmark in `benches/` timing the underlying computation. See
//! `EXPERIMENTS.md` at the workspace root for the experiment index and the
//! mapping from figures to pipeline stages.

#![deny(missing_docs)]

use pim_core::flow::{FlowConfig, FlowReport};
use pim_core::pipeline::Pipeline;
use pim_core::scenario::{ScenarioPreset, StandardScenario};

/// Builds the reduced reproduction scenario and runs the full staged
/// pipeline, the shared setup of every figure binary.
///
/// # Panics
///
/// Panics on any failure of the underlying flow (the harness binaries are
/// diagnostic tools, not library code).
pub fn run_reduced_flow() -> (StandardScenario, FlowReport) {
    let scenario = ScenarioPreset::Reduced.build().expect("scenario construction");
    let report = Pipeline::from_scenario(&scenario, FlowConfig::default())
        .expect("pipeline construction")
        .report()
        .expect("macromodeling flow");
    (scenario, report)
}
