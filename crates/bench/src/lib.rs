//! # pim-bench
//!
//! Benchmark and figure-regeneration harness for the DATE 2014 reproduction.
//!
//! Every figure of the paper's evaluation section has a regeneration binary
//! in `src/bin/` (printing the series the paper plots) and a Criterion
//! benchmark in `benches/` timing the underlying computation. See
//! `EXPERIMENTS.md` at the workspace root for the experiment index and the
//! mapping from figures to pipeline stages.

#![deny(missing_docs)]

use pim_core::flow::{FlowConfig, FlowReport};
use pim_core::pipeline::Pipeline;
use pim_core::scenario::{ScenarioPreset, StandardScenario};
use pim_passivity::EnforcementConfig;
use pim_vectfit::VfConfig;

/// The trimmed "fixture" flow configuration shared by the integration
/// suite (`tests/pipeline.rs` / `tests/fig5_anomaly.rs` at the workspace
/// root) and the harness binaries: the same numerics class as
/// `FlowConfig::default()` at a fraction of the runtime.
/// `tests/fixtures/fig5_iterations.txt` is recorded under it, so anything
/// claiming fixture parity must use exactly this.
pub fn fixture_flow_config() -> FlowConfig {
    FlowConfig {
        vf: VfConfig { n_poles: 18, n_iterations: 5, ..VfConfig::default() },
        sensitivity_order: 6,
        weight_floor: 1e-2,
        enforcement: EnforcementConfig {
            sweep_points: 200,
            sigma_margin: 1e-3,
            max_iterations: 60,
            ..Default::default()
        },
        run_standard_enforcement: true,
        ..FlowConfig::default()
    }
}

/// The trimmed corpus configuration shared by the integration suite
/// (`tests/corpus.rs` / `tests/pipeline.rs`): tiny boards and a low
/// fitting order — the same certification-gate semantics as
/// `CorpusConfig::default()` at a fraction of the runtime, so the
/// workspace tests can afford full corpus runs in debug builds.
pub fn corpus_smoke_config() -> pim_core::CorpusConfig {
    use pim_core::corpus::corpus_flow_config;
    let mut config = pim_core::CorpusConfig::default();
    config.generator.nx = (2, 3);
    config.generator.ny = (2, 3);
    config.generator.die_ports = (1, 1);
    config.generator.decap_ports = (1, 2);
    config.generator.vrm_ports = (1, 1);
    config.generator.stack_stages = (0, 1);
    config.flow = corpus_flow_config(10);
    config.flow.enforcement.sweep_points = 120;
    config.flow.enforcement.max_iterations = 30;
    config.frequency_samples = 40;
    config
}

/// Builds the reduced reproduction scenario and runs the full staged
/// pipeline, the shared setup of every figure binary.
///
/// # Panics
///
/// Panics on any failure of the underlying flow (the harness binaries are
/// diagnostic tools, not library code).
pub fn run_reduced_flow() -> (StandardScenario, FlowReport) {
    let scenario = ScenarioPreset::Reduced.build().expect("scenario construction");
    let report = Pipeline::from_scenario(&scenario, FlowConfig::default())
        .expect("pipeline construction")
        .report()
        .expect("macromodeling flow");
    (scenario, report)
}
