//! Figure 3: first-order sensitivity and its Magnitude-VF rational model.
fn main() {
    let (scenario, report) = pim_bench::run_reduced_flow();
    println!("# Figure 3: sensitivity of the target impedance and rational model (dB)");
    println!("{:>12} {:>12} {:>12}", "freq_Hz", "Xi_data_dB", "Xi_model_dB");
    for (k, &f) in scenario.data.grid().freqs_hz().iter().enumerate() {
        // audit:allow(float-eq): the DC sample is stored as a literal 0.0 by the grid builder
        if f == 0.0 {
            continue;
        }
        let w = 2.0 * std::f64::consts::PI * f;
        let model = report.sensitivity_model.evaluate_magnitude(w).expect("model eval");
        println!(
            "{:>12.4e} {:>12.3} {:>12.3}",
            f,
            20.0 * report.sensitivity[k].max(1e-300).log10(),
            20.0 * model.max(1e-300).log10()
        );
    }
}
