//! Figure 1: data vs. standard (unweighted) model scattering responses.
use pim_rfdata::metrics::{element_magnitude_db, element_phase_deg};
use pim_rfdata::ParameterKind;

fn main() {
    let (scenario, report) = pim_bench::run_reduced_flow();
    let model_data = report
        .standard_fit
        .model
        .sample(scenario.data.grid(), ParameterKind::Scattering, scenario.data.z_ref())
        .expect("sampling");
    println!("# Figure 1: scattering representation, data vs standard model");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "freq_Hz", "S11_dat_dB", "S11_mod_dB", "S12_dat_dB", "S12_mod_dB", "ph11_dat", "ph11_mod"
    );
    let d11 = element_magnitude_db(&scenario.data, 0, 0);
    let m11 = element_magnitude_db(&model_data, 0, 0);
    let d12 = element_magnitude_db(&scenario.data, 0, 1);
    let m12 = element_magnitude_db(&model_data, 0, 1);
    let p11d = element_phase_deg(&scenario.data, 0, 0);
    let p11m = element_phase_deg(&model_data, 0, 0);
    for (k, &f) in scenario.data.grid().freqs_hz().iter().enumerate() {
        println!(
            "{:>12.4e} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9.2} {:>9.2}",
            f, d11[k], m11[k], d12[k], m12[k], p11d[k], p11m[k]
        );
    }
}
