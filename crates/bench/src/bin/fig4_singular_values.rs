//! Figure 4: singular values of the weighted model before / after the
//! sensitivity-weighted passivity enforcement.
use pim_passivity::check::singular_value_sweep;

fn main() {
    let (scenario, report) = pim_bench::run_reduced_flow();
    let omegas = scenario.data.grid().omegas();
    let before = singular_value_sweep(&report.weighted_fit.model, &omegas).expect("sweep");
    let after = singular_value_sweep(report.final_model(), &omegas).expect("sweep");
    println!("# Figure 4: worst singular value before/after weighted enforcement");
    println!("{:>12} {:>14} {:>14}", "freq_Hz", "sigma_before", "sigma_after");
    for (k, &f) in scenario.data.grid().freqs_hz().iter().enumerate() {
        println!("{:>12.4e} {:>14.9} {:>14.9}", f, before[k][0], after[k][0]);
    }
    if let Some(out) = &report.weighted_enforcement {
        println!("# enforcement iterations: {}", out.iterations);
    }
}
