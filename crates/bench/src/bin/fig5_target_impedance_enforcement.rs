//! Figure 5: target impedance after enforcement (nominal, non-passive,
//! standard-norm passive, weighted-norm passive).
fn main() {
    let (_, report) = pim_bench::run_reduced_flow();
    println!("# Figure 5: target impedance after passivity enforcement");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "freq_Hz", "nominal_ohm", "nonpassive_ohm", "std_socp_ohm", "weighted_ohm"
    );
    for (k, &f) in report.nominal_impedance.freqs_hz.iter().enumerate() {
        let std_passive = report
            .standard_passive_eval
            .as_ref()
            .map(|e| e.impedance.values[k].abs())
            .unwrap_or(f64::NAN);
        println!(
            "{:>12.4e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e}",
            f,
            report.nominal_impedance.values[k].abs(),
            report.weighted_model_eval.impedance.values[k].abs(),
            std_passive,
            report.weighted_passive_eval.impedance.values[k].abs()
        );
    }
    println!(
        "# relative RMS error: weighted-passive {:.3}, standard-passive {:?}",
        report.weighted_passive_eval.impedance_relative_error,
        report.standard_passive_eval.as_ref().map(|e| e.impedance_relative_error)
    );
}
