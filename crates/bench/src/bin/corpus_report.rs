//! Stress-corpus report: certification-gated batch run over generated
//! boards.
//!
//! Runs the seeded corpus (`pim_core::corpus`) over `N` boards (default
//! 100, seeds `0..N`), prints one line per scenario plus a class summary,
//! and optionally:
//!
//! * `--check <known_adverse_file>` — exit non-zero if any non-Certified
//!   verdict is **not** listed in the committed known-adverse file, or if
//!   the non-certified family *grew* beyond the committed list (the CI
//!   corpus-smoke gate: new failures must be triaged, known ones must not
//!   block, and robustness regressions that re-expand the family fail
//!   loudly);
//! * `--emit-known-adverse` — print the known-adverse lines for the run
//!   (used to regenerate the committed list);
//! * `--pin-dense-decap <path>` — classify the canonical 5×5 dense-decap
//!   regime (historically the flagship divergence; the recovery ladder now
//!   converges it) and write the replayable fixture with its fresh verdict
//!   to `path` (used to regenerate
//!   `tests/fixtures/corpus/dense-decap-5x5.fixture`);
//! * `--minimize-failures <dir>` — auto-minimize every non-Certified corpus
//!   scenario and write one fixture per seed into `dir`.
//!
//! The report is reproducible from its seed list: same binary, same `N`,
//! same verdicts, bit for bit.

use pim_core::corpus::{
    dense_decap_divergence_case, minimize, Corpus, CorpusClass, CorpusConfig, CorpusVerdict,
    MinimizedFixture,
};
use pim_core::RecoveryRung;
use std::collections::BTreeSet;
use std::time::Instant;

fn fmt_opt(x: Option<f64>) -> String {
    x.map_or("-".to_string(), |v| format!("{v:.6}"))
}

fn known_adverse_line(v: &CorpusVerdict) -> String {
    format!("{} {}", v.seed, v.class)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: usize = 100;
    let mut check: Option<String> = None;
    let mut emit_known = false;
    let mut pin_dense: Option<String> = None;
    let mut minimize_failures: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = Some(it.next().expect("--check needs a path").clone()),
            "--emit-known-adverse" => emit_known = true,
            "--pin-dense-decap" => {
                pin_dense = Some(it.next().expect("--pin-dense-decap needs a path").clone());
            }
            "--minimize-failures" => {
                minimize_failures =
                    Some(it.next().expect("--minimize-failures needs a directory").clone());
            }
            other => n = other.parse().expect("board count must be an integer"),
        }
    }

    if let Some(path) = &pin_dense {
        // The canonical case is pinned as-is (no shrinking): now that the
        // recovery ladder converges it, minimizing toward the convergent
        // class would collapse the board to a trivial one and lose the
        // historically-adversarial regime the fixture exists to exercise.
        let case = dense_decap_divergence_case();
        eprintln!("classifying the canonical dense-decap 5x5 regime (pin, no minimization)");
        let t0 = Instant::now();
        let verdict = case.classify();
        let fixture = MinimizedFixture {
            name: "dense-decap-5x5".to_string(),
            class: verdict.class,
            pinned_iterations: verdict.iterations,
            detail: verdict.detail.clone(),
            case,
        };
        std::fs::write(path, fixture.serialize()).expect("write fixture");
        eprintln!(
            "wrote {path}: {}x{} board, {} decaps, order {}, class {} via rung {} after {} iteration(s) ({:.1}s)",
            fixture.case.board.spec.nx,
            fixture.case.board.spec.ny,
            fixture.case.board.spec.decap_ports.len(),
            fixture.case.flow.vf.n_poles,
            verdict.class.name(),
            verdict.rung.map_or("-", |r| r.name()),
            verdict.iterations,
            t0.elapsed().as_secs_f64()
        );
        return;
    }

    let config = CorpusConfig::default();
    let seeds: Vec<u64> = (0..n as u64).collect();
    let t0 = Instant::now();
    let verdicts = Corpus::run(&config, &seeds);
    let seconds = t0.elapsed().as_secs_f64();

    println!("# Corpus report: {n} boards, seeds 0..{n}, default CorpusConfig");
    println!(
        "# gate: sigma_max <= 1+{:.0e} on {}x audit grid AND weighted beats standard",
        config.sigma_tolerance, config.audit_multiplier
    );
    println!("# seed | class | board | ports | order | iters | rung | audit sigma | Z err weighted | Z err standard | detail");
    for v in &verdicts {
        println!(
            "{:>4} | {:<9} | {}x{} | {} | {} | {:>2} | {:<13} | {} | {} | {} | {}",
            v.seed,
            v.class.name(),
            v.nx,
            v.ny,
            v.ports,
            v.order,
            v.iterations,
            v.rung.map_or("-", |r| r.name()),
            fmt_opt(v.audit_sigma_max),
            fmt_opt(v.weighted_error),
            fmt_opt(v.standard_error),
            v.detail
        );
    }
    let count = |c: CorpusClass| verdicts.iter().filter(|v| v.class == c).count();
    // Wall-clock goes to stderr: the stdout report must be reproducible
    // from its seed list, bit for bit.
    println!(
        "# summary: {} certified, {} adverse, {} diverged, {} failed",
        count(CorpusClass::Certified),
        count(CorpusClass::Adverse),
        count(CorpusClass::Diverged),
        count(CorpusClass::Failed)
    );
    let rung_count = |r: RecoveryRung| verdicts.iter().filter(|v| v.rung == Some(r)).count();
    println!(
        "# recovery: {} primary, {} regularized, {} blended, {} reduced-order",
        rung_count(RecoveryRung::Primary),
        rung_count(RecoveryRung::Regularized),
        rung_count(RecoveryRung::Blended),
        rung_count(RecoveryRung::ReducedOrder)
    );
    eprintln!("corpus run: {n} boards in {seconds:.1}s");

    let non_certified: Vec<&CorpusVerdict> =
        verdicts.iter().filter(|v| v.class != CorpusClass::Certified).collect();

    if emit_known {
        println!("# known-adverse lines (seed class):");
        for v in &non_certified {
            println!("{}", known_adverse_line(v));
        }
    }

    if let Some(dir) = &minimize_failures {
        std::fs::create_dir_all(dir).expect("create fixture directory");
        for v in &non_certified {
            let case = Corpus::case(&config, v.seed).expect("case rebuild");
            match minimize(&case, v.class) {
                Ok((fixture, mv)) => {
                    let path = format!("{dir}/{}.fixture", fixture.name);
                    std::fs::write(&path, fixture.serialize()).expect("write fixture");
                    eprintln!(
                        "minimized seed {} ({}): {}x{} board, {} decaps, order {} -> {path} (iters {})",
                        v.seed,
                        v.class.name(),
                        fixture.case.board.spec.nx,
                        fixture.case.board.spec.ny,
                        fixture.case.board.spec.decap_ports.len(),
                        fixture.case.flow.vf.n_poles,
                        mv.iterations
                    );
                }
                Err(e) => eprintln!("seed {}: minimization failed: {e}", v.seed),
            }
        }
    }

    if let Some(path) = &check {
        let text = std::fs::read_to_string(path).expect("read known-adverse file");
        let known: BTreeSet<String> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        let new: Vec<&CorpusVerdict> = non_certified
            .iter()
            .copied()
            .filter(|v| !known.contains(&known_adverse_line(v)))
            .collect();
        if !new.is_empty() {
            eprintln!("# check FAILED: {} verdict(s) not in {path}:", new.len());
            for v in &new {
                eprintln!("#   seed {} {}: {}", v.seed, v.class.name(), v.detail);
            }
            std::process::exit(1);
        }
        // Shrinkage assertion: the non-certified family must never grow
        // past the committed list — a robustness regression that re-expands
        // the divergence family fails even if every seed is "known".
        if non_certified.len() > known.len() {
            eprintln!(
                "# check FAILED: non-certified family grew to {} (committed list has {})",
                non_certified.len(),
                known.len()
            );
            std::process::exit(1);
        }
        println!(
            "# check: {} non-certified verdict(s), all within {path} ({} listed)",
            non_certified.len(),
            known.len()
        );
    }
}
