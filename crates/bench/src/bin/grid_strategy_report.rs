//! Grid-strategy comparison report: the sampling-layer ablation behind the
//! Fig. 5 anomaly resolution.
//!
//! Runs the flow on the reduced scenario under the historical
//! `CrossingRefined` strategy and the new `Adaptive` strategy, then
//! re-assesses every delivered model on a dense 16× fixed-log verification
//! grid **that neither enforcement was constrained on**. The table shows
//! whether "certified passive" survives contact with a denser grid — the
//! Fig. 5 anomaly is exactly a certification that did not.
//!
//! Scenario selection: `grid_strategy_report [reduced|paper]` (default
//! `reduced`; `paper` is the full-size board and takes minutes).

use pim_core::observer::TraceObserver;
use pim_core::pipeline::Pipeline;
use pim_core::scenario::ScenarioPreset;
use pim_core::FlowConfig;
use pim_passivity::grid::{Adaptive, CrossingRefined, FrequencyGrid};
use pim_passivity::{assess_on, NormKind};
use std::time::Instant;

fn main() {
    let preset = match std::env::args().nth(1).as_deref() {
        Some("paper") => ScenarioPreset::Paper,
        _ => ScenarioPreset::Reduced,
    };
    let scenario = preset.build().expect("scenario construction");
    let config = match preset {
        ScenarioPreset::Paper => FlowConfig::default(),
        _ => pim_bench::fixture_flow_config(),
    };
    let band_max_omega = scenario.data.grid().max_omega();
    // The 16x fixed-log audit grid: same shape as the enforcement grids but
    // 16x denser, and never used as a constraint grid by either strategy.
    let audit =
        FrequencyGrid::enforcement_log(band_max_omega, config.enforcement.sweep_points * 16);
    println!("# Grid-strategy report, scenario `{}`", preset.name());
    println!("# audit grid: {} points (16x fixed-log; neither run constrained on it)", audit.len());
    println!(
        "# strategy | iters | first sigma_before | certified sigma_max | audit sigma_max | audit passive | Z err weighted | Z err standard | grid growth | seconds"
    );
    for strategy in ["crossing-refined", "adaptive"] {
        let mut trace = TraceObserver::new();
        let t0 = Instant::now();
        let pipeline =
            Pipeline::from_scenario(&scenario, config.clone()).expect("pipeline construction");
        let pipeline = match strategy {
            "adaptive" => pipeline.sampling(Adaptive::default()),
            _ => pipeline.sampling(CrossingRefined),
        };
        let report = pipeline.with_observer(&mut trace).report().expect("macromodeling flow");
        let seconds = t0.elapsed().as_secs_f64();
        let weighted = trace.trace(NormKind::SensitivityWeighted);
        let growth = trace.grid_growth(NormKind::SensitivityWeighted);
        let (iters, first_sigma, certified) = match &report.weighted_enforcement {
            Some(out) => (
                out.iterations,
                weighted.first().map(|ev| ev.sigma_before).unwrap_or(f64::NAN),
                out.report.sigma_max,
            ),
            None => (0, f64::NAN, report.sigma_max_before),
        };
        let final_model = report.final_model();
        let audit_report = assess_on(final_model, &audit).expect("audit assessment");
        let std_err = report
            .standard_passive_eval
            .as_ref()
            .map(|e| format!("{:.4}", e.impedance_relative_error))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{strategy} | {iters} | {first_sigma:.6} | {certified:.9} | {:.9} | {} | {:.4} | {std_err} | {:?} | {seconds:.1}",
            audit_report.sigma_max,
            audit_report.passive,
            report.weighted_passive_eval.impedance_relative_error,
            growth,
        );
    }
}
