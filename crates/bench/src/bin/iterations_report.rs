//! Sec. IV text claim: the weighted enforcement converges in a few
//! iterations and its overhead is marginal.
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let (_, report) = pim_bench::run_reduced_flow();
    let total = t0.elapsed();
    println!("# Enforcement iteration report");
    println!("sigma_max before enforcement: {:.6}", report.sigma_max_before);
    match &report.weighted_enforcement {
        Some(out) => {
            println!("weighted-norm enforcement iterations: {}", out.iterations);
            println!("sigma_max history: {:?}", out.sigma_max_history);
        }
        None => println!("weighted model was already passive"),
    }
    if let Some(out) = &report.standard_enforcement {
        println!("standard-norm enforcement iterations: {}", out.iterations);
    }
    println!("total flow wall time: {:.2?}", total);
}
