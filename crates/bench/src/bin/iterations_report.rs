//! Sec. IV text claim: the weighted enforcement converges in a few
//! iterations and its overhead is marginal. Prints the per-iteration
//! enforcement traces (sigma_max, backtracking step, perturbation-norm
//! increment) recorded by a `TraceObserver` — weighted vs standard norm —
//! the diagnostic behind the open Fig. 5 anomaly investigation.
use pim_core::observer::{Stage, TraceObserver};
use pim_core::pipeline::Pipeline;
use pim_core::scenario::ScenarioPreset;
use pim_core::FlowConfig;
use pim_passivity::NormKind;
use std::time::Instant;

fn main() {
    let scenario = ScenarioPreset::Reduced.build().expect("scenario construction");
    let mut trace = TraceObserver::new();
    let t0 = Instant::now();
    let report = Pipeline::from_scenario(&scenario, FlowConfig::default())
        .expect("pipeline construction")
        .with_observer(&mut trace)
        .report()
        .expect("macromodeling flow");
    let total = t0.elapsed();
    println!("# Enforcement iteration report");
    println!("sigma_max before enforcement: {:.6}", report.sigma_max_before);
    for kind in [NormKind::SensitivityWeighted, NormKind::Standard] {
        let t = trace.trace(kind);
        if t.is_empty() {
            println!("{kind}-norm enforcement: no iterations (already passive or skipped)");
            continue;
        }
        let failed = trace.failed.contains(&Stage::Enforcement(kind));
        println!(
            "{kind}-norm enforcement: {} iterations{}",
            t.len(),
            if failed { " (DID NOT CONVERGE — failed attempt shown)" } else { "" }
        );
        println!(
            "{:>6} {:>12} {:>12} {:>8} {:>12} {:>6}",
            "iter", "sigma_in", "sigma_out", "step", "|dS|^2", "cons"
        );
        for ev in &t {
            println!(
                "{:>6} {:>12.6} {:>12.6} {:>8.4} {:>12.3e} {:>6}",
                ev.iteration,
                ev.sigma_before,
                ev.sigma_after,
                ev.step,
                ev.norm_increment,
                ev.constraints
            );
        }
        let acc: f64 = t.iter().map(|ev| ev.norm_increment).sum();
        println!("accumulated perturbation norm: {acc:.6e}");
    }
    println!(
        "stages run: {}",
        trace.completed.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    println!("total flow wall time: {total:.2?}");
}
