//! Figure 2: target impedance after fitting (nominal vs standard vs weighted).
fn main() {
    let (_, report) = pim_bench::run_reduced_flow();
    println!("# Figure 2: target impedance after fitting");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "freq_Hz", "nominal_ohm", "standard_ohm", "weighted_ohm"
    );
    for (k, &f) in report.nominal_impedance.freqs_hz.iter().enumerate() {
        println!(
            "{:>12.4e} {:>14.6e} {:>14.6e} {:>14.6e}",
            f,
            report.nominal_impedance.values[k].abs(),
            report.standard_model_eval.impedance.values[k].abs(),
            report.weighted_model_eval.impedance.values[k].abs()
        );
    }
    println!(
        "# relative RMS error: standard {:.3}, weighted {:.3}",
        report.standard_model_eval.impedance_relative_error,
        report.weighted_model_eval.impedance_relative_error
    );
}
