//! The `unwrap-ratchet` baseline: a committed per-file count of
//! `.unwrap()`/`.expect("")` occurrences in library code that CI gates
//! *may shrink, never grow* — the same shape as the corpus
//! `known_adverse.txt` shrinkage gate.
//!
//! Workflow: reduce unwraps in a file, run
//! `cargo run -p pim-audit -- --write-baseline`, commit the smaller
//! `audit_baseline.txt`. A PR that adds an unwrap to library code fails
//! `--check` until the call is converted to proper error handling (or the
//! addition is consciously ratified by regenerating the baseline — which
//! shows up in review as a baseline diff).

use std::collections::BTreeMap;

/// File header written by [`format`] and tolerated by [`parse`].
const HEADER: &str = "\
# pim-audit unwrap-ratchet baseline: per-file `.unwrap()` / `.expect(\"\")` counts
# in library code (unit-test modules excluded). CI gate: counts may shrink,
# never grow. Regenerate after reducing counts with:
#     cargo run -p pim-audit -- --write-baseline
";

/// Parses a baseline file into `path -> count`. Lines are
/// `<count> <path>`; `#` comments and blank lines are skipped.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(' ')
            .ok_or_else(|| format!("baseline line {}: expected `<count> <path>`", ln + 1))?;
        let count: usize =
            count.parse().map_err(|_| format!("baseline line {}: bad count `{count}`", ln + 1))?;
        map.insert(path.trim().to_string(), count);
    }
    Ok(map)
}

/// Serializes `counts` (zero entries dropped) in the committed format.
pub fn format(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(HEADER);
    let mut total = 0usize;
    for (path, &count) in counts {
        if count == 0 {
            continue;
        }
        total += count;
        out.push_str(&format!("{count} {path}\n"));
    }
    out.push_str(&format!("# total {total}\n"));
    out
}

/// The ratchet comparison: `errors` are growths (fail `--check`),
/// `stale` are entries the baseline holds above the current count (the
/// baseline should be regenerated to lock in the improvement).
pub struct RatchetResult {
    /// Files whose count grew past the baseline (or new files with
    /// unwraps) — these fail the gate.
    pub errors: Vec<String>,
    /// Baseline entries that are now too high (or refer to deleted
    /// files) — informational nudge to regenerate.
    pub stale: Vec<String>,
}

/// Compares current counts against the committed baseline.
pub fn compare(
    current: &BTreeMap<String, usize>,
    baseline: &BTreeMap<String, usize>,
) -> RatchetResult {
    let mut errors = Vec::new();
    let mut stale = Vec::new();
    for (path, &count) in current {
        let allowed = baseline.get(path).copied().unwrap_or(0);
        if count > allowed {
            errors.push(format!(
                "{path}: {count} unwrap/expect(\"\") calls, baseline allows {allowed}"
            ));
        } else if count < allowed {
            stale.push(format!("{path}: baseline {allowed} > current {count}"));
        }
    }
    for (path, &allowed) in baseline {
        if allowed > 0 && !current.contains_key(path) {
            stale.push(format!("{path}: in baseline ({allowed}) but no longer scanned"));
        }
    }
    RatchetResult { errors, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|&(p, c)| (p.to_string(), c)).collect()
    }

    #[test]
    fn round_trip() {
        let c = counts(&[("crates/a/src/lib.rs", 3), ("src/lib.rs", 1), ("zero.rs", 0)]);
        let text = format(&c);
        let parsed = parse(&text).expect("round trip parses");
        assert_eq!(parsed, counts(&[("crates/a/src/lib.rs", 3), ("src/lib.rs", 1)]));
        assert!(text.contains("# total 4"));
    }

    #[test]
    fn growth_fails_shrinkage_nudges() {
        let baseline = counts(&[("a.rs", 2), ("b.rs", 5), ("gone.rs", 1)]);
        let current = counts(&[("a.rs", 3), ("b.rs", 4), ("new.rs", 1)]);
        let result = compare(&current, &baseline);
        assert_eq!(result.errors.len(), 2, "{:?}", result.errors); // a.rs grew, new.rs is new
        assert!(result.errors.iter().any(|e| e.starts_with("a.rs")));
        assert!(result.errors.iter().any(|e| e.starts_with("new.rs")));
        assert_eq!(result.stale.len(), 2, "{:?}", result.stale); // b.rs shrank, gone.rs gone
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(parse("nonsense line").is_err());
        assert!(parse("x a.rs").is_err());
        assert!(parse("# comment only\n\n3 ok.rs\n").is_ok());
    }
}
