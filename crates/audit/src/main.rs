//! The `pim-audit` command-line driver.
//!
//! ```text
//! cargo run -p pim-audit --              # report, always exits 0
//! cargo run -p pim-audit -- --check      # CI gate: exit 1 on any finding
//! cargo run -p pim-audit -- --write-baseline   # regenerate audit_baseline.txt
//! cargo run -p pim-audit -- --root <dir> # audit another workspace
//! ```
//!
//! `--check` fails on: any L1–L5 diagnostic, malformed or unused
//! `audit:allow` markers, a missing baseline file, or any unwrap-ratchet
//! count above the committed `audit_baseline.txt`.

use std::path::PathBuf;
use std::process::ExitCode;

use pim_audit::{audit_workspace, baseline, find_workspace_root};

/// Name of the committed ratchet baseline at the workspace root.
const BASELINE_FILE: &str = "audit_baseline.txt";

fn main() -> ExitCode {
    let mut check = false;
    let mut write_baseline = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "pim-audit: workspace invariant lints\n\
                     usage: pim-audit [--check] [--write-baseline] [--root <dir>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root_arg
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_workspace_root(&cwd)))
    {
        Some(root) => root,
        None => return usage("no workspace root found (run from the workspace or pass --root)"),
    };

    let audit = match audit_workspace(&root) {
        Ok(audit) => audit,
        Err(e) => {
            eprintln!("pim-audit: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for report in &audit.reports {
        for d in &report.audit.diagnostics {
            println!("{}:{}: [{}] {}", report.path, d.line, d.lint, d.message);
            failed = true;
        }
        for (line, lint) in &report.audit.unused_allows {
            println!(
                "{}:{}: [audit-marker] unused audit:allow({lint}) — remove the stale marker",
                report.path, line
            );
            failed = true;
        }
    }

    let baseline_path = root.join(BASELINE_FILE);
    if write_baseline {
        let text = baseline::format(&audit.unwrap_counts);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("pim-audit: writing {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", baseline_path.display());
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match baseline::parse(&text) {
                Ok(committed) => {
                    let ratchet = baseline::compare(&audit.unwrap_counts, &committed);
                    for err in &ratchet.errors {
                        println!("[unwrap-ratchet] {err}");
                        failed = true;
                    }
                    for note in &ratchet.stale {
                        println!("[unwrap-ratchet] stale baseline: {note} — regenerate with --write-baseline");
                    }
                }
                Err(e) => {
                    println!("[unwrap-ratchet] {BASELINE_FILE}: {e}");
                    failed = true;
                }
            },
            Err(_) => {
                println!(
                    "[unwrap-ratchet] {BASELINE_FILE} missing — create it with --write-baseline"
                );
                failed = true;
            }
        }
    }

    let total: usize = audit.unwrap_counts.values().sum();
    println!(
        "pim-audit: {} files scanned, {} violation(s), {} unwrap/expect(\"\") in library code",
        audit.files_scanned,
        audit.violations(),
        total
    );
    if check && failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pim-audit: {msg} (try --help)");
    ExitCode::FAILURE
}
