//! The lint engine: project-invariant checks over the token stream of one
//! source file, with inline `// audit:allow(<lint>): <reason>` suppressions.
//!
//! Lint catalog (deny-by-default unless noted):
//!
//! | name            | invariant |
//! |-----------------|-----------|
//! | `unsafe-safety` | every `unsafe` carries a `// SAFETY:` justification |
//! | `float-eq`      | no float `==`/`!=` (use `to_bits()`; annotate exact-zero fast paths) |
//! | `hash-container`| no `HashMap`/`HashSet` (nondeterministic iteration order) |
//! | `wall-clock`    | no `Instant`/`SystemTime`/OS randomness outside the bench layer |
//! | `thread-spawn`  | no `std::thread` spawning outside `pim-runtime` |
//! | `unwrap-ratchet`| `.unwrap()`/`.expect("")` in library code: counted, ratcheted |
//!
//! `unwrap-ratchet` is report-only: it produces a per-file count that the
//! baseline gate (see [`crate::baseline`]) compares against the committed
//! `audit_baseline.txt` — the count may shrink, never grow.
//!
//! A suppression marker is a comment of the form
//! `// audit:allow(<lint>): <reason>` placed on the offending line or on
//! the line directly above it. The reason is mandatory — every exception
//! is self-documenting — and markers that match no diagnostic are reported
//! (and fail `--check`) so stale exceptions cannot linger.

use crate::lexer::{lex, Token, TokenKind};

/// The deny-by-default lints. `unwrap-ratchet` is not listed here: it
/// emits a count, not diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// L1: `unsafe` blocks/impls/fns must carry a `// SAFETY:` comment.
    UnsafeSafety,
    /// L2: no `==`/`!=` with a float operand, and no bare float literal as
    /// a direct `assert_eq!`/`assert_ne!` operand.
    FloatEq,
    /// L3: no `HashMap`/`HashSet` — iteration order is nondeterministic.
    HashContainer,
    /// L4: no wall-clock or OS-randomness source outside the bench layer.
    WallClock,
    /// L5: no `std::thread` spawning outside `pim-runtime`.
    ThreadSpawn,
}

impl Lint {
    /// All deny-by-default lints.
    pub const ALL: [Lint; 5] = [
        Lint::UnsafeSafety,
        Lint::FloatEq,
        Lint::HashContainer,
        Lint::WallClock,
        Lint::ThreadSpawn,
    ];

    /// The stable name used in diagnostics and `audit:allow(...)` markers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnsafeSafety => "unsafe-safety",
            Lint::FloatEq => "float-eq",
            Lint::HashContainer => "hash-container",
            Lint::WallClock => "wall-clock",
            Lint::ThreadSpawn => "thread-spawn",
        }
    }

    /// Reverse of [`Lint::name`].
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }

    /// Whether this lint applies to the file at workspace-relative `path`.
    /// The bench layer owns the timers; `pim-runtime` owns the threads.
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            Lint::WallClock => {
                !path.starts_with("crates/bench/") && !path.starts_with("crates/criterion-shim/")
            }
            Lint::ThreadSpawn => !path.starts_with("crates/runtime/"),
            _ => true,
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name (or `audit-marker` for malformed suppressions).
    pub lint: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The audit result for one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Violations that survived suppression, sorted by line.
    pub diagnostics: Vec<Diagnostic>,
    /// `unwrap-ratchet` count (`.unwrap()` + `.expect("")` outside
    /// `#[cfg(test)]` modules). `None` when the file is outside the
    /// ratchet scope.
    pub unwrap_count: Option<usize>,
    /// `audit:allow` markers that matched no diagnostic: `(line, lint)`.
    pub unused_allows: Vec<(u32, String)>,
}

struct Marker {
    line: u32,
    lint: Lint,
    used: bool,
}

/// Runs every applicable lint over `source`. `path` is workspace-relative
/// with `/` separators and selects lint scopes; `count_unwraps` enables
/// the `unwrap-ratchet` count (library-crate sources only).
pub fn audit_file(path: &str, source: &str, count_unwraps: bool) -> FileAudit {
    let tokens = lex(source);
    // Indices of non-comment tokens; the lints walk these, while L1 and the
    // suppression markers also need the comments.
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();

    let mut diagnostics = Vec::new();
    let mut markers = collect_markers(&tokens, &mut diagnostics);

    for lint in Lint::ALL {
        if !lint.applies_to(path) {
            continue;
        }
        match lint {
            Lint::UnsafeSafety => lint_unsafe_safety(&tokens, &code, &mut diagnostics),
            Lint::FloatEq => lint_float_eq(&tokens, &code, &mut diagnostics),
            Lint::HashContainer => lint_hash_container(&tokens, &code, &mut diagnostics),
            Lint::WallClock => lint_wall_clock(&tokens, &code, &mut diagnostics),
            Lint::ThreadSpawn => lint_thread_spawn(&tokens, &code, &mut diagnostics),
        }
    }

    // Apply suppressions: a marker covers its own line and the next line.
    diagnostics.retain(|d| {
        if d.lint == "audit-marker" {
            return true;
        }
        let matching = markers
            .iter_mut()
            .find(|m| m.lint.name() == d.lint && (m.line == d.line || m.line + 1 == d.line));
        match matching {
            Some(m) => {
                m.used = true;
                false
            }
            None => true,
        }
    });
    diagnostics.sort_by_key(|d| d.line);

    let unused_allows = markers
        .into_iter()
        .filter(|m| !m.used)
        .map(|m| (m.line, m.lint.name().to_string()))
        .collect();

    let unwrap_count = count_unwraps.then(|| count_unwrap_expect(&tokens, &code));
    FileAudit { diagnostics, unwrap_count, unused_allows }
}

/// Parses `audit:allow(<lint>): <reason>` markers out of the comments.
/// Malformed markers (unknown lint, missing reason) become diagnostics.
/// Doc comments are documentation, not suppressions — text *describing*
/// the marker syntax (this crate's own rustdoc) is not a marker.
fn collect_markers(tokens: &[Token<'_>], diagnostics: &mut Vec<Diagnostic>) -> Vec<Marker> {
    let mut markers = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let doc = tok.text.starts_with("///")
            || tok.text.starts_with("//!")
            || tok.text.starts_with("/**")
            || tok.text.starts_with("/*!");
        if doc {
            continue;
        }
        let Some(at) = tok.text.find("audit:allow") else { continue };
        let rest = &tok.text[at + "audit:allow".len()..];
        let parsed = rest.strip_prefix('(').and_then(|r| {
            let (name, after) = r.split_once(')')?;
            let reason = after.strip_prefix(':')?.trim();
            Some((Lint::from_name(name.trim()), reason))
        });
        match parsed {
            Some((Some(lint), reason)) if !reason.is_empty() => {
                markers.push(Marker { line: tok.line, lint, used: false });
            }
            Some((None, _)) => diagnostics.push(Diagnostic {
                lint: "audit-marker",
                line: tok.line,
                message: "audit:allow names an unknown lint".into(),
            }),
            _ => diagnostics.push(Diagnostic {
                lint: "audit-marker",
                line: tok.line,
                message: "malformed audit:allow marker — expected \
                          `audit:allow(<lint>): <reason>` with a non-empty reason"
                    .into(),
            }),
        }
    }
    markers
}

/// L1: every `unsafe` keyword needs a `// SAFETY:` comment either trailing
/// on the same line or attached above it — "attached" meaning the walk
/// backwards from the keyword meets the comment before any `;`, `{` or `}`
/// (i.e. within the same statement/item header).
fn lint_unsafe_safety(tokens: &[Token<'_>], code: &[usize], diagnostics: &mut Vec<Diagnostic>) {
    for &i in code {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let same_line = tokens
            .iter()
            .any(|t| t.is_comment() && t.line == tok.line && t.text.contains("SAFETY:"));
        let attached_above = tokens[..i].iter().rev().find_map(|t| {
            if t.is_comment() {
                t.text.contains("SAFETY:").then_some(true)
            } else if t.kind == TokenKind::Punct && matches!(t.text, ";" | "{" | "}") {
                Some(false) // left the current statement: stop searching
            } else {
                None
            }
        });
        if !same_line && attached_above != Some(true) {
            diagnostics.push(Diagnostic {
                lint: Lint::UnsafeSafety.name(),
                line: tok.line,
                message: "`unsafe` without an attached `// SAFETY:` justification".into(),
            });
        }
    }
}

/// L2: `==`/`!=` with a float-literal operand, or a bare float literal as
/// a direct operand of `assert_eq!`/`assert_ne!`. (Float-typed variables
/// compared to each other are invisible to a lexer — that residual risk is
/// documented, not pretended away.)
fn lint_float_eq(tokens: &[Token<'_>], code: &[usize], diagnostics: &mut Vec<Diagnostic>) {
    let at = |k: usize| code.get(k).map(|&i| &tokens[i]);
    for k in 0..code.len() {
        let tok = &tokens[code[k]];
        // Operator form: `x == 1.0`, `0.0 != y`, `x == -1.0`.
        if tok.kind == TokenKind::Punct && (tok.text == "==" || tok.text == "!=") {
            // A float literal with a method call on it (`1.5f64.to_bits()`)
            // is not a float operand — that is the blessed idiom itself.
            let bare_float = |k: usize| {
                at(k).is_some_and(|t| t.kind == TokenKind::Float)
                    && !at(k + 1).is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".")
            };
            let prev_float = k > 0 && bare_float(k - 1);
            let next_float = bare_float(k + 1)
                || (at(k + 1).is_some_and(|t| t.kind == TokenKind::Punct && t.text == "-")
                    && bare_float(k + 2));
            if prev_float || next_float {
                diagnostics.push(Diagnostic {
                    lint: Lint::FloatEq.name(),
                    line: tok.line,
                    message: format!(
                        "float `{}` comparison — compare via to_bits() or annotate an \
                         exact-zero fast path",
                        tok.text
                    ),
                });
            }
        }
        // Macro form: assert_eq!(x, 1.0). Only floats at paren depth 1 are
        // direct operands; nested calls like assert_eq!(y, f(1.0)) are not.
        if tok.kind == TokenKind::Ident
            && (tok.text == "assert_eq" || tok.text == "assert_ne")
            && at(k + 1).is_some_and(|t| t.text == "!")
            && at(k + 2).is_some_and(|t| t.text == "(")
        {
            let mut depth = 1i32;
            let mut j = k + 3;
            while depth > 0 {
                let Some(t) = at(j) else { break };
                match (t.kind, t.text) {
                    (TokenKind::Punct, "(" | "[" | "{") => depth += 1,
                    (TokenKind::Punct, ")" | "]" | "}") => depth -= 1,
                    (TokenKind::Float, _)
                        if depth == 1
                            && !at(j + 1)
                                .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".") =>
                    {
                        diagnostics.push(Diagnostic {
                            lint: Lint::FloatEq.name(),
                            line: t.line,
                            message: format!(
                                "float literal compared exactly by {}! — compare via to_bits()",
                                tok.text
                            ),
                        });
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// L3: `HashMap`/`HashSet` anywhere — iteration order varies run to run
/// (and with the hasher seed), which can leak into numeric results.
fn lint_hash_container(tokens: &[Token<'_>], code: &[usize], diagnostics: &mut Vec<Diagnostic>) {
    for &i in code {
        let tok = &tokens[i];
        if tok.kind == TokenKind::Ident && matches!(tok.text, "HashMap" | "HashSet") {
            diagnostics.push(Diagnostic {
                lint: Lint::HashContainer.name(),
                line: tok.line,
                message: format!(
                    "`{}` has nondeterministic iteration order — use BTreeMap/BTreeSet \
                     or sorted access",
                    tok.text
                ),
            });
        }
    }
}

/// L4: wall-clock reads and OS randomness outside the bench layer — both
/// poison reproducibility.
fn lint_wall_clock(tokens: &[Token<'_>], code: &[usize], diagnostics: &mut Vec<Diagnostic>) {
    for &i in code {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let what = match tok.text {
            "Instant" | "SystemTime" => "wall-clock source",
            "RandomState" | "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                "OS randomness"
            }
            _ => continue,
        };
        diagnostics.push(Diagnostic {
            lint: Lint::WallClock.name(),
            line: tok.line,
            message: format!(
                "`{}` is a {what} — only pim-bench/criterion-shim may use it",
                tok.text
            ),
        });
    }
}

/// L5: `thread::spawn` / `thread::Builder` outside `pim-runtime` — all
/// parallelism must go through the deterministic pool.
fn lint_thread_spawn(tokens: &[Token<'_>], code: &[usize], diagnostics: &mut Vec<Diagnostic>) {
    for w in code.windows(3) {
        let (a, b, c) = (&tokens[w[0]], &tokens[w[1]], &tokens[w[2]]);
        if a.kind == TokenKind::Ident
            && a.text == "thread"
            && b.text == "::"
            && c.kind == TokenKind::Ident
            && matches!(c.text, "spawn" | "Builder")
        {
            diagnostics.push(Diagnostic {
                lint: Lint::ThreadSpawn.name(),
                line: c.line,
                message: format!(
                    "`thread::{}` outside pim-runtime — use the deterministic thread pool",
                    c.text
                ),
            });
        }
    }
}

/// L6 count: `.unwrap()` and `.expect("")` occurrences outside
/// `#[cfg(test)]` modules.
fn count_unwrap_expect(tokens: &[Token<'_>], code: &[usize]) -> usize {
    let excluded = cfg_test_ranges(tokens, code);
    let mut count = 0usize;
    for (k, &i) in code.iter().enumerate() {
        if excluded.iter().any(|r| r.contains(&i)) {
            continue;
        }
        let tok = &tokens[i];
        if !(tok.kind == TokenKind::Punct && tok.text == ".") {
            continue;
        }
        let at = |n: usize| code.get(k + n).map(|&j| &tokens[j]);
        let is_unwrap = at(1).is_some_and(|t| t.text == "unwrap")
            && at(2).is_some_and(|t| t.text == "(")
            && at(3).is_some_and(|t| t.text == ")");
        let is_empty_expect = at(1).is_some_and(|t| t.text == "expect")
            && at(2).is_some_and(|t| t.text == "(")
            && at(3).is_some_and(|t| t.kind == TokenKind::Str && t.text == "\"\"")
            && at(4).is_some_and(|t| t.text == ")");
        if is_unwrap || is_empty_expect {
            count += 1;
        }
    }
    count
}

/// Token-index ranges covered by `#[cfg(test)] mod <name> { … }` — unit
/// tests do not count against the unwrap ratchet.
fn cfg_test_ranges(tokens: &[Token<'_>], code: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let texts: Vec<&str> = code.iter().map(|&i| tokens[i].text).collect();
    for k in 0..code.len() {
        if texts[k..].starts_with(&["#", "[", "cfg", "(", "test", ")", "]"]) {
            // Expect `mod <name> {` next (possibly after more attributes —
            // not present in this workspace, so keep it simple).
            let m = k + 7;
            if texts.get(m) == Some(&"mod") && texts.get(m + 2) == Some(&"{") {
                let mut depth = 1usize;
                let mut j = m + 3;
                while j < code.len() && depth > 0 {
                    match texts[j] {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                ranges.push(code[k]..code[j.min(code.len() - 1)] + 1);
            }
        }
    }
    ranges
}
