//! # pim-audit
//!
//! An in-tree, dependency-free static-analysis pass that enforces the
//! workspace's load-bearing invariants — bit-identical parallel-vs-serial
//! execution, deterministic seeded generation, audit-grid certification —
//! at the source level, where end-to-end tests can only catch them after
//! the fact:
//!
//! - [`lexer`]: a comment- and string-aware Rust lexer (raw strings,
//!   nested block comments, char-vs-lifetime disambiguation),
//! - [`lints`]: the lint catalog (L1 `unsafe-safety` … L5 `thread-spawn`,
//!   plus the report-only L6 `unwrap-ratchet`) and the
//!   `// audit:allow(<lint>): <reason>` suppression protocol,
//! - [`baseline`]: the committed `audit_baseline.txt` shrink-only gate.
//!
//! Run it over the workspace with `cargo run -p pim-audit -- --check`
//! (the CI step), or without `--check` for a report that never fails.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod lexer;
pub mod lints;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Library crates whose `src/` trees count against the unwrap ratchet.
/// Tools (`pim-audit` itself, `pim-bench`) and the offline dependency
/// shims are deliberately outside: they are not shipped numeric code.
const RATCHET_CRATES: [&str; 9] =
    ["circuit", "core", "linalg", "passivity", "pdn", "rfdata", "runtime", "statespace", "vectfit"];

/// One file's diagnostics, with its workspace-relative path attached.
#[derive(Debug)]
pub struct FileReport {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The per-file audit (diagnostics, unwrap count, unused allows).
    pub audit: lints::FileAudit,
}

/// The whole-workspace audit result.
#[derive(Debug)]
pub struct WorkspaceAudit {
    /// Per-file reports, sorted by path, files with findings only.
    pub reports: Vec<FileReport>,
    /// `unwrap-ratchet` counts for every in-scope file (zeros included,
    /// so the baseline comparison sees files that became clean).
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl WorkspaceAudit {
    /// Total number of violations (diagnostics + unused suppressions).
    pub fn violations(&self) -> usize {
        self.reports.iter().map(|r| r.audit.diagnostics.len() + r.audit.unused_allows.len()).sum()
    }
}

/// Whether `rel` (workspace-relative, `/` separators) is in the
/// unwrap-ratchet scope: library crate `src/` trees plus the root facade.
fn in_ratchet_scope(rel: &str) -> bool {
    if rel.starts_with("src/") {
        return true;
    }
    RATCHET_CRATES.iter().any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// Recursively collects `.rs` files under `root`'s source directories,
/// skipping build output and VCS metadata.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> =
        ["src", "crates", "tests", "examples"].iter().map(|d| root.join(d)).collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full audit over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns an error string when a source file cannot be read.
pub fn audit_workspace(root: &Path) -> Result<WorkspaceAudit, String> {
    let files = collect_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut reports = Vec::new();
    let mut unwrap_counts = BTreeMap::new();
    let files_scanned = files.len();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&file).map_err(|e| format!("reading {rel}: {e}"))?;
        let in_scope = in_ratchet_scope(&rel);
        let audit = lints::audit_file(&rel, &source, in_scope);
        if let Some(count) = audit.unwrap_count {
            unwrap_counts.insert(rel.clone(), count);
        }
        if !audit.diagnostics.is_empty() || !audit.unused_allows.is_empty() {
            reports.push(FileReport { path: rel, audit });
        }
    }
    Ok(WorkspaceAudit { reports, unwrap_counts, files_scanned })
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
