//! A comment- and string-aware Rust source lexer.
//!
//! This is not a full Rust lexer: it produces exactly the token stream the
//! lint engine needs — identifiers, literals, comments, and punctuation —
//! while getting the *hard* cases right so the lints never fire inside a
//! string or miss a violation hidden after a tricky literal:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments,
//! - string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//!   depth), byte strings (`b"…"`, `br#"…"#`) and C strings (`c"…"`),
//! - char literals vs. lifetimes (`'a'` vs `'a`), including escaped and
//!   multi-byte chars,
//! - raw identifiers (`r#type`),
//! - numeric literals, classifying floats (`1.0`, `1.`, `1e-8`, `1f64`)
//!   apart from integers and from method calls on integers (`1.max(2)`).
//!
//! Every token records its 1-based start line so diagnostics and
//! suppression markers can be matched by line.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Integer literal, including any suffix (`42`, `0xff_u8`).
    Int,
    /// Float literal, including any suffix (`1.0`, `1.`, `1e-8`, `1f64`).
    Float,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Line comment, text includes the leading `//`.
    LineComment,
    /// Block comment (possibly nested), text includes the delimiters.
    BlockComment,
    /// Punctuation / operator. Multi-character operators such as `==`,
    /// `!=`, `::`, `->` are single tokens.
    Punct,
}

/// One lexed token: kind, source text, and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's exact source text.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// `true` for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `source` into tokens. Never panics: malformed input (unterminated
/// strings or comments) is consumed to end-of-input as a single token.
pub fn lex(source: &str) -> Vec<Token<'_>> {
    Lexer { src: source, bytes: source.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token<'a>>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let start_line = self.line;
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.consume_line_comment();
                    self.push(TokenKind::LineComment, start, start_line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.consume_block_comment();
                    self.push(TokenKind::BlockComment, start, start_line);
                }
                b'"' => {
                    self.consume_string();
                    self.push(TokenKind::Str, start, start_line);
                }
                b'\'' => self.consume_quote(start, start_line),
                b'r' | b'b' | b'c' if self.try_prefixed_literal(start, start_line) => {}
                _ if is_ident_start(c) => {
                    self.consume_ident();
                    self.push(TokenKind::Ident, start, start_line);
                }
                _ if c.is_ascii_digit() => {
                    let kind = self.consume_number();
                    self.push(kind, start, start_line);
                }
                _ => {
                    self.consume_punct();
                    self.push(TokenKind::Punct, start, start_line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token { kind, text: &self.src[start..self.pos], line });
    }

    /// Advances one byte, keeping the line counter in sync.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn consume_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    /// Block comments nest: `/* outer /* inner */ still comment */`.
    fn consume_block_comment(&mut self) {
        self.pos += 2; // opening `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
    }

    /// A `"…"` string with `\"` / `\\` escapes; `//` and `/*` inside are
    /// plain text. Assumes `pos` is at the opening quote.
    fn consume_string(&mut self) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' if self.pos + 1 < self.bytes.len() => {
                    self.pos += 1; // skip the escaped byte (covers \" and \\)
                    self.bump();
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` leading `#`s: no
    /// escapes, terminated by `"` followed by the same number of `#`s.
    /// Assumes `pos` is at the opening quote.
    fn consume_raw_string(&mut self, hashes: usize) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut k = 0;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump();
        }
    }

    /// Disambiguates `'` between char literals and lifetimes:
    /// `'a'` / `'\n'` / `'é'` are chars, `'a` / `'static` / `'_` are
    /// lifetimes. Rule: an escape or a non-identifier character after the
    /// quote means char; an identifier is a char only when a closing quote
    /// immediately follows it.
    fn consume_quote(&mut self, start: usize, start_line: u32) {
        self.pos += 1;
        match self.bytes.get(self.pos) {
            Some(b'\\') => {
                // Escaped char literal: skip the escape payload up to the
                // closing quote ('\'', '\u{1F600}', …).
                self.pos += 1;
                if self.pos < self.bytes.len() {
                    self.pos += 1; // the escaped byte itself, covers \'
                }
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump();
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                self.push(TokenKind::Char, start, start_line);
            }
            Some(&c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a / 'abc (lifetime): scan the
                // identifier, then look for a closing quote.
                let mut end = self.pos;
                while end < self.bytes.len() && is_ident_continue(self.bytes[end]) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.pos = end + 1;
                    self.push(TokenKind::Char, start, start_line);
                } else {
                    self.pos = end;
                    self.push(TokenKind::Lifetime, start, start_line);
                }
            }
            Some(_) => {
                // Non-identifier char literal: '+', ' ', or multi-byte like
                // 'é' — consume to the closing quote.
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump();
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                self.push(TokenKind::Char, start, start_line);
            }
            None => self.push(TokenKind::Punct, start, start_line),
        }
    }

    /// Handles `r` / `b` / `c` prefixed literals (`r"…"`, `r#"…"#`,
    /// `r#ident`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`, `cr"…"`). Returns
    /// `false` when the prefix turns out to start a plain identifier, in
    /// which case nothing was consumed.
    fn try_prefixed_literal(&mut self, start: usize, start_line: u32) -> bool {
        let c = self.bytes[self.pos];
        // `br`/`cr` two-byte prefixes reduce to the raw-string case.
        let (raw_at, quote_at) = match (c, self.peek(1)) {
            (b'r', _) => (0usize, 0usize),
            (b'b' | b'c', Some(b'r')) => (1, usize::MAX), // raw only
            (b'b', Some(b'\'')) => {
                // Byte char literal b'x'.
                self.pos += 1;
                let qstart = self.pos;
                self.consume_quote(qstart, start_line);
                // consume_quote pushed a token covering only the quote part;
                // rewrite it to include the `b` prefix.
                if let Some(last) = self.tokens.last_mut() {
                    last.text = &self.src[start..self.pos];
                }
                return true;
            }
            (b'b' | b'c', Some(b'"')) => (usize::MAX, 1), // plain string
            _ => return false,
        };
        if quote_at != usize::MAX && raw_at == usize::MAX {
            // b"…" / c"…": plain string body after the prefix byte.
            self.pos += 1;
            self.consume_string();
            self.push(TokenKind::Str, start, start_line);
            return true;
        }
        // Possible raw string starting at `pos + raw_at` (the `r`).
        let mut hashes = 0usize;
        while self.peek(raw_at + 1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(raw_at + 1 + hashes) {
            Some(b'"') => {
                self.pos += raw_at + 1 + hashes;
                self.consume_raw_string(hashes);
                self.push(TokenKind::Str, start, start_line);
                true
            }
            Some(ch) if raw_at == 0 && hashes == 1 && is_ident_start(ch) => {
                // Raw identifier r#type.
                self.pos += 2;
                self.consume_ident();
                self.push(TokenKind::Ident, start, start_line);
                true
            }
            _ => false,
        }
    }

    fn consume_ident(&mut self) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    /// Numeric literal starting with a digit. Returns `Float` for `1.0`,
    /// `1.`, `1e-8`, `1f64`; `Int` otherwise — including `1.max(2)` and
    /// `0..n`, where the dot does not start a fractional part.
    fn consume_number(&mut self) -> TokenKind {
        let radix_prefix = matches!(
            (self.bytes[self.pos], self.peek(1)),
            (b'0', Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        );
        if radix_prefix {
            self.pos += 2;
            while self.pos < self.bytes.len()
                && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
            {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        let mut float = false;
        self.consume_digits();
        // Fractional part: a dot NOT followed by another dot (range) or an
        // identifier start (method call / field access keeps it an int).
        if self.bytes.get(self.pos) == Some(&b'.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    self.pos += 1;
                    self.consume_digits();
                }
                Some(b'.') => {}                     // range `1..`
                Some(ch) if is_ident_start(ch) => {} // `1.max(2)`
                _ => {
                    float = true; // trailing-dot float `1.`
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if let Some(b'e' | b'E') = self.bytes.get(self.pos).copied() {
            let (sign, first_digit) = match self.peek(1) {
                Some(b'+' | b'-') => (1, self.peek(2)),
                other => (0, other),
            };
            if first_digit.is_some_and(|d| d.is_ascii_digit()) {
                float = true;
                self.pos += 1 + sign;
                self.consume_digits();
            }
        }
        // Suffix (u8, i64, f32, f64, usize, …).
        let suffix_start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn consume_digits(&mut self) {
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
    }

    fn consume_punct(&mut self) {
        const THREE: [&str; 4] = ["..=", "...", "<<=", ">>="];
        const TWO: [&str; 20] = [
            "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=", "/=",
            "%=", "^=", "&=", "|=", "<<", ">>",
        ];
        let rest = &self.src[self.pos..];
        for op in THREE {
            if rest.starts_with(op) {
                self.pos += 3;
                return;
            }
        }
        for op in TWO {
            if rest.starts_with(op) {
                self.pos += 2;
                return;
            }
        }
        // Fall back to a single char (which may be multi-byte).
        let ch_len = rest.chars().next().map_or(1, char::len_utf8);
        self.pos += ch_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_slash_inside_strings() {
        let toks = kinds(r#"let url = "https://example.com"; // trailing"#);
        assert_eq!(toks[3], (TokenKind::Str, "\"https://example.com\""));
        assert_eq!(toks[5], (TokenKind::LineComment, "// trailing"));
        // The `//` inside the string must NOT start a comment: the
        // semicolon after the string is still a real token.
        assert_eq!(toks[4], (TokenKind::Punct, ";"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds(r###"let s = r#"quote " and // comment"# ;"###);
        assert_eq!(toks[3], (TokenKind::Str, r##"r#"quote " and // comment"#"##));
        assert_eq!(toks[4], (TokenKind::Punct, ";"));
        let toks = kinds("r\"plain raw\" == x");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Punct, "=="));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\''; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).map(|t| t.1).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).map(|t| t.1).collect();
        assert_eq!(chars, vec!["'x'", "'\\n'", "'\\''"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = kinds("&'static str; &'_ T");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'static"));
        assert!(toks.contains(&(TokenKind::Lifetime, "'_")));
    }

    #[test]
    fn byte_and_c_strings_and_byte_chars() {
        let toks = kinds(r##"b"bytes" br#"raw"# c"cstr" b'x'"##);
        assert_eq!(toks[0], (TokenKind::Str, "b\"bytes\""));
        assert_eq!(toks[1], (TokenKind::Str, "br#\"raw\"#"));
        assert_eq!(toks[2], (TokenKind::Str, "c\"cstr\""));
        assert_eq!(toks[3], (TokenKind::Char, "b'x'"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#type"));
    }

    #[test]
    fn float_classification() {
        for (src, kind) in [
            ("1.0", TokenKind::Float),
            ("1.", TokenKind::Float),
            ("1e-8", TokenKind::Float),
            ("1E5", TokenKind::Float),
            ("2.5e+3", TokenKind::Float),
            ("1f64", TokenKind::Float),
            ("3_f32", TokenKind::Float),
            ("1_000.25", TokenKind::Float),
            ("42", TokenKind::Int),
            ("0xff", TokenKind::Int),
            ("0b1010", TokenKind::Int),
            ("1usize", TokenKind::Int),
        ] {
            assert_eq!(kinds(src)[0].0, kind, "{src}");
        }
        // `1.max(2)` is a method call on an integer, `0..n` a range.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        let toks = kinds("0..n");
        assert_eq!(toks[0], (TokenKind::Int, "0"));
        assert_eq!(toks[1], (TokenKind::Punct, ".."));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a == b != c :: d -> e => f ..= g");
        let puncts: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Punct).map(|t| t.1).collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "=>", "..="]);
    }

    #[test]
    fn line_numbers_track_all_token_kinds() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text.contains(text)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("two"), Some(2)); // string opens on line 2
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("d */"), Some(4)); // block comment opens on line 4
        let last = toks.last().expect("tokens");
        assert_eq!((last.text, last.line), ("e", 5)); // …and spans to line 5
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        lex("\"unterminated");
        lex("/* unterminated");
        lex("'");
        lex("r#\"unterminated");
        lex("1.");
    }
}
