//! Fixture-based lint tests: one tiny offending snippet per lint,
//! asserting (a) the diagnostic fires on the right line, and (b) an
//! inline `audit:allow` marker silences it.
//!
//! The fixtures are inline raw strings rather than `.rs` files on disk so
//! the workspace scan of the real `pim-audit --check` run never picks
//! deliberately-offending sources up.

use pim_audit::lints::{audit_file, FileAudit};

/// Audits `src` as a library-crate source file (every lint in scope,
/// unwrap counting on).
fn audit(src: &str) -> FileAudit {
    audit_file("crates/linalg/src/fixture.rs", src, true)
}

fn lint_lines(audit: &FileAudit, lint: &str) -> Vec<u32> {
    audit.diagnostics.iter().filter(|d| d.lint == lint).map(|d| d.line).collect()
}

#[test]
fn l1_unsafe_without_safety_fires() {
    let out = audit("fn f(p: *mut f64) {\n    let v = unsafe { *p };\n}\n");
    assert_eq!(lint_lines(&out, "unsafe-safety"), vec![2]);
}

#[test]
fn l1_safety_comment_above_or_trailing_silences() {
    // Comment attached above the statement (the transmute-in-runtime shape).
    let above = "fn f(p: *mut f64) {\n    // SAFETY: p is valid for reads by contract.\n    \
                 let v = unsafe { *p };\n}\n";
    assert!(lint_lines(&audit(above), "unsafe-safety").is_empty());
    // Trailing on the same line.
    let trailing =
        "fn f(p: *mut f64) {\n    let v = unsafe { *p }; // SAFETY: valid by contract\n}\n";
    assert!(lint_lines(&audit(trailing), "unsafe-safety").is_empty());
    // A SAFETY comment separated by a previous statement does NOT attach.
    let detached = "fn f(p: *mut f64) {\n    // SAFETY: stale, belongs to nothing.\n    \
                    let a = 1;\n    let v = unsafe { *p };\n}\n";
    assert_eq!(lint_lines(&audit(detached), "unsafe-safety"), vec![4]);
}

#[test]
fn l1_unsafe_impls_each_need_their_own_safety() {
    let src = "struct P(*mut f64);\n\
               // SAFETY: raw pointer wrapper, panels are disjoint.\n\
               unsafe impl Send for P {}\n\
               unsafe impl Sync for P {}\n";
    // The `}` of the Send impl stops the Sync impl's backward search.
    assert_eq!(lint_lines(&audit(src), "unsafe-safety"), vec![4]);
}

#[test]
fn l2_float_eq_operator_fires_and_allow_silences() {
    let bare = "fn f(x: f64) -> bool {\n    x == 0.0\n}\n";
    assert_eq!(lint_lines(&audit(bare), "float-eq"), vec![2]);

    let allowed =
        "fn f(x: f64) -> bool {\n    // audit:allow(float-eq): exact-zero fast path.\n    \
                   x == 0.0\n}\n";
    let out = audit(allowed);
    assert!(lint_lines(&out, "float-eq").is_empty());
    assert!(out.unused_allows.is_empty(), "the marker must count as used");

    // Trailing marker on the offending line also works.
    let trailing =
        "fn f(x: f64) -> bool {\n    x != 1.0 // audit:allow(float-eq): sentinel value\n}\n";
    assert!(lint_lines(&audit(trailing), "float-eq").is_empty());
}

#[test]
fn l2_assert_eq_with_direct_float_literal_fires() {
    let src = "#[test]\nfn t() {\n    assert_eq!(compute(), 1.5);\n}\n";
    assert_eq!(lint_lines(&audit(src), "float-eq"), vec![3]);
    // A float literal nested in a call is an argument, not a compared
    // operand — out of lexical reach, deliberately not flagged.
    let nested = "fn t() {\n    assert_eq!(compute(1.5), expected);\n}\n";
    assert!(lint_lines(&audit(nested), "float-eq").is_empty());
    // to_bits comparisons are the blessed idiom.
    let blessed = "fn t() {\n    assert_eq!(compute().to_bits(), 1.5f64.to_bits());\n}\n";
    assert!(lint_lines(&audit(blessed), "float-eq").is_empty());
}

#[test]
fn l3_hash_container_fires_and_is_string_safe() {
    let src = "use std::collections::HashMap;\nfn f() {\n    let m: HashMap<u64, f64> = HashMap::new();\n}\n";
    assert_eq!(lint_lines(&audit(src), "hash-container"), vec![1, 3, 3]);
    // The word in a string or comment is not a violation.
    let quoted = "fn f() {\n    let s = \"HashMap\"; // HashMap in prose\n}\n";
    assert!(lint_lines(&audit(quoted), "hash-container").is_empty());
}

#[test]
fn l4_wall_clock_scoped_to_the_bench_layer() {
    let src = "use std::time::Instant;\nfn f() {\n    let t = Instant::now();\n}\n";
    assert_eq!(lint_lines(&audit(src), "wall-clock"), vec![1, 3]);
    // The same source inside the bench layer is fine: it owns the timers.
    let bench = audit_file("crates/bench/src/bin/fig.rs", src, false);
    assert!(lint_lines(&bench, "wall-clock").is_empty());
    let shim = audit_file("crates/criterion-shim/src/lib.rs", src, false);
    assert!(lint_lines(&shim, "wall-clock").is_empty());
}

#[test]
fn l5_thread_spawn_scoped_to_the_runtime() {
    let src =
        "fn f() {\n    std::thread::spawn(|| {});\n    let b = std::thread::Builder::new();\n}\n";
    assert_eq!(lint_lines(&audit(src), "thread-spawn"), vec![2, 3]);
    let runtime = audit_file("crates/runtime/src/lib.rs", src, false);
    assert!(lint_lines(&runtime, "thread-spawn").is_empty());
    // Method calls named `spawn` (the pool's Scope::spawn) are not flagged.
    let pool = "fn f(s: &Scope) {\n    s.spawn(|| {});\n}\n";
    assert!(lint_lines(&audit(pool), "thread-spawn").is_empty());
}

#[test]
fn l6_unwrap_count_skips_test_modules() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n\
               fn g(x: Option<u8>) -> u8 {\n    x.expect(\"\")\n}\n\
               fn h(x: Option<u8>) -> u8 {\n    x.expect(\"a real message\")\n}\n\
               #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u8>.unwrap();\n    }\n}\n";
    let out = audit(src);
    // f's unwrap + g's empty expect; h's messaged expect and the unit
    // test's unwrap do not count.
    assert_eq!(out.unwrap_count, Some(2));
}

#[test]
fn markers_must_be_wellformed_and_used() {
    // Unknown lint name.
    let unknown = "fn f() {} // audit:allow(no-such-lint): reason\n";
    let out = audit(unknown);
    assert_eq!(lint_lines(&out, "audit-marker"), vec![1]);
    // Missing reason.
    let bare = "fn f() {} // audit:allow(float-eq)\n";
    assert_eq!(lint_lines(&audit(bare), "audit-marker"), vec![1]);
    let empty_reason = "fn f() {} // audit:allow(float-eq):\n";
    assert_eq!(lint_lines(&audit(empty_reason), "audit-marker"), vec![1]);
    // Well-formed but matching nothing: reported as unused.
    let unused = "// audit:allow(float-eq): nothing to allow here\nfn f() {}\n";
    let out = audit(unused);
    assert!(out.diagnostics.is_empty());
    assert_eq!(out.unused_allows, vec![(1, "float-eq".to_string())]);
    // A marker only reaches its own line and the next: two lines away it
    // is unused AND the violation still fires.
    let far = "// audit:allow(float-eq): too far away\nfn f(x: f64) -> bool {\n    x == 0.0\n}\n";
    let out = audit(far);
    assert_eq!(lint_lines(&out, "float-eq"), vec![3]);
    assert_eq!(out.unused_allows.len(), 1);
}

#[test]
fn lints_do_not_fire_inside_strings_or_comments() {
    let src = r###"
fn f() {
    let a = "unsafe { HashMap Instant thread::spawn } == 0.0";
    let b = r#"x == 1.0 SystemTime"#;
    // unsafe HashMap Instant::now() x == 0.0 thread::spawn
    /* nested /* HashSet == 2.5 */ still a comment */
}
"###;
    let out = audit(src);
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
}

#[test]
fn lexer_edge_cases_do_not_desynchronize_the_lints() {
    // A char literal, a lifetime, and a `//` inside a string before a real
    // violation: if the lexer mis-tracked any of them the violation line
    // would be wrong or missed.
    let src = "fn f<'a>(c: char, s: &'a str) -> bool {\n    let q = '\\'';\n    \
               let url = \"https://x\";\n    1.0 == 2.0\n}\n";
    let out = audit(src);
    assert_eq!(lint_lines(&out, "float-eq"), vec![4]);
}
