//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment of this reproduction has no network access to a
//! crates registry, so the workspace cannot depend on the real `proptest`.
//! This shim implements the API subset used by the `tests/properties.rs`
//! suites — [`Strategy`] with [`Strategy::prop_map`], range and tuple
//! strategies, [`prop::collection::vec`], the [`proptest!`] block macro with
//! `#![proptest_config(...)]`, and [`prop_assert!`] — as a plain randomized
//! test driver:
//!
//! * each test runs `ProptestConfig::cases` iterations with inputs drawn
//!   from the strategies;
//! * the random stream is deterministic, seeded from the test's name, so a
//!   failure is reproducible by re-running the same test binary;
//! * there is **no shrinking**: a failing case panics with the plain
//!   assertion message instead of a minimized counterexample.
//!
//! Swapping the real `proptest` back in (by pointing the workspace
//! dependency at crates.io) requires no change to the test sources.

#![deny(missing_docs)]

use std::ops::Range;

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The effective case count: the configured count, capped by the
    /// `PIM_PROPTEST_CASES` environment variable when set. Sanitizer runs
    /// (Miri, TSan) use the cap to keep interpreted/instrumented execution
    /// inside CI timeouts without forking the test sources.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PIM_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream driving the strategies.
///
/// Twin of `pim_pdn::rng::SplitMix64` (kept separate so this shim mirrors
/// crates.io `proptest` in having no workspace dependencies) — keep the
/// mixing constants and float conversion in sync with that copy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` using the 53 high bits of [`Self::next_u64`].
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of the test name, used as the per-test RNG seed so distinct
/// tests draw distinct (but stable across runs) input streams.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random test inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "invalid f64 range {:?}", self);
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "invalid i64 range {:?}", self);
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i64
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "invalid usize range {:?}", self);
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Mirror of the `proptest::prop` helper-module hierarchy.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy producing `Vec`s of a fixed length, mirroring
        /// `proptest::collection::vec(element, size)` with an exact size.
        pub struct VecStrategy<S> {
            element: S,
            count: usize,
        }

        /// Builds a [`VecStrategy`] drawing `count` elements from `element`.
        pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
            VecStrategy { element, count }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                (0..self.count).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the test suites import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a [`proptest!`] test, panicking (without
/// shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Declares a block of randomized tests, mirroring `proptest::proptest!`.
///
/// Each `#[test] fn name(arg in strategy, ...)` item expands to a standard
/// `#[test]` that draws `ProptestConfig::cases` input tuples from the
/// strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(stringify!($name)));
                for case in 0..cases {
                    let ($($arg,)+) = ($($crate::Strategy::generate(&$strategy, &mut rng),)+);
                    let run = || -> () { $body };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                        panic!("property {} failed on case {} of {}", stringify!($name), case + 1, cases);
                    }
                }
            }
        )+
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strategy),+) $body
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_strategy_has_requested_len(v in prop::collection::vec(-1.0f64..1.0, 7), scale in 0.5f64..2.0) {
            prop_assert!(v.len() == 7);
            prop_assert!(v.iter().all(|x| (x * scale).abs() < 2.0));
        }

        #[test]
        fn prop_map_applies(n in (1.0f64..2.0).prop_map(|x| x * 10.0)) {
            prop_assert!((10.0..20.0).contains(&n));
        }
    }
}
