//! Property-based tests for the network-parameter conversions.

use pim_linalg::{CMat, Complex64};
use pim_rfdata::network::{s_to_y, s_to_z, y_to_s, z_to_s};
use proptest::prelude::*;

/// Strategy: a random strictly passive impedance matrix Z = R + jX with
/// R diagonally dominant (positive definite real part).
fn passive_impedance(n: usize) -> impl Strategy<Value = CMat> {
    prop::collection::vec(-1.0f64..1.0, 2 * n * n).prop_map(move |v| {
        CMat::from_fn(n, n, |i, j| {
            let re = 5.0 * v[i * n + j];
            let im = 20.0 * v[n * n + i * n + j];
            let mut z = Complex64::new(re, im);
            if i == j {
                z += Complex64::from_real(30.0 + n as f64 * 5.0);
            }
            z
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn z_to_s_round_trip(z in passive_impedance(3)) {
        let s = z_to_s(&z, 50.0).unwrap();
        let back = s_to_z(&s, 50.0).unwrap();
        prop_assert!(back.max_abs_diff(&z) < 1e-7 * z.max_abs().max(1.0));
    }

    #[test]
    fn y_is_inverse_of_z(z in passive_impedance(2)) {
        let s = z_to_s(&z, 50.0).unwrap();
        let y = s_to_y(&s, 50.0).unwrap();
        let prod = y.matmul(&z).unwrap();
        prop_assert!(prod.max_abs_diff(&CMat::identity(2)) < 1e-8);
        let s_back = y_to_s(&y, 50.0).unwrap();
        prop_assert!(s_back.max_abs_diff(&s) < 1e-9);
    }

    #[test]
    fn renormalization_preserves_impedance(z in passive_impedance(2), r in 10.0f64..200.0) {
        let s1 = z_to_s(&z, 50.0).unwrap();
        let s2 = z_to_s(&z, r).unwrap();
        // Both normalizations must describe the same impedance matrix.
        let z1 = s_to_z(&s1, 50.0).unwrap();
        let z2 = s_to_z(&s2, r).unwrap();
        prop_assert!(z1.max_abs_diff(&z2) < 1e-7 * z.max_abs().max(1.0));
    }
}
