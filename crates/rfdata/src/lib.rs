//! # pim-rfdata
//!
//! Frequency-domain port-parameter data handling for the DATE 2014
//! sensitivity-weighted passivity enforcement reproduction.
//!
//! The crate provides:
//!
//! * [`FrequencyGrid`] — logarithmic / linear frequency sampling with an
//!   optional DC point, matching the sampling plan of the paper's test case
//!   (1 kHz – 2 GHz, logarithmic, DC included);
//! * [`NetworkData`] — tabulated multiport network parameters (scattering,
//!   admittance or impedance matrices versus frequency) together with the
//!   conversions between the three representations and scattering
//!   renormalization;
//! * [`touchstone`] — Touchstone v1 reader/writer so synthetic data sets can
//!   be exported to and imported from standard EDA tooling;
//! * [`metrics`] — error norms between two tabulated responses (RMS, maximum,
//!   weighted), used to quantify macromodel accuracy.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frequency;
pub mod metrics;
pub mod network;
pub mod touchstone;

pub use frequency::FrequencyGrid;
pub use network::{NetworkData, ParameterKind};

use std::error::Error;
use std::fmt;

/// Errors produced while building, converting or serializing port data.
#[derive(Debug)]
pub enum RfDataError {
    /// The underlying linear algebra kernel failed (singular conversion, ...).
    Linalg(pim_linalg::LinalgError),
    /// The data set is structurally inconsistent (mismatched lengths, empty).
    Inconsistent(String),
    /// A Touchstone file could not be parsed.
    Parse(String),
    /// An I/O error occurred while reading or writing a file.
    Io(std::io::Error),
}

impl fmt::Display for RfDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfDataError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            RfDataError::Inconsistent(msg) => write!(f, "inconsistent network data: {msg}"),
            RfDataError::Parse(msg) => write!(f, "touchstone parse error: {msg}"),
            RfDataError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for RfDataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RfDataError::Linalg(e) => Some(e),
            RfDataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for RfDataError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        RfDataError::Linalg(e)
    }
}

impl From<std::io::Error> for RfDataError {
    fn from(e: std::io::Error) -> Self {
        RfDataError::Io(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, RfDataError>;
