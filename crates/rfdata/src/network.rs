//! Tabulated multiport network parameters and representation conversions.

use crate::{FrequencyGrid, Result, RfDataError};
use pim_linalg::{CMat, Complex64};

/// The representation in which a [`NetworkData`] set is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParameterKind {
    /// Scattering parameters, normalized to the reference resistance.
    Scattering,
    /// Short-circuit admittance parameters (siemens).
    Admittance,
    /// Open-circuit impedance parameters (ohms).
    Impedance,
}

impl std::fmt::Display for ParameterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParameterKind::Scattering => "S",
            ParameterKind::Admittance => "Y",
            ParameterKind::Impedance => "Z",
        };
        write!(f, "{s}")
    }
}

/// Tabulated frequency responses of a `P`-port linear network.
///
/// Stores one `P × P` complex matrix per frequency sample together with the
/// representation kind and the scattering reference resistance.
///
/// ```
/// use pim_linalg::{CMat, Complex64};
/// use pim_rfdata::{FrequencyGrid, NetworkData, ParameterKind};
///
/// # fn main() -> Result<(), pim_rfdata::RfDataError> {
/// // A frequency-independent 50 Ω resistor to ground at a single port:
/// // its reflection coefficient w.r.t. 50 Ω is 0.
/// let grid = FrequencyGrid::from_hz(vec![1e6, 1e7])?;
/// let z = CMat::from_diag(&[Complex64::from_real(50.0)]);
/// let data = NetworkData::new(grid, vec![z.clone(), z], ParameterKind::Impedance, 50.0)?;
/// let s = data.to_scattering()?;
/// assert!(s.matrix(0)[(0, 0)].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkData {
    grid: FrequencyGrid,
    matrices: Vec<CMat>,
    kind: ParameterKind,
    z_ref: f64,
}

impl NetworkData {
    /// Builds a data set from a frequency grid and per-frequency matrices.
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Inconsistent`] when the number of matrices does
    /// not match the grid, matrices are not square, port counts differ across
    /// frequency, or the reference resistance is not positive.
    pub fn new(
        grid: FrequencyGrid,
        matrices: Vec<CMat>,
        kind: ParameterKind,
        z_ref: f64,
    ) -> Result<Self> {
        if matrices.len() != grid.len() {
            return Err(RfDataError::Inconsistent(format!(
                "expected {} matrices, got {}",
                grid.len(),
                matrices.len()
            )));
        }
        if matrices.is_empty() {
            return Err(RfDataError::Inconsistent("network data must not be empty".into()));
        }
        if !(z_ref > 0.0) || !z_ref.is_finite() {
            return Err(RfDataError::Inconsistent(format!(
                "reference resistance must be positive and finite, got {z_ref}"
            )));
        }
        let ports = matrices[0].rows();
        for (k, m) in matrices.iter().enumerate() {
            if !m.is_square() || m.rows() != ports {
                return Err(RfDataError::Inconsistent(format!(
                    "matrix at sample {k} has shape {:?}, expected {}x{}",
                    m.shape(),
                    ports,
                    ports
                )));
            }
        }
        Ok(NetworkData { grid, matrices, kind, z_ref })
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.matrices[0].rows()
    }

    /// Number of frequency samples.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// `true` when there are no samples (never true for constructed data).
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// The frequency grid.
    pub fn grid(&self) -> &FrequencyGrid {
        &self.grid
    }

    /// Representation kind of the stored matrices.
    pub fn kind(&self) -> ParameterKind {
        self.kind
    }

    /// Scattering reference resistance in ohms.
    pub fn z_ref(&self) -> f64 {
        self.z_ref
    }

    /// The matrix at frequency sample `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn matrix(&self, k: usize) -> &CMat {
        &self.matrices[k]
    }

    /// All matrices, in frequency order.
    pub fn matrices(&self) -> &[CMat] {
        &self.matrices
    }

    /// The `(i, j)` element across all frequencies.
    pub fn element(&self, i: usize, j: usize) -> Vec<Complex64> {
        self.matrices.iter().map(|m| m[(i, j)]).collect()
    }

    /// Applies `f` to every matrix, producing a new data set with the same
    /// grid, kind and reference.
    ///
    /// # Errors
    ///
    /// Propagates [`RfDataError`] from the closure.
    pub fn map_matrices<F>(&self, mut f: F) -> Result<NetworkData>
    where
        F: FnMut(usize, &CMat) -> Result<CMat>,
    {
        let mut out = Vec::with_capacity(self.matrices.len());
        for (k, m) in self.matrices.iter().enumerate() {
            out.push(f(k, m)?);
        }
        NetworkData::new(self.grid.clone(), out, self.kind, self.z_ref)
    }

    /// Converts to scattering parameters (no-op if already scattering).
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Linalg`] if a conversion matrix is singular.
    pub fn to_scattering(&self) -> Result<NetworkData> {
        let matrices: Result<Vec<CMat>> = match self.kind {
            ParameterKind::Scattering => return Ok(self.clone()),
            ParameterKind::Impedance => {
                self.matrices.iter().map(|z| z_to_s(z, self.z_ref)).collect()
            }
            ParameterKind::Admittance => {
                self.matrices.iter().map(|y| y_to_s(y, self.z_ref)).collect()
            }
        };
        NetworkData::new(self.grid.clone(), matrices?, ParameterKind::Scattering, self.z_ref)
    }

    /// Converts to impedance parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Linalg`] if a conversion matrix is singular
    /// (e.g. a short circuit has no impedance representation).
    pub fn to_impedance(&self) -> Result<NetworkData> {
        let matrices: Result<Vec<CMat>> = match self.kind {
            ParameterKind::Impedance => return Ok(self.clone()),
            ParameterKind::Scattering => {
                self.matrices.iter().map(|s| s_to_z(s, self.z_ref)).collect()
            }
            ParameterKind::Admittance => {
                self.matrices.iter().map(|y| y.inverse().map_err(Into::into)).collect()
            }
        };
        NetworkData::new(self.grid.clone(), matrices?, ParameterKind::Impedance, self.z_ref)
    }

    /// Converts to admittance parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Linalg`] if a conversion matrix is singular.
    pub fn to_admittance(&self) -> Result<NetworkData> {
        let matrices: Result<Vec<CMat>> = match self.kind {
            ParameterKind::Admittance => return Ok(self.clone()),
            ParameterKind::Scattering => {
                self.matrices.iter().map(|s| s_to_y(s, self.z_ref)).collect()
            }
            ParameterKind::Impedance => {
                self.matrices.iter().map(|z| z.inverse().map_err(Into::into)).collect()
            }
        };
        NetworkData::new(self.grid.clone(), matrices?, ParameterKind::Admittance, self.z_ref)
    }

    /// Renormalizes scattering data to a new reference resistance.
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Inconsistent`] when the data is not in
    /// scattering form, or [`RfDataError::Linalg`] when a conversion is
    /// singular.
    pub fn renormalize(&self, new_z_ref: f64) -> Result<NetworkData> {
        if self.kind != ParameterKind::Scattering {
            return Err(RfDataError::Inconsistent(
                "renormalize requires scattering parameters".into(),
            ));
        }
        if !(new_z_ref > 0.0) || !new_z_ref.is_finite() {
            return Err(RfDataError::Inconsistent(format!(
                "new reference resistance must be positive and finite, got {new_z_ref}"
            )));
        }
        // S_old -> Z (w.r.t. old reference) -> S_new (w.r.t. new reference).
        let matrices: Result<Vec<CMat>> =
            self.matrices.iter().map(|s| z_to_s(&s_to_z(s, self.z_ref)?, new_z_ref)).collect();
        NetworkData::new(self.grid.clone(), matrices?, ParameterKind::Scattering, new_z_ref)
    }

    /// Extracts a sub-network keeping only the listed ports (in the given
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Inconsistent`] when a port index is out of
    /// range or the list is empty.
    pub fn select_ports(&self, ports: &[usize]) -> Result<NetworkData> {
        if ports.is_empty() {
            return Err(RfDataError::Inconsistent(
                "select_ports requires at least one port".into(),
            ));
        }
        let p = self.ports();
        if let Some(&bad) = ports.iter().find(|&&i| i >= p) {
            return Err(RfDataError::Inconsistent(format!(
                "port index {bad} out of range for {p}-port data"
            )));
        }
        let matrices: Vec<CMat> = self
            .matrices
            .iter()
            .map(|m| CMat::from_fn(ports.len(), ports.len(), |i, j| m[(ports[i], ports[j])]))
            .collect();
        NetworkData::new(self.grid.clone(), matrices, self.kind, self.z_ref)
    }
}

/// Converts an impedance matrix to scattering with reference resistance `z_ref`:
/// `S = (Z − R₀I)(Z + R₀I)⁻¹`.
///
/// # Errors
///
/// Returns [`RfDataError::Linalg`] when `Z + R₀I` is singular.
pub fn z_to_s(z: &CMat, z_ref: f64) -> Result<CMat> {
    let n = z.rows();
    let r0 = CMat::identity(n).scaled_real(z_ref);
    let num = z - &r0;
    let den = z + &r0;
    Ok(num.matmul(&den.inverse()?)?)
}

/// Converts a scattering matrix to impedance: `Z = R₀(I + S)(I − S)⁻¹`.
///
/// # Errors
///
/// Returns [`RfDataError::Linalg`] when `I − S` is singular.
pub fn s_to_z(s: &CMat, z_ref: f64) -> Result<CMat> {
    let n = s.rows();
    let i = CMat::identity(n);
    let num = &i + s;
    let den = &i - s;
    Ok(num.matmul(&den.inverse()?)?.scaled_real(z_ref))
}

/// Converts a scattering matrix to admittance: `Y = R₀⁻¹(I − S)(I + S)⁻¹`.
///
/// This is the transformation entering the loaded PDN impedance of eq. (2) in
/// the paper.
///
/// # Errors
///
/// Returns [`RfDataError::Linalg`] when `I + S` is singular.
pub fn s_to_y(s: &CMat, z_ref: f64) -> Result<CMat> {
    let n = s.rows();
    let i = CMat::identity(n);
    let num = &i - s;
    let den = &i + s;
    Ok(num.matmul(&den.inverse()?)?.scaled_real(1.0 / z_ref))
}

/// Converts an admittance matrix to scattering: `S = (I − R₀Y)(I + R₀Y)⁻¹`.
///
/// # Errors
///
/// Returns [`RfDataError::Linalg`] when `I + R₀Y` is singular.
pub fn y_to_s(y: &CMat, z_ref: f64) -> Result<CMat> {
    let n = y.rows();
    let i = CMat::identity(n);
    let ry = y.scaled_real(z_ref);
    let num = &i - &ry;
    let den = &i + &ry;
    Ok(num.matmul(&den.inverse()?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn sample_z() -> CMat {
        // A symmetric, strictly passive resistive 2-port impedance matrix
        // (both eigenvalues of the real part are positive).
        CMat::from_rows(&[
            &[c(83.33333333333333, 0.0), c(44.44444444444444, 0.0)],
            &[c(44.44444444444444, 0.0), c(83.33333333333333, 0.0)],
        ])
    }

    #[test]
    fn conversion_round_trips() {
        let z = sample_z();
        let s = z_to_s(&z, 50.0).unwrap();
        let z_back = s_to_z(&s, 50.0).unwrap();
        assert!(z_back.max_abs_diff(&z) < 1e-9);
        let y = s_to_y(&s, 50.0).unwrap();
        let s_back = y_to_s(&y, 50.0).unwrap();
        assert!(s_back.max_abs_diff(&s) < 1e-12);
        // Y must be the inverse of Z.
        let yz = y.matmul(&z).unwrap();
        assert!(yz.max_abs_diff(&CMat::identity(2)) < 1e-9);
    }

    #[test]
    fn matched_load_has_zero_reflection() {
        let z = CMat::from_diag(&[c(50.0, 0.0)]);
        let s = z_to_s(&z, 50.0).unwrap();
        assert!(s[(0, 0)].abs() < 1e-14);
    }

    #[test]
    fn network_data_construction_validation() {
        let grid = FrequencyGrid::from_hz(vec![1.0, 2.0]).unwrap();
        let m = CMat::identity(2);
        assert!(NetworkData::new(grid.clone(), vec![m.clone()], ParameterKind::Scattering, 50.0)
            .is_err());
        assert!(NetworkData::new(
            grid.clone(),
            vec![m.clone(), CMat::zeros(3, 3)],
            ParameterKind::Scattering,
            50.0
        )
        .is_err());
        assert!(NetworkData::new(
            grid.clone(),
            vec![m.clone(), m.clone()],
            ParameterKind::Scattering,
            -1.0
        )
        .is_err());
        let ok =
            NetworkData::new(grid, vec![m.clone(), m], ParameterKind::Scattering, 50.0).unwrap();
        assert_eq!(ok.ports(), 2);
        assert_eq!(ok.len(), 2);
        assert!(!ok.is_empty());
        assert_eq!(ok.kind(), ParameterKind::Scattering);
        assert_eq!((ok.z_ref()).to_bits(), 50.0f64.to_bits());
        assert_eq!(ok.element(0, 1), vec![Complex64::ZERO, Complex64::ZERO]);
    }

    #[test]
    fn network_conversions_and_renormalization() {
        let grid = FrequencyGrid::from_hz(vec![1e6, 1e7, 1e8]).unwrap();
        let z = sample_z();
        let data = NetworkData::new(
            grid,
            vec![z.clone(), z.clone(), z.clone()],
            ParameterKind::Impedance,
            50.0,
        )
        .unwrap();
        let s = data.to_scattering().unwrap();
        assert_eq!(s.kind(), ParameterKind::Scattering);
        let y = data.to_admittance().unwrap();
        assert_eq!(y.kind(), ParameterKind::Admittance);
        let z_back = s.to_impedance().unwrap();
        assert!(z_back.matrix(1).max_abs_diff(&z) < 1e-9);
        // Renormalize to 75 Ω and back.
        let s75 = s.renormalize(75.0).unwrap();
        assert_eq!((s75.z_ref()).to_bits(), 75.0f64.to_bits());
        let s50 = s75.renormalize(50.0).unwrap();
        assert!(s50.matrix(2).max_abs_diff(s.matrix(2)) < 1e-10);
        // Renormalizing non-scattering data is an error.
        assert!(data.renormalize(75.0).is_err());
        assert!(s.renormalize(-5.0).is_err());
    }

    #[test]
    fn select_ports_extracts_submatrix() {
        let grid = FrequencyGrid::from_hz(vec![1.0]).unwrap();
        let m = CMat::from_fn(3, 3, |i, j| c((i * 3 + j) as f64, 0.0));
        let d = NetworkData::new(grid, vec![m], ParameterKind::Scattering, 50.0).unwrap();
        let sub = d.select_ports(&[2, 0]).unwrap();
        assert_eq!(sub.ports(), 2);
        assert_eq!(sub.matrix(0)[(0, 0)], c(8.0, 0.0));
        assert_eq!(sub.matrix(0)[(0, 1)], c(6.0, 0.0));
        assert_eq!(sub.matrix(0)[(1, 0)], c(2.0, 0.0));
        assert!(d.select_ports(&[5]).is_err());
        assert!(d.select_ports(&[]).is_err());
    }

    #[test]
    fn map_matrices_applies_closure() {
        let grid = FrequencyGrid::from_hz(vec![1.0, 2.0]).unwrap();
        let d = NetworkData::new(
            grid,
            vec![CMat::identity(2), CMat::identity(2)],
            ParameterKind::Scattering,
            50.0,
        )
        .unwrap();
        let scaled = d.map_matrices(|_, m| Ok(m.scaled_real(0.5))).unwrap();
        assert!((scaled.matrix(0)[(0, 0)].re - 0.5).abs() < 1e-15);
    }

    #[test]
    fn short_circuit_has_no_impedance_representation() {
        // S = -I is a short circuit: I - S is fine but Z->... the inverse of
        // (I + S) = 0 must fail in the Y->Z direction instead. Here check
        // that s_to_y of an open (S = +I) fails because I + S is singular...
        // Actually for S = +I (open), Y = 0 is fine; Z is singular.
        let grid = FrequencyGrid::from_hz(vec![1.0]).unwrap();
        let open = NetworkData::new(grid, vec![CMat::identity(1)], ParameterKind::Scattering, 50.0)
            .unwrap();
        assert!(open.to_impedance().is_err());
        let y = open.to_admittance().unwrap();
        assert!(y.matrix(0)[(0, 0)].abs() < 1e-14);
    }
}
