//! Error metrics between tabulated frequency responses.
//!
//! These implement the unweighted error of eq. (4) and the weighted error of
//! eq. (6) in the paper, plus the per-element / per-frequency diagnostics used
//! in the evaluation figures.

use crate::{NetworkData, Result, RfDataError};
use pim_linalg::Complex64;

/// Per-frequency Frobenius error `E_k = ‖A_k − B_k‖_F` between two data sets.
///
/// # Errors
///
/// Returns [`RfDataError::Inconsistent`] when the two data sets have different
/// sample counts or port counts.
pub fn per_frequency_error(a: &NetworkData, b: &NetworkData) -> Result<Vec<f64>> {
    check_compatible(a, b)?;
    Ok((0..a.len())
        .map(|k| {
            let diff = a.matrix(k) - b.matrix(k);
            diff.frobenius_norm()
        })
        .collect())
}

/// Root-mean-square error over all frequencies and matrix entries
/// (the square root of eq. (4) normalized by the number of samples).
///
/// # Errors
///
/// See [`per_frequency_error`].
pub fn rms_error(a: &NetworkData, b: &NetworkData) -> Result<f64> {
    check_compatible(a, b)?;
    let p = a.ports() as f64;
    let k = a.len() as f64;
    let sum_sq: f64 = per_frequency_error(a, b)?.iter().map(|e| e * e).sum();
    Ok((sum_sq / (k * p * p)).sqrt())
}

/// Weighted squared error of eq. (6): `E_w² = Σ_k w_k² ‖A_k − B_k‖²_F`.
///
/// # Errors
///
/// Returns [`RfDataError::Inconsistent`] when the weight vector length differs
/// from the number of samples, in addition to the compatibility checks.
pub fn weighted_squared_error(a: &NetworkData, b: &NetworkData, weights: &[f64]) -> Result<f64> {
    check_compatible(a, b)?;
    if weights.len() != a.len() {
        return Err(RfDataError::Inconsistent(format!(
            "expected {} weights, got {}",
            a.len(),
            weights.len()
        )));
    }
    Ok(per_frequency_error(a, b)?.iter().zip(weights).map(|(e, w)| w * w * e * e).sum())
}

/// Maximum absolute entry-wise error over all frequencies.
///
/// # Errors
///
/// See [`per_frequency_error`].
pub fn max_error(a: &NetworkData, b: &NetworkData) -> Result<f64> {
    check_compatible(a, b)?;
    Ok((0..a.len()).map(|k| a.matrix(k).max_abs_diff(b.matrix(k))).fold(0.0_f64, f64::max))
}

/// Error of a single matrix element `(i, j)` across frequency, in decibels
/// relative to the reference magnitude (floored to avoid `-inf`).
///
/// # Errors
///
/// Returns [`RfDataError::Inconsistent`] for out-of-range indices plus the
/// compatibility checks.
pub fn element_error_db(a: &NetworkData, b: &NetworkData, i: usize, j: usize) -> Result<Vec<f64>> {
    check_compatible(a, b)?;
    if i >= a.ports() || j >= a.ports() {
        return Err(RfDataError::Inconsistent(format!(
            "element ({i},{j}) out of range for {}-port data",
            a.ports()
        )));
    }
    Ok((0..a.len())
        .map(|k| {
            let err = (a.matrix(k)[(i, j)] - b.matrix(k)[(i, j)]).abs();
            20.0 * err.max(1e-300).log10()
        })
        .collect())
}

/// Magnitude of a single element in decibels (convenience for plotting the
/// paper's Figures 1 and 6).
pub fn element_magnitude_db(data: &NetworkData, i: usize, j: usize) -> Vec<f64> {
    (0..data.len()).map(|k| 20.0 * data.matrix(k)[(i, j)].abs().max(1e-300).log10()).collect()
}

/// Phase of a single element in degrees.
pub fn element_phase_deg(data: &NetworkData, i: usize, j: usize) -> Vec<f64> {
    (0..data.len()).map(|k| data.matrix(k)[(i, j)].arg().to_degrees()).collect()
}

/// Relative RMS error between two complex response vectors (used for scalar
/// responses such as the PDN target impedance).
///
/// # Errors
///
/// Returns [`RfDataError::Inconsistent`] on length mismatch or an empty input.
pub fn relative_rms_error(reference: &[Complex64], candidate: &[Complex64]) -> Result<f64> {
    if reference.len() != candidate.len() || reference.is_empty() {
        return Err(RfDataError::Inconsistent(
            "relative_rms_error requires two equal-length non-empty vectors".into(),
        ));
    }
    let num: f64 = reference.iter().zip(candidate).map(|(r, c)| (*r - *c).abs_sq()).sum();
    let den: f64 = reference.iter().map(|r| r.abs_sq()).sum();
    // audit:allow(float-eq): exact-zero reference energy cannot be used as a divisor
    if den == 0.0 {
        return Err(RfDataError::Inconsistent("reference vector is identically zero".into()));
    }
    Ok((num / den).sqrt())
}

fn check_compatible(a: &NetworkData, b: &NetworkData) -> Result<()> {
    if a.len() != b.len() {
        return Err(RfDataError::Inconsistent(format!(
            "sample count mismatch: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    if a.ports() != b.ports() {
        return Err(RfDataError::Inconsistent(format!(
            "port count mismatch: {} vs {}",
            a.ports(),
            b.ports()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyGrid, ParameterKind};
    use pim_linalg::CMat;

    fn data_with_offset(offset: f64) -> NetworkData {
        let grid = FrequencyGrid::from_hz(vec![1.0, 2.0, 3.0]).unwrap();
        let matrices: Vec<CMat> = (0..3)
            .map(|k| {
                CMat::from_fn(2, 2, |i, j| {
                    Complex64::new(0.1 * (i + j) as f64 + 0.05 * k as f64 + offset, 0.02)
                })
            })
            .collect();
        NetworkData::new(grid, matrices, ParameterKind::Scattering, 50.0).unwrap()
    }

    #[test]
    fn zero_error_for_identical_data() {
        let a = data_with_offset(0.0);
        assert_eq!((rms_error(&a, &a).unwrap()).to_bits(), 0.0f64.to_bits());
        assert_eq!((max_error(&a, &a).unwrap()).to_bits(), 0.0f64.to_bits());
        assert!(per_frequency_error(&a, &a)
            .unwrap()
            .iter()
            .all(|&e| e.to_bits() == 0.0f64.to_bits()));
    }

    #[test]
    fn constant_offset_error_is_exact() {
        let a = data_with_offset(0.0);
        let b = data_with_offset(0.01);
        // Every entry differs by exactly 0.01 in the real part.
        assert!((max_error(&a, &b).unwrap() - 0.01).abs() < 1e-14);
        assert!((rms_error(&a, &b).unwrap() - 0.01).abs() < 1e-14);
        let per = per_frequency_error(&a, &b).unwrap();
        for e in per {
            assert!((e - 0.02).abs() < 1e-14); // sqrt(4 entries * 0.01^2)
        }
    }

    #[test]
    fn weighted_error_scales_with_weights() {
        let a = data_with_offset(0.0);
        let b = data_with_offset(0.01);
        let e1 = weighted_squared_error(&a, &b, &[1.0, 1.0, 1.0]).unwrap();
        let e2 = weighted_squared_error(&a, &b, &[2.0, 2.0, 2.0]).unwrap();
        assert!((e2 / e1 - 4.0).abs() < 1e-12);
        assert!(weighted_squared_error(&a, &b, &[1.0]).is_err());
    }

    #[test]
    fn element_metrics() {
        let a = data_with_offset(0.0);
        let b = data_with_offset(0.001);
        let db = element_error_db(&a, &b, 0, 1).unwrap();
        assert_eq!(db.len(), 3);
        assert!((db[0] - 20.0 * 0.001f64.log10()).abs() < 1e-9);
        assert!(element_error_db(&a, &b, 5, 0).is_err());
        let mag = element_magnitude_db(&a, 1, 1);
        assert_eq!(mag.len(), 3);
        let ph = element_phase_deg(&a, 1, 1);
        assert!(ph.iter().all(|p| p.abs() <= 180.0));
    }

    #[test]
    fn relative_rms_error_behaviour() {
        let r = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 2.0)];
        let c = vec![Complex64::new(1.1, 0.0), Complex64::new(0.0, 2.0)];
        let e = relative_rms_error(&r, &c).unwrap();
        assert!((e - (0.01f64 / 5.0).sqrt()).abs() < 1e-12);
        assert_eq!((relative_rms_error(&r, &r).unwrap()).to_bits(), 0.0f64.to_bits());
        assert!(relative_rms_error(&r, &c[..1]).is_err());
        assert!(relative_rms_error(&[], &[]).is_err());
        let zeros = vec![Complex64::ZERO; 2];
        assert!(relative_rms_error(&zeros, &c).is_err());
    }

    #[test]
    fn incompatible_data_is_rejected() {
        let a = data_with_offset(0.0);
        let grid = FrequencyGrid::from_hz(vec![1.0, 2.0]).unwrap();
        let b = NetworkData::new(
            grid,
            vec![CMat::identity(2), CMat::identity(2)],
            ParameterKind::Scattering,
            50.0,
        )
        .unwrap();
        assert!(rms_error(&a, &b).is_err());
        let grid3 = FrequencyGrid::from_hz(vec![1.0, 2.0, 3.0]).unwrap();
        let c = NetworkData::new(
            grid3,
            vec![CMat::identity(3), CMat::identity(3), CMat::identity(3)],
            ParameterKind::Scattering,
            50.0,
        )
        .unwrap();
        assert!(max_error(&a, &c).is_err());
    }
}
