//! Frequency sampling grids.

use crate::{Result, RfDataError};

/// A sorted grid of frequency samples in hertz.
///
/// The paper's data set is tabulated "from 1 kHz to 2 GHz with logarithmic
/// sampling and including the DC point"; [`FrequencyGrid::log_space`] with
/// [`FrequencyGrid::with_dc`] reproduces exactly that sampling plan.
///
/// ```
/// use pim_rfdata::FrequencyGrid;
///
/// # fn main() -> Result<(), pim_rfdata::RfDataError> {
/// let grid = FrequencyGrid::log_space(1e3, 2e9, 200)?.with_dc();
/// assert_eq!(grid.len(), 201);
/// assert_eq!(grid.freqs_hz()[0], 0.0);
/// assert!((grid.freqs_hz()[1] - 1e3).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyGrid {
    freqs_hz: Vec<f64>,
}

impl FrequencyGrid {
    /// Builds a grid from an explicit list of frequencies (hertz).
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Inconsistent`] if the list is empty, contains
    /// negative or non-finite values, or is not strictly increasing.
    pub fn from_hz(freqs_hz: Vec<f64>) -> Result<Self> {
        if freqs_hz.is_empty() {
            return Err(RfDataError::Inconsistent("frequency grid must not be empty".into()));
        }
        for (i, &f) in freqs_hz.iter().enumerate() {
            if !f.is_finite() || f < 0.0 {
                return Err(RfDataError::Inconsistent(format!(
                    "frequency sample {i} is invalid: {f}"
                )));
            }
            if i > 0 && f <= freqs_hz[i - 1] {
                return Err(RfDataError::Inconsistent(format!(
                    "frequency grid must be strictly increasing (sample {i})"
                )));
            }
        }
        Ok(FrequencyGrid { freqs_hz })
    }

    /// Logarithmically spaced grid of `n` points between `f_min` and `f_max`
    /// (both included, both in hertz).
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Inconsistent`] for non-positive bounds,
    /// `f_min >= f_max`, or `n < 2`.
    pub fn log_space(f_min: f64, f_max: f64, n: usize) -> Result<Self> {
        if f_min <= 0.0 || f_max <= 0.0 || !f_min.is_finite() || !f_max.is_finite() {
            return Err(RfDataError::Inconsistent(
                "log_space requires strictly positive finite bounds".into(),
            ));
        }
        if f_min >= f_max || n < 2 {
            return Err(RfDataError::Inconsistent(
                "log_space requires f_min < f_max and at least two points".into(),
            ));
        }
        let l0 = f_min.log10();
        let l1 = f_max.log10();
        let freqs: Vec<f64> =
            (0..n).map(|k| 10f64.powf(l0 + (l1 - l0) * k as f64 / (n - 1) as f64)).collect();
        FrequencyGrid::from_hz(freqs)
    }

    /// Linearly spaced grid of `n` points between `f_min` and `f_max`.
    ///
    /// # Errors
    ///
    /// Returns [`RfDataError::Inconsistent`] for invalid bounds or `n < 2`.
    pub fn lin_space(f_min: f64, f_max: f64, n: usize) -> Result<Self> {
        if f_min < 0.0 || !f_min.is_finite() || !f_max.is_finite() || f_min >= f_max || n < 2 {
            return Err(RfDataError::Inconsistent(
                "lin_space requires 0 <= f_min < f_max and at least two points".into(),
            ));
        }
        let freqs: Vec<f64> =
            (0..n).map(|k| f_min + (f_max - f_min) * k as f64 / (n - 1) as f64).collect();
        FrequencyGrid::from_hz(freqs)
    }

    /// Returns a new grid with a DC (0 Hz) sample prepended, if not already
    /// present.
    pub fn with_dc(self) -> Self {
        if self.freqs_hz.first().copied() == Some(0.0) {
            return self;
        }
        let mut freqs = Vec::with_capacity(self.freqs_hz.len() + 1);
        freqs.push(0.0);
        freqs.extend(self.freqs_hz);
        FrequencyGrid { freqs_hz: freqs }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.freqs_hz.len()
    }

    /// `true` when the grid has no samples (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.freqs_hz.is_empty()
    }

    /// Frequencies in hertz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Angular frequencies `ω = 2πf` in rad/s.
    pub fn omegas(&self) -> Vec<f64> {
        self.freqs_hz.iter().map(|f| 2.0 * std::f64::consts::PI * f).collect()
    }

    /// Iterator over the frequencies in hertz.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.freqs_hz.iter()
    }

    /// Smallest non-zero frequency of the grid, if any.
    pub fn min_nonzero_hz(&self) -> Option<f64> {
        self.freqs_hz.iter().copied().find(|&f| f > 0.0)
    }

    /// Largest frequency of the grid.
    pub fn max_hz(&self) -> f64 {
        *self.freqs_hz.last().expect("grid is never empty")
    }

    /// Largest angular frequency `2π·f_max` of the grid in rad/s — the band
    /// edge the passivity-enforcement sweep grids are anchored to.
    /// Identical (to the bit) to the maximum of [`FrequencyGrid::omegas`].
    pub fn max_omega(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.max_hz()
    }

    /// Index of the sample closest to `f_hz`.
    pub fn nearest_index(&self, f_hz: f64) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &f) in self.freqs_hz.iter().enumerate() {
            let d = (f - f_hz).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Returns a decimated copy keeping every `step`-th sample (always keeps
    /// the first and last samples).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn decimate(&self, step: usize) -> FrequencyGrid {
        assert!(step > 0, "decimation step must be positive");
        let n = self.freqs_hz.len();
        let mut freqs: Vec<f64> = self.freqs_hz.iter().copied().step_by(step).collect();
        if *freqs.last().unwrap() != self.freqs_hz[n - 1] {
            freqs.push(self.freqs_hz[n - 1]);
        }
        FrequencyGrid { freqs_hz: freqs }
    }
}

impl<'a> IntoIterator for &'a FrequencyGrid {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.freqs_hz.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_space_endpoints_and_monotonicity() {
        let g = FrequencyGrid::log_space(1e3, 2e9, 101).unwrap();
        assert_eq!(g.len(), 101);
        assert!((g.freqs_hz()[0] - 1e3).abs() < 1e-6);
        assert!((g.max_hz() - 2e9).abs() < 1e-3);
        assert!(g.freqs_hz().windows(2).all(|w| w[1] > w[0]));
        // Log spacing: constant ratio.
        let r0 = g.freqs_hz()[1] / g.freqs_hz()[0];
        let r1 = g.freqs_hz()[50] / g.freqs_hz()[49];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn lin_space_and_with_dc() {
        let g = FrequencyGrid::lin_space(0.0, 10.0, 11).unwrap();
        assert_eq!((g.freqs_hz()[3]).to_bits(), 3.0f64.to_bits());
        let g2 = FrequencyGrid::log_space(1.0, 100.0, 3).unwrap().with_dc();
        assert_eq!(g2.len(), 4);
        assert_eq!((g2.freqs_hz()[0]).to_bits(), 0.0f64.to_bits());
        // Idempotent.
        assert_eq!(g2.clone().with_dc(), g2);
    }

    #[test]
    fn omegas_and_nearest() {
        let g = FrequencyGrid::from_hz(vec![0.0, 1.0, 10.0]).unwrap();
        let w = g.omegas();
        assert!((w[1] - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(g.nearest_index(8.0), 2);
        assert_eq!(g.nearest_index(0.4), 0);
        assert_eq!(g.min_nonzero_hz(), Some(1.0));
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert!(FrequencyGrid::from_hz(vec![]).is_err());
        assert!(FrequencyGrid::from_hz(vec![1.0, 1.0]).is_err());
        assert!(FrequencyGrid::from_hz(vec![2.0, 1.0]).is_err());
        assert!(FrequencyGrid::from_hz(vec![-1.0, 1.0]).is_err());
        assert!(FrequencyGrid::from_hz(vec![f64::NAN]).is_err());
        assert!(FrequencyGrid::log_space(0.0, 1.0, 10).is_err());
        assert!(FrequencyGrid::log_space(10.0, 1.0, 10).is_err());
        assert!(FrequencyGrid::log_space(1.0, 10.0, 1).is_err());
        assert!(FrequencyGrid::lin_space(5.0, 1.0, 10).is_err());
    }

    #[test]
    fn decimate_keeps_endpoints() {
        let g = FrequencyGrid::log_space(1e3, 1e9, 100).unwrap();
        let d = g.decimate(7);
        assert_eq!(d.freqs_hz()[0], g.freqs_hz()[0]);
        assert_eq!(d.max_hz(), g.max_hz());
        assert!(d.len() < g.len());
    }

    #[test]
    fn iteration() {
        let g = FrequencyGrid::from_hz(vec![1.0, 2.0, 3.0]).unwrap();
        let s: f64 = (&g).into_iter().sum();
        assert_eq!((s).to_bits(), 6.0f64.to_bits());
        assert_eq!(g.iter().count(), 3);
        assert!(!g.is_empty());
    }
}
