//! # pim-runtime
//!
//! A dependency-free (std-only) work-stealing thread pool with a
//! deterministic data-parallel API, built for the embarrassingly parallel
//! levels of the macromodeling workflow: independent scenario presets in
//! [`Pipeline::sweep`](https://docs.rs/pim-core), independent frequency
//! samples in the passivity assessment grids, and independent Gaussian draws
//! in the Monte Carlo sensitivity estimator.
//!
//! ## Determinism guarantee
//!
//! Every parallel entry point collects results **by input index**, so the
//! output of [`ThreadPool::par_map`] / [`ThreadPool::par_chunks`] is
//! *bit-identical* to the serial evaluation of the same closures, for every
//! thread count — the scheduling order can never leak into the numbers. This
//! is the invariant the workspace's parallel-vs-serial proptest suites
//! enforce; closures must only depend on their own `(index, item)` arguments
//! for it to hold (all in-tree call sites do).
//!
//! ## Thread-count selection
//!
//! [`global()`] sizes the shared pool once, on first use, from the
//! `PIM_THREADS` environment variable (a positive integer; `1` forces the
//! serial fallback path in every wired call site), falling back to
//! [`std::thread::available_parallelism`]. Explicit pools with any thread
//! count can be built with [`ThreadPool::new`] regardless of the
//! environment — the determinism test suites do exactly that.
//!
//! ## Example
//!
//! ```
//! use pim_runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! // Results are collected by input index: bit-identical to the serial map.
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Fixed-size chunks with per-chunk accumulators, reduced in chunk order:
//! // the chunk boundaries depend only on the chunk size, never on the
//! // thread count, so the reduction is reproducible on any machine.
//! let partial_sums = pool.par_chunks(&[1.0f64, 2.0, 3.0, 4.0, 5.0], 2, |_, c| -> f64 {
//!     c.iter().sum()
//! });
//! assert_eq!(partial_sums, vec![3.0, 7.0, 5.0]);
//! let total: f64 = partial_sums.iter().sum();
//! assert_eq!(total, 15.0);
//! ```
//!
//! ## Design
//!
//! A pool of `threads` has `threads − 1` background workers, each with its
//! own deque: tasks are pushed round-robin, a worker pops its own queue from
//! the front and steals from the back of the others, and the thread that
//! opened a [`ThreadPool::scope`] participates by draining tasks while it
//! waits — so a 1-thread pool has no workers at all and runs everything
//! inline on the caller (the serial fallback path). Panics inside tasks are
//! caught, the one with the lowest spawn index wins (deterministic payload),
//! and the winner is re-raised on the caller once the scope is complete.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A boxed task living in the worker queues. Scoped tasks are lifetime-erased
/// to `'static` before being enqueued; the erasure is sound because
/// [`ThreadPool::scope`] never returns before every task it spawned has
/// finished running.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One deque per worker; owners pop from the front, thieves (other
    /// workers and waiting scope callers) steal from the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Number of tasks currently sitting in the queues (not yet popped).
    queued: AtomicUsize,
    /// Sleep/wake machinery for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops a task, preferring queue `me` (front) and stealing from the back
    /// of the others. `me == usize::MAX` marks an external (non-worker)
    /// caller, which steals from every queue.
    fn find_task(&self, me: usize) -> Option<Task> {
        let n = self.queues.len();
        if me != usize::MAX {
            if let Some(task) = self.queues[me].lock().expect("queue poisoned").pop_front() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(task);
            }
        }
        for k in 0..n {
            let q = if me == usize::MAX { k } else { (me + 1 + k) % n };
            if q == me {
                continue;
            }
            if let Some(task) = self.queues[q].lock().expect("queue poisoned").pop_back() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(task);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(task) = shared.find_task(me) {
            task();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.idle.lock().expect("idle mutex poisoned");
        if shared.queued.load(Ordering::Acquire) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            // The timeout is a belt-and-braces recheck, not the wake path:
            // pushers notify under the idle mutex.
            let _ = shared.wake.wait_timeout(guard, Duration::from_millis(50));
        }
    }
}

/// Completion state of one [`ThreadPool::scope`]: outstanding-task counter
/// plus the winning (lowest spawn index) panic payload.
struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    #[allow(clippy::type_complexity)]
    panic: Mutex<Option<(usize, Box<dyn Any + Send + 'static>)>>,
}

impl ScopeSync {
    fn new() -> Self {
        ScopeSync { pending: Mutex::new(0), done: Condvar::new(), panic: Mutex::new(None) }
    }

    /// Records a panic payload, keeping the one with the lowest spawn index
    /// so the propagated panic does not depend on scheduling order.
    fn record_panic(&self, index: usize, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        if slot.as_ref().is_none_or(|(held, _)| index < *held) {
            *slot = Some((index, payload));
        }
    }
}

/// A spawn handle tied to one [`ThreadPool::scope`] invocation. Closures
/// spawned through it may borrow from the enclosing environment: the scope
/// blocks until every spawned task has completed before returning.
pub struct Scope<'env> {
    pool: &'env ThreadPool,
    sync: Arc<ScopeSync>,
    spawned: AtomicUsize,
    /// Invariant over `'env`, mirroring crossbeam/std scoped threads: keeps
    /// the borrow checker from shortening the environment lifetime.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns a task on the pool. On a 1-thread pool the task runs inline,
    /// immediately — the serial fallback path.
    ///
    /// Panics inside the task are caught and re-raised from the enclosing
    /// [`ThreadPool::scope`] call after all tasks finish; when several tasks
    /// panic, the one spawned earliest wins.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        let index = self.spawned.fetch_add(1, Ordering::Relaxed);
        if self.pool.shared.queues.is_empty() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                self.sync.record_panic(index, payload);
            }
            return;
        }
        {
            let mut pending = self.sync.pending.lock().expect("pending poisoned");
            *pending += 1;
        }
        let sync = Arc::clone(&self.sync);
        let wrapped = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                sync.record_panic(index, payload);
            }
            let mut pending = sync.pending.lock().expect("pending poisoned");
            *pending -= 1;
            if *pending == 0 {
                sync.done.notify_all();
            }
        };
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: lifetime erasure `'env → 'static`, sound on two grounds.
        //
        // Scope outlives the task: `pending` was incremented above, before
        // the task becomes reachable by any worker, and is decremented only
        // after the closure has returned (or its panic was captured). Every
        // path out of `ThreadPool::scope` — normal return, task panic, or a
        // panic in the scope body itself — runs `wait_scope`, which blocks
        // the caller until `pending` is zero again. The `'env` borrows the
        // closure captures are borrows of that caller's environment, so they
        // remain live for strictly longer than any point at which the task
        // can execute; no worker can observe a dangling `'env` reference.
        // (`Scope` is invariant over `'env` via its PhantomData, so the
        // borrow checker cannot shorten the environment region under us.)
        //
        // Representation: the transmute only changes the *lifetime bound* of
        // the trait object, `Box<dyn FnOnce() + Send + 'env>` to
        // `Box<dyn FnOnce() + Send + 'static>`. Both are fat pointers of
        // identical layout — (data pointer, vtable pointer) — and the
        // vtable is for the same underlying closure type; lifetimes have no
        // runtime representation, so the bit pattern is reinterpreted, not
        // altered.
        let task: Task = unsafe { std::mem::transmute(task) };
        self.pool.push_task(task);
    }
}

/// A fixed-size pool of worker threads with per-worker work-stealing deques.
///
/// See the [crate docs](crate) for the determinism guarantee and the design
/// notes. Pools are cheap enough to build in tests (`ThreadPool::new(8)`);
/// production call sites share the [`global()`] pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    next_queue: AtomicUsize,
}

impl ThreadPool {
    /// Creates a pool with the given total parallelism. `threads` counts the
    /// caller: a pool of `n` spawns `n − 1` background workers, and the
    /// thread that opens a scope participates in executing tasks. `0` is
    /// treated as `1` (a pure serial pool with no workers).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let worker_count = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..worker_count).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pim-runtime-{me}"))
                    .spawn(move || worker_loop(shared, me))
                    .expect("failed to spawn pim-runtime worker")
            })
            .collect();
        ThreadPool { shared, workers, threads, next_queue: AtomicUsize::new(0) }
    }

    /// Total parallelism of the pool (including the scope-opening caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when the pool runs everything inline on the caller (one
    /// thread, no workers) — the serial fallback path.
    pub fn is_serial(&self) -> bool {
        self.workers.is_empty()
    }

    fn push_task(&self, task: Task) {
        let n = self.shared.queues.len();
        let qi = self.next_queue.fetch_add(1, Ordering::Relaxed) % n;
        self.shared.queues[qi].lock().expect("queue poisoned").push_back(task);
        self.shared.queued.fetch_add(1, Ordering::AcqRel);
        // Lock/unlock the idle mutex before notifying so a worker that just
        // found the queues empty is already parked in `wait` and cannot miss
        // the notification.
        drop(self.shared.idle.lock().expect("idle mutex poisoned"));
        self.shared.wake.notify_all();
    }

    /// Opens a scope whose spawned tasks may borrow from the caller's
    /// environment. Blocks until every task spawned inside has finished; the
    /// calling thread helps execute queued tasks while it waits. The first
    /// (lowest spawn index) task panic, if any, is re-raised here.
    pub fn scope<'env, R>(&'env self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            sync: Arc::new(ScopeSync::new()),
            spawned: AtomicUsize::new(0),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always drain before unwinding anything: tasks may borrow from the
        // environment that is about to unwind away.
        self.wait_scope(&scope.sync);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some((_, payload)) = scope.sync.panic.lock().expect("poisoned").take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Blocks until the scope's pending count reaches zero, executing queued
    /// tasks on the calling thread while waiting.
    ///
    /// Completion is checked **before** each steal: once this scope's own
    /// tasks are done the wait returns promptly instead of picking up an
    /// unrelated (possibly long) queued task — a nested scope inside a task
    /// must not serially absorb its siblings' work on the way out.
    fn wait_scope(&self, sync: &ScopeSync) {
        loop {
            if *sync.pending.lock().expect("pending poisoned") == 0 {
                return;
            }
            if let Some(task) = self.shared.find_task(usize::MAX) {
                task();
                continue;
            }
            let pending = sync.pending.lock().expect("pending poisoned");
            if *pending == 0 {
                return;
            }
            // Our remaining tasks are running on workers; sleep until the
            // count drops (timeout only to re-try stealing defensively).
            let (pending, _) = sync
                .done
                .wait_timeout(pending, Duration::from_millis(1))
                .expect("pending poisoned");
            if *pending == 0 {
                return;
            }
        }
    }

    /// Maps `f` over `items` in parallel, collecting results **by input
    /// index**: the output is bit-identical to
    /// `items.iter().enumerate().map(..).collect()` for every thread count.
    /// `f` receives `(index, &item)`.
    ///
    /// Work is split into contiguous chunks (about four per thread) that are
    /// executed work-stealingly; a panic inside `f` is re-raised on the
    /// caller after the whole map completes.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = items.len().div_ceil(self.threads * 4).max(1);
        self.collect_chunks(items, chunk, |base, part| {
            part.iter().enumerate().map(|(k, t)| f(base + k, t)).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Splits `items` into fixed-size chunks of `chunk_size` (the last chunk
    /// may be shorter), evaluates `f` on each chunk in parallel, and returns
    /// the per-chunk accumulators **in chunk order**.
    ///
    /// The chunk boundaries depend only on `chunk_size` — never on the
    /// thread count — so a reduction over the returned accumulators, folded
    /// left to right, is bit-identical on every machine and thread count.
    /// `f` receives `(start_index, chunk)` where `start_index` is the index
    /// of the chunk's first item in `items`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn par_chunks<T, A, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<A>
    where
        T: Sync,
        A: Send,
        F: Fn(usize, &[T]) -> A + Sync,
    {
        assert!(chunk_size > 0, "par_chunks requires a positive chunk size");
        if self.is_serial() || items.len() <= chunk_size {
            return items
                .chunks(chunk_size)
                .enumerate()
                .map(|(c, p)| f(c * chunk_size, p))
                .collect();
        }
        self.collect_chunks(items, chunk_size, f)
    }

    /// Shared chunked fan-out: spawns one task per `chunk_size` slice of
    /// `items` and returns the per-chunk results sorted back into chunk
    /// order.
    fn collect_chunks<T, A, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<A>
    where
        T: Sync,
        A: Send,
        F: Fn(usize, &[T]) -> A + Sync,
    {
        let n_chunks = items.len().div_ceil(chunk_size);
        let slots: Mutex<Vec<(usize, A)>> = Mutex::new(Vec::with_capacity(n_chunks));
        self.scope(|s| {
            for (ci, part) in items.chunks(chunk_size).enumerate() {
                let f = &f;
                let slots = &slots;
                s.spawn(move || {
                    let acc = f(ci * chunk_size, part);
                    slots.lock().expect("slots poisoned").push((ci, acc));
                });
            }
        });
        let mut slots = slots.into_inner().expect("slots poisoned");
        debug_assert_eq!(slots.len(), n_chunks);
        slots.sort_unstable_by_key(|(ci, _)| *ci);
        slots.into_iter().map(|(_, acc)| acc).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.idle.lock());
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide shared pool, created on first use.
///
/// Its size comes from the `PIM_THREADS` environment variable when it parses
/// as a positive integer (`PIM_THREADS=1` forces the serial fallback path in
/// every wired call site; `0` and garbage are ignored), otherwise from
/// [`std::thread::available_parallelism`]. The variable is read once — set
/// it before the first parallel call.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads(std::env::var("PIM_THREADS").ok())))
}

/// Thread-count policy behind [`global()`], separated for unit testing.
fn default_threads(env_value: Option<String>) -> usize {
    match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// [`ThreadPool::par_map`] on the [`global()`] pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().par_map(items, f)
}

/// [`ThreadPool::par_chunks`] on the [`global()`] pool.
pub fn par_chunks<T, A, F>(items: &[T], chunk_size: usize, f: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
{
    global().par_chunks(items, chunk_size, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_is_ordered_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let got = pool.par_map(&items, |i, &x| x * 3 + i as u64);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_boundaries_do_not_depend_on_threads() {
        let items: Vec<f64> = (0..100).map(|k| (k as f64) * 0.25 - 3.0).collect();
        let serial = ThreadPool::new(1)
            .par_chunks(&items, 7, |start, c| (start, c.iter().fold(0.0f64, |a, &b| a + b * b)));
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = pool.par_chunks(&items, 7, |start, c| {
                (start, c.iter().fold(0.0f64, |a, &b| a + b * b))
            });
            assert_eq!(parallel.len(), serial.len());
            for ((sa, xa), (sb, xb)) in serial.iter().zip(&parallel) {
                assert_eq!(sa, sb);
                assert_eq!(xa.to_bits(), xb.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn par_chunks_rejects_zero_chunk() {
        ThreadPool::new(2).par_chunks(&[1, 2, 3], 0, |_, c| c.len());
    }

    #[test]
    fn scope_tasks_borrow_the_environment() {
        let pool = ThreadPool::new(4);
        let data: Vec<usize> = (0..64).collect();
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for part in data.chunks(5) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(part.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 63 / 2);
    }

    #[test]
    fn panics_propagate_with_the_lowest_spawn_index() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for k in 0..16 {
                        s.spawn(move || {
                            if k % 2 == 1 {
                                panic!("task {k} failed");
                            }
                        });
                    }
                });
            }));
            let payload = result.expect_err("scope must propagate the panic");
            let message = payload.downcast_ref::<String>().expect("string payload");
            assert_eq!(message, "task 1 failed", "threads={threads}");
        }
    }

    #[test]
    fn par_map_panic_reaches_the_caller() {
        let pool = ThreadPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                assert!(x != 5, "bad item");
                x
            })
        }));
        assert!(result.is_err());
        // The pool survives a panicked map and stays usable.
        assert_eq!(pool.par_map(&[1u32, 2], |_, &x| x + 1), vec![2, 3]);
    }

    #[test]
    fn nested_scopes_make_progress() {
        let pool = ThreadPool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        let result = pool.par_map(&outer, |_, &k| {
            // A nested par_map on the same pool from inside a task: the
            // waiting thread participates, so this cannot deadlock.
            let inner: Vec<usize> = (0..k + 1).collect();
            pool.par_map(&inner, |_, &j| j).into_iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&k| k * (k + 1) / 2).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.par_map(&empty, |_, &x| x).is_empty());
        assert!(pool.par_chunks(&empty, 3, |_, c| c.len()).is_empty());
        assert_eq!(pool.par_map(&[9u8], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn thread_count_policy() {
        assert_eq!(default_threads(Some("4".into())), 4);
        assert_eq!(default_threads(Some(" 2 ".into())), 2);
        assert_eq!(default_threads(Some("1".into())), 1);
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(default_threads(Some("0".into())), auto);
        assert_eq!(default_threads(Some("lots".into())), auto);
        assert_eq!(default_threads(None), auto);
        assert!(global().threads() >= 1);
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert!(ThreadPool::new(1).is_serial());
        assert!(!ThreadPool::new(2).is_serial());
    }
}
