//! Property-based tests of the determinism invariant: every parallel entry
//! point must return results that are **bit-identical** to the serial
//! evaluation, for every thread count.

use pim_runtime::ThreadPool;
use proptest::prelude::*;

/// The thread counts the determinism suites sweep (`1` is the serial
/// fallback path; `8` oversubscribes any test machine).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A deliberately non-associative floating-point kernel: re-ordering or
/// re-chunking the accumulation would change the result bits.
fn mix(i: usize, x: f64) -> f64 {
    ((x * 1.000_000_119 + i as f64).sin() * 1e3).mul_add(x, 1.0 / (i as f64 + 0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_map_is_bit_identical_to_serial(
        len in 1usize..33,
        v in prop::collection::vec(-1.0f64..1.0, 33),
    ) {
        let items = &v[..len];
        let serial: Vec<f64> = items.iter().enumerate().map(|(i, &x)| mix(i, x)).collect();
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let parallel = pool.par_map(items, |i, &x| mix(i, x));
            prop_assert!(parallel.len() == serial.len());
            for (k, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "threads={threads} index={k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn par_chunks_reduction_is_bit_identical_to_serial(
        len in 1usize..33,
        chunk in 1usize..9,
        v in prop::collection::vec(-1.0f64..1.0, 33),
    ) {
        let items = &v[..len];
        // Serial reference: left fold over fixed-size chunks.
        let serial: Vec<f64> = items
            .chunks(chunk)
            .enumerate()
            .map(|(c, part)| {
                part.iter().enumerate().fold(0.0f64, |acc, (k, &x)| acc + mix(c * chunk + k, x))
            })
            .collect();
        let serial_total = serial.iter().fold(0.0f64, |a, &b| a + b);
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let partial = pool.par_chunks(items, chunk, |start, part| {
                part.iter().enumerate().fold(0.0f64, |acc, (k, &x)| acc + mix(start + k, x))
            });
            prop_assert!(partial.len() == serial.len());
            for (a, b) in serial.iter().zip(&partial) {
                prop_assert!(a.to_bits() == b.to_bits(), "threads={threads}");
            }
            // The fixed-order reduction of the accumulators is bit-stable too.
            let total = partial.iter().fold(0.0f64, |a, &b| a + b);
            prop_assert!(total.to_bits() == serial_total.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn fallible_par_map_reports_the_first_error_by_index(
        len in 2usize..33,
        bad in prop::collection::vec(0usize..33, 3),
    ) {
        let items: Vec<usize> = (0..len).collect();
        let bad: Vec<usize> = bad.into_iter().filter(|b| *b < len).collect();
        let expected: Result<Vec<usize>, usize> = items
            .iter()
            .map(|&i| if bad.contains(&i) { Err(i) } else { Ok(i * 2) })
            .collect();
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            // The in-tree error-handling idiom: map to Result, then collect in
            // index order — the reported error is the lowest failing index no
            // matter which task finished first.
            let got: Result<Vec<usize>, usize> = pool
                .par_map(&items, |_, &i| if bad.contains(&i) { Err(i) } else { Ok(i * 2) })
                .into_iter()
                .collect();
            prop_assert!(got == expected, "threads={threads}");
        }
    }
}
