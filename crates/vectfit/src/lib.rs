//! # pim-vectfit
//!
//! Rational approximation engines for the DATE 2014 sensitivity-weighted
//! passivity enforcement reproduction:
//!
//! * [`vf::vector_fit`] — Vector Fitting of tabulated multiport frequency
//!   responses into a common-pole [`pim_statespace::PoleResidueModel`]
//!   (eq. 3–4 of the paper), with optional frequency-dependent weighting of
//!   the least-squares metric (eq. 6);
//! * [`magnitude::fit_magnitude`] — Magnitude Vector Fitting of squared
//!   magnitude samples (the sensitivity `|Ξ_k|²`, eq. 17) followed by
//!   spectral factorization into the stable, minimum-phase weighting model
//!   `Ξ̃(s)` of eq. (15)–(16);
//! * [`poles`] — initial pole placement heuristics and spectrum
//!   symmetrization helpers shared by both fitters.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod magnitude;
pub mod poles;
pub mod vf;

pub use magnitude::{fit_magnitude, MagnitudeFitConfig, SensitivityModel};
pub use vf::{vector_fit, VfConfig, VfResult};

use std::error::Error;
use std::fmt;

/// Errors produced by the fitting engines.
#[derive(Debug)]
pub enum VectFitError {
    /// The underlying linear algebra kernel failed.
    Linalg(pim_linalg::LinalgError),
    /// Input data handling failed.
    RfData(pim_rfdata::RfDataError),
    /// Model construction failed.
    StateSpace(pim_statespace::StateSpaceError),
    /// The configuration or the input samples are invalid.
    InvalidInput(String),
    /// The iteration did not produce a usable model.
    FitFailed(String),
}

impl fmt::Display for VectFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectFitError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            VectFitError::RfData(e) => write!(f, "data handling failure: {e}"),
            VectFitError::StateSpace(e) => write!(f, "model construction failure: {e}"),
            VectFitError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            VectFitError::FitFailed(msg) => write!(f, "fit failed: {msg}"),
        }
    }
}

impl Error for VectFitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VectFitError::Linalg(e) => Some(e),
            VectFitError::RfData(e) => Some(e),
            VectFitError::StateSpace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for VectFitError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        VectFitError::Linalg(e)
    }
}

impl From<pim_rfdata::RfDataError> for VectFitError {
    fn from(e: pim_rfdata::RfDataError) -> Self {
        VectFitError::RfData(e)
    }
}

impl From<pim_statespace::StateSpaceError> for VectFitError {
    fn from(e: pim_statespace::StateSpaceError) -> Self {
        VectFitError::StateSpace(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, VectFitError>;
