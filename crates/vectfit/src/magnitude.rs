//! Magnitude Vector Fitting and spectral factorization.
//!
//! The sensitivity of the PDN target impedance is known only through its
//! magnitude samples `Ξ_k` (it is defined as an expected error amplification,
//! eq. 5 of the paper). To use it as a frequency-dependent weight inside an
//! algebraic (Gramian-based) norm, the paper builds a stable, minimum-phase
//! rational model `Ξ̃(s)` whose magnitude matches the samples (eq. 15–17):
//!
//! 1. the squared magnitude `Ξ_k²` is fitted as a rational function of
//!    `x = ω²` (this is the Magnitude Vector Fitting step, references
//!    \[24\]–\[25\] of the paper);
//! 2. poles and zeros of the fitted spectral function are mapped back to the
//!    `s`-plane and the left-half-plane members are selected, yielding the
//!    minimum-phase spectral factor;
//! 3. the factor is converted to pole–residue form so that a state-space
//!    realization (eq. 16) is available for the cascade construction of
//!    eq. (18).

use crate::poles::{pole_blocks, symmetrize_spectrum, PoleBlock};
use crate::{Result, VectFitError};
use pim_linalg::eig::eigenvalues;
use pim_linalg::qr::lstsq_scaled;
use pim_linalg::{CMat, Complex64, Mat};
use pim_statespace::{PoleResidueModel, StateSpace};

/// Configuration of a magnitude fit.
#[derive(Debug, Clone)]
pub struct MagnitudeFitConfig {
    /// Order (number of poles) of the weighting model `Ξ̃(s)` — `n_w` in the
    /// paper (the test case uses 8).
    pub order: usize,
    /// Pole-relocation iterations in the `x = ω²` domain.
    pub n_iterations: usize,
    /// Relative floor applied to the squared-magnitude samples (guards the
    /// spectral factorization against a vanishing asymptotic term).
    pub floor: f64,
}

impl Default for MagnitudeFitConfig {
    fn default() -> Self {
        MagnitudeFitConfig { order: 8, n_iterations: 8, floor: 1e-8 }
    }
}

impl MagnitudeFitConfig {
    /// Default configuration with the given weighting-model order `n_w`.
    pub fn with_order(order: usize) -> Self {
        MagnitudeFitConfig { order, ..MagnitudeFitConfig::default() }
    }

    /// Sets the number of pole-relocation iterations (builder style).
    #[must_use]
    pub fn iterations(mut self, n_iterations: usize) -> Self {
        self.n_iterations = n_iterations;
        self
    }
}

/// A stable, minimum-phase rational model of a magnitude response.
#[derive(Debug, Clone)]
pub struct SensitivityModel {
    model: PoleResidueModel,
}

impl SensitivityModel {
    /// The underlying single-port pole–residue model of `Ξ̃(s)`.
    pub fn model(&self) -> &PoleResidueModel {
        &self.model
    }

    /// A SISO state-space realization of `Ξ̃(s)` (eq. 16 of the paper).
    ///
    /// # Errors
    ///
    /// Propagates realization failures.
    pub fn state_space(&self) -> Result<StateSpace> {
        Ok(StateSpace::from_pole_residue_element(&self.model, 0, 0)?)
    }

    /// Magnitude `|Ξ̃(jω)|` of the model at the angular frequency `ω`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (never triggered for stable models and
    /// real frequencies).
    pub fn evaluate_magnitude(&self, omega: f64) -> Result<f64> {
        Ok(self.model.evaluate_at_omega(omega)?[(0, 0)].abs())
    }

    /// Number of poles of the weighting model.
    pub fn order(&self) -> usize {
        self.model.order()
    }
}

/// Fits a stable, minimum-phase rational model `Ξ̃(s)` such that
/// `|Ξ̃(jω_k)| ≈ ξ_k` for the given magnitude samples.
///
/// # Errors
///
/// Returns [`VectFitError::InvalidInput`] for malformed samples or
/// configuration, and [`VectFitError::FitFailed`] when the spectral
/// factorization cannot be completed.
///
/// ```
/// use pim_vectfit::{fit_magnitude, MagnitudeFitConfig};
///
/// # fn main() -> Result<(), pim_vectfit::VectFitError> {
/// // Magnitude of H(s) = 1e3/(s + 1e3): a first-order low-pass.
/// let omegas: Vec<f64> = (0..60).map(|k| 10f64.powf(1.0 + 0.1 * k as f64)).collect();
/// let mags: Vec<f64> = omegas.iter().map(|w| 1e3 / (w * w + 1e6_f64).sqrt()).collect();
/// let cfg = MagnitudeFitConfig { order: 2, n_iterations: 6, ..Default::default() };
/// let xi = fit_magnitude(&omegas, &mags, &cfg)?;
/// let err = (xi.evaluate_magnitude(1e3)? - 1.0 / 2f64.sqrt()).abs();
/// assert!(err < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn fit_magnitude(
    omegas: &[f64],
    magnitudes: &[f64],
    config: &MagnitudeFitConfig,
) -> Result<SensitivityModel> {
    if omegas.len() != magnitudes.len() {
        return Err(VectFitError::InvalidInput(format!(
            "{} frequencies but {} magnitude samples",
            omegas.len(),
            magnitudes.len()
        )));
    }
    if config.order == 0 {
        return Err(VectFitError::InvalidInput("order must be positive".into()));
    }
    if omegas.len() < 2 * config.order + 2 {
        return Err(VectFitError::InvalidInput(format!(
            "{} samples are not enough to identify an order-{} magnitude model",
            omegas.len(),
            config.order
        )));
    }
    if magnitudes.iter().any(|&m| !(m >= 0.0) || !m.is_finite()) {
        return Err(VectFitError::InvalidInput(
            "magnitude samples must be finite and non-negative".into(),
        ));
    }
    let max_mag = magnitudes.iter().fold(0.0_f64, |a, &b| a.max(b));
    // audit:allow(float-eq): an all-zero response cannot be magnitude-normalised
    if max_mag == 0.0 {
        return Err(VectFitError::InvalidInput("all magnitude samples are zero".into()));
    }

    // Work in x = ω² with the squared magnitude, floored for robustness.
    let xs_raw: Vec<f64> = omegas.iter().map(|w| w * w).collect();
    let floor_raw = config.floor * max_mag * max_mag;
    let gs_raw: Vec<f64> = magnitudes.iter().map(|m| (m * m).max(floor_raw)).collect();
    let x_max = xs_raw.iter().fold(0.0_f64, |a, &b| a.max(b));
    let x_min_nz = xs_raw.iter().copied().filter(|&x| x > 0.0).fold(f64::INFINITY, f64::min);
    // audit:allow(float-eq): exact-zero maximum abscissa makes the log map degenerate
    if !x_max.is_finite() || x_max == 0.0 || !x_min_nz.is_finite() {
        return Err(VectFitError::InvalidInput(
            "frequency samples must span a positive band".into(),
        ));
    }

    // Normalize the abscissa and the magnitude so the regression columns are
    // O(1); the result is rescaled afterwards.
    let g_scale = gs_raw.iter().fold(0.0_f64, |a, &b| a.max(b));
    let xs: Vec<f64> = xs_raw.iter().map(|x| x / x_max).collect();
    let gs: Vec<f64> = gs_raw.iter().map(|g| g / g_scale).collect();
    let floor = floor_raw / g_scale;
    let x_min_n = x_min_nz / x_max;

    // The spectral function G(x) gets one x-domain pole per requested order:
    // each x-domain pole expands to a ± pair in s, of which the stable one is
    // kept, so the s-domain order equals the x-domain order.
    let m_order = config.order;
    // Initial x-domain poles: real, negative, log-spaced over the x band.
    let mut q: Vec<Complex64> = (0..m_order)
        .map(|k| {
            let t = if m_order == 1 { 0.5 } else { k as f64 / (m_order - 1) as f64 };
            let mag = 10f64.powf(x_min_n.log10() + (0.0 - x_min_n.log10()) * t);
            Complex64::new(-mag, 0.0)
        })
        .collect();

    for _ in 0..config.n_iterations {
        q = relocate_real_axis_poles(&xs, &gs, &q)?;
        // In the x = ω² domain the only forbidden pole locations are on the
        // positive real axis (where the data lives): a lightly damped s-plane
        // resonance maps to an x-domain pole with *positive* real part and
        // nonzero imaginary part, which is perfectly legitimate. Only real
        // positive poles are reflected.
        for pole in &mut q {
            // audit:allow(float-eq): real poles carry a bitwise-zero imaginary part by construction
            if pole.im == 0.0 && pole.re > 0.0 {
                pole.re = -pole.re;
            }
        }
    }

    // Final residue identification for G(x) = d + Σ r/(x - q).
    let (coeffs, d_fit) = identify_real_axis_residues(&xs, &gs, &q)?;
    let d_spec = if d_fit > floor { d_fit } else { floor };

    // Zeros of G(x): eigenvalues of A - b d⁻¹ c of the SISO x-domain realization.
    let blocks = pole_blocks(&q)?;
    let n = q.len();
    let mut a = Mat::zeros(n, n);
    let mut b = Mat::zeros(n, 1);
    let mut c = Mat::zeros(1, n);
    for blk in &blocks {
        match *blk {
            PoleBlock::Real(i) => {
                a[(i, i)] = q[i].re;
                b[(i, 0)] = 1.0;
                c[(0, i)] = coeffs[i];
            }
            PoleBlock::Pair(i) => {
                a[(i, i)] = q[i].re;
                a[(i, i + 1)] = q[i].im;
                a[(i + 1, i)] = -q[i].im;
                a[(i + 1, i + 1)] = q[i].re;
                b[(i, 0)] = 1.0;
                c[(0, i)] = 2.0 * coeffs[i];
                c[(0, i + 1)] = 2.0 * coeffs[i + 1];
            }
        }
    }
    let closed = &a - &b.matmul(&c)?.scaled(1.0 / d_spec);
    let x_zeros = symmetrize_spectrum(&eigenvalues(&closed)?);

    // Undo the abscissa normalization, then map x-domain poles/zeros to the
    // stable / minimum-phase s-domain members:
    // x = -s²  ⇒  s = ±√(-x); keep the root with negative real part.
    let q_full: Vec<Complex64> = q.iter().map(|p| p.scale(x_max)).collect();
    let zeros_full: Vec<Complex64> = x_zeros.iter().map(|z| z.scale(x_max)).collect();
    let s_poles = map_to_stable_s(&q_full);
    let s_zeros = map_to_stable_s(&zeros_full);

    // Gain: match sqrt(G) against the unit-gain factor in a robust (median) way.
    let mut ratios: Vec<f64> = Vec::with_capacity(xs.len());
    for (k, &w) in omegas.iter().enumerate() {
        let s = Complex64::from_imag(w);
        let mut num = Complex64::ONE;
        for z in &s_zeros {
            num *= s - *z;
        }
        let mut den = Complex64::ONE;
        for p in &s_poles {
            den *= s - *p;
        }
        let unit = (num / den).abs();
        if unit > 0.0 && unit.is_finite() {
            ratios.push(gs_raw[k].sqrt() / unit);
        }
    }
    if ratios.is_empty() {
        return Err(VectFitError::FitFailed(
            "cannot determine the gain of the spectral factor".into(),
        ));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let gain = ratios[ratios.len() / 2];

    // Partial-fraction expansion of gain·Π(s−z)/Π(s−p).
    let model = expand_partial_fractions(gain, &s_zeros, &s_poles)?;
    Ok(SensitivityModel { model })
}

/// One pole-relocation step of the scalar real-axis (x-domain) fit.
fn relocate_real_axis_poles(xs: &[f64], gs: &[f64], q: &[Complex64]) -> Result<Vec<Complex64>> {
    let k_samples = xs.len();
    let n = q.len();
    let blocks = pole_blocks(q)?;
    // System: [phi, 1, -g*phi] [c; d; c~] = g  (all real).
    let mut a = Mat::zeros(k_samples, 2 * n + 1);
    let mut rhs = vec![0.0; k_samples];
    for k in 0..k_samples {
        // Relative (1/g) row weighting: the fit then tracks the magnitude in
        // relative terms over its whole dynamic range, which is what a
        // frequency-dependent weight needs (cf. Fig. 3 of the paper).
        let wk = 1.0 / gs[k];
        for blk in &blocks {
            match *blk {
                PoleBlock::Real(i) => {
                    let phi = 1.0 / (xs[k] - q[i].re);
                    a[(k, i)] = wk * phi;
                    a[(k, n + 1 + i)] = -gs[k] * wk * phi;
                }
                PoleBlock::Pair(i) => {
                    let s = Complex64::from_real(xs[k]);
                    let f1 = (s - q[i]).recip();
                    let f2 = (s - q[i + 1]).recip();
                    let phi = (f1 + f2).re;
                    let phi2 = ((f1 - f2) * Complex64::I).re;
                    a[(k, i)] = wk * phi;
                    a[(k, i + 1)] = wk * phi2;
                    a[(k, n + 1 + i)] = -gs[k] * wk * phi;
                    a[(k, n + 1 + i + 1)] = -gs[k] * wk * phi2;
                }
            }
        }
        a[(k, n)] = wk;
        rhs[k] = wk * gs[k];
    }
    let sol = lstsq_scaled(&a, &rhs, 1e-10)?;
    let sigma_res = &sol[n + 1..];

    // Zeros of sigma(x) = 1 + c~ (xI - A)^(-1) b.
    let mut a_s = Mat::zeros(n, n);
    let mut b_s = Mat::zeros(n, 1);
    let mut c_s = Mat::zeros(1, n);
    for blk in &blocks {
        match *blk {
            PoleBlock::Real(i) => {
                a_s[(i, i)] = q[i].re;
                b_s[(i, 0)] = 1.0;
                c_s[(0, i)] = sigma_res[i];
            }
            PoleBlock::Pair(i) => {
                a_s[(i, i)] = q[i].re;
                a_s[(i, i + 1)] = q[i].im;
                a_s[(i + 1, i)] = -q[i].im;
                a_s[(i + 1, i + 1)] = q[i].re;
                b_s[(i, 0)] = 1.0;
                c_s[(0, i)] = 2.0 * sigma_res[i];
                c_s[(0, i + 1)] = 2.0 * sigma_res[i + 1];
            }
        }
    }
    let closed = &a_s - &b_s.matmul(&c_s)?;
    let mut new_q = symmetrize_spectrum(&eigenvalues(&closed)?);
    new_q.sort_by(|a, b| {
        (a.im.abs(), a.re).partial_cmp(&(b.im.abs(), b.re)).unwrap_or(std::cmp::Ordering::Equal)
    });
    // Re-pair after sorting (sorting may interleave pair members).
    Ok(symmetrize_spectrum(&new_q))
}

/// Residue identification with fixed x-domain poles. Returns the real
/// coefficient vector (aligned with the real-pair basis) and the constant
/// term.
fn identify_real_axis_residues(xs: &[f64], gs: &[f64], q: &[Complex64]) -> Result<(Vec<f64>, f64)> {
    let k_samples = xs.len();
    let n = q.len();
    let blocks = pole_blocks(q)?;
    let mut a = Mat::zeros(k_samples, n + 1);
    let mut rhs = vec![0.0; k_samples];
    for k in 0..k_samples {
        let wk = 1.0 / gs[k];
        for blk in &blocks {
            match *blk {
                PoleBlock::Real(i) => {
                    a[(k, i)] = wk / (xs[k] - q[i].re);
                }
                PoleBlock::Pair(i) => {
                    let s = Complex64::from_real(xs[k]);
                    let f1 = (s - q[i]).recip();
                    let f2 = (s - q[i + 1]).recip();
                    a[(k, i)] = wk * (f1 + f2).re;
                    a[(k, i + 1)] = wk * ((f1 - f2) * Complex64::I).re;
                }
            }
        }
        a[(k, n)] = wk;
        rhs[k] = 1.0;
    }
    let sol = lstsq_scaled(&a, &rhs, 1e-10)?;
    let d = sol[n];
    Ok((sol[..n].to_vec(), d))
}

/// Maps x-domain poles/zeros to their stable (left-half-plane) s-domain
/// counterparts through `s = −√(−x)`.
fn map_to_stable_s(xs: &[Complex64]) -> Vec<Complex64> {
    let mut out: Vec<Complex64> = xs.iter().map(|&x| -((-x).sqrt())).collect();
    // Guard: purely imaginary results (x real positive) are nudged into the
    // LHP so the factor stays strictly stable.
    for p in &mut out {
        if p.re > -1e-12 * p.abs().max(1.0) {
            p.re = -1e-6 * p.abs().max(1.0);
        }
    }
    symmetrize_spectrum(&out)
}

/// Expands `gain·Π(s−z)/Π(s−p)` into pole–residue form and packages it as a
/// single-port [`PoleResidueModel`].
fn expand_partial_fractions(
    gain: f64,
    zeros: &[Complex64],
    poles: &[Complex64],
) -> Result<PoleResidueModel> {
    // Separate poles that are numerically coincident to avoid division by zero.
    let mut p = poles.to_vec();
    for i in 0..p.len() {
        for j in 0..i {
            if (p[i] - p[j]).abs() < 1e-9 * p[i].abs().max(1e-30) {
                p[i].re *= 1.0 + 1e-6;
                p[i].im *= 1.0 - 1e-6;
            }
        }
    }
    let p = symmetrize_spectrum(&p);
    let d_term = if zeros.len() >= p.len() { gain } else { 0.0 };
    let mut residues = Vec::with_capacity(p.len());
    for (i, &pi) in p.iter().enumerate() {
        let mut num = Complex64::from_real(gain);
        for z in zeros {
            num *= pi - *z;
        }
        let mut den = Complex64::ONE;
        for (j, &pj) in p.iter().enumerate() {
            if j != i {
                den *= pi - pj;
            }
        }
        // audit:allow(float-eq): evaluation exactly on a pole must take the limit branch
        if den.abs() == 0.0 {
            return Err(VectFitError::FitFailed(
                "repeated poles in the spectral factor; partial fraction expansion failed".into(),
            ));
        }
        residues.push(num / den);
    }
    // Force exact conjugate symmetry / realness expected by the model type.
    let blocks = pole_blocks(&p)?;
    let mut res_mats = vec![CMat::zeros(1, 1); p.len()];
    for blk in &blocks {
        match *blk {
            PoleBlock::Real(i) => {
                res_mats[i][(0, 0)] = Complex64::from_real(residues[i].re);
            }
            PoleBlock::Pair(i) => {
                res_mats[i][(0, 0)] = residues[i];
                res_mats[i + 1][(0, 0)] = residues[i].conj();
            }
        }
    }
    Ok(PoleResidueModel::new(p, res_mats, Mat::from_diag(&[d_term]))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_omegas(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| 10f64.powf(lo.log10() + (hi.log10() - lo.log10()) * k as f64 / (n - 1) as f64))
            .collect()
    }

    #[test]
    fn fits_first_order_low_pass_magnitude() {
        let omegas = log_omegas(1.0, 1e6, 80);
        let mags: Vec<f64> = omegas.iter().map(|w| 2e3 / (w * w + 1e6_f64).sqrt()).collect();
        let cfg = MagnitudeFitConfig { order: 2, n_iterations: 8, ..Default::default() };
        let xi = fit_magnitude(&omegas, &mags, &cfg).unwrap();
        for (k, &w) in omegas.iter().enumerate() {
            let m = xi.evaluate_magnitude(w).unwrap();
            assert!(
                (m - mags[k]).abs() < 2e-2 * mags[0].max(mags[k]),
                "mismatch at w={w}: {m} vs {}",
                mags[k]
            );
        }
        assert!(xi.model().is_stable());
    }

    #[test]
    fn fits_band_limited_bump() {
        // |H| with a mild resonant bump, similar in shape to a PDN sensitivity.
        let omegas = log_omegas(1e2, 1e8, 120);
        let mags: Vec<f64> = omegas
            .iter()
            .map(|&w| {
                let s = Complex64::from_imag(w);
                let h = (s * 1e-5 + 1.0).recip() * 30.0
                    + ((s / 3e6) * (s / 3e6) + s / 3e6 * 0.6 + 1.0).recip() * 2.0;
                h.abs()
            })
            .collect();
        let cfg = MagnitudeFitConfig { order: 8, n_iterations: 12, ..Default::default() };
        let xi = fit_magnitude(&omegas, &mags, &cfg).unwrap();
        // A sensitivity weight only needs to track the magnitude shape, not
        // reproduce it exactly (the paper leaves the resonant spike of its
        // Fig. 3 unfitted); require a 20% relative match where it matters.
        let peak = mags.iter().fold(0.0_f64, |a, &b| a.max(b));
        for (k, &w) in omegas.iter().enumerate() {
            if mags[k] > 0.05 * peak {
                let m = xi.evaluate_magnitude(w).unwrap();
                assert!(
                    (m - mags[k]).abs() < 0.2 * mags[k],
                    "mismatch at w={w}: model {m} vs data {}",
                    mags[k]
                );
            }
        }
        assert!(xi.model().is_stable());
        assert_eq!(xi.order(), 8);
    }

    #[test]
    fn state_space_realization_matches_model() {
        let omegas = log_omegas(1.0, 1e5, 60);
        let mags: Vec<f64> = omegas.iter().map(|w| 50.0 / (w + 100.0)).collect();
        let cfg = MagnitudeFitConfig { order: 3, n_iterations: 6, ..Default::default() };
        let xi = fit_magnitude(&omegas, &mags, &cfg).unwrap();
        let ss = xi.state_space().unwrap();
        for &w in &[1.0, 57.0, 1e3, 9e4] {
            let a = xi.evaluate_magnitude(w).unwrap();
            let b = ss.evaluate_at_omega(w).unwrap()[(0, 0)].abs();
            assert!((a - b).abs() < 1e-9 * a.max(1.0));
        }
        assert!(ss.is_stable().unwrap());
    }

    #[test]
    fn result_is_minimum_phase_like() {
        // The magnitude of the fitted factor must not depend on which
        // (stable) spectral factor was chosen; verify |Ξ̃| matches the data
        // and all poles are strictly in the LHP.
        let omegas = log_omegas(10.0, 1e7, 100);
        let mags: Vec<f64> = omegas.iter().map(|&w| 5.0 / ((w / 1e3) + 1.0) + 0.2).collect();
        let cfg = MagnitudeFitConfig { order: 4, n_iterations: 8, ..Default::default() };
        let xi = fit_magnitude(&omegas, &mags, &cfg).unwrap();
        assert!(xi.model().poles().iter().all(|p| p.re < 0.0));
        let mid = 50;
        let m = xi.evaluate_magnitude(omegas[mid]).unwrap();
        assert!((m - mags[mid]).abs() < 0.1 * mags[mid]);
    }

    #[test]
    fn input_validation() {
        let omegas = log_omegas(1.0, 1e3, 30);
        let mags = vec![1.0; 30];
        let cfg = MagnitudeFitConfig::default();
        assert!(fit_magnitude(&omegas, &mags[..10], &cfg).is_err());
        assert!(fit_magnitude(&omegas, &vec![0.0; 30], &cfg).is_err());
        assert!(fit_magnitude(&omegas, &vec![-1.0; 30], &cfg).is_err());
        let cfg0 = MagnitudeFitConfig { order: 0, ..Default::default() };
        assert!(fit_magnitude(&omegas, &mags, &cfg0).is_err());
        let cfg_big = MagnitudeFitConfig { order: 20, ..Default::default() };
        assert!(fit_magnitude(&omegas, &mags, &cfg_big).is_err());
    }

    #[test]
    fn constant_magnitude_is_reproduced() {
        let omegas = log_omegas(1.0, 1e4, 40);
        let mags = vec![3.0; 40];
        let cfg = MagnitudeFitConfig { order: 2, n_iterations: 5, ..Default::default() };
        let xi = fit_magnitude(&omegas, &mags, &cfg).unwrap();
        for &w in &[2.0, 50.0, 5e3] {
            assert!((xi.evaluate_magnitude(w).unwrap() - 3.0).abs() < 0.05);
        }
    }
}
