//! Initial pole placement and spectrum bookkeeping helpers for the fitters.

use crate::{Result, VectFitError};
use pim_linalg::Complex64;

/// Generates the standard Vector Fitting starting pole set: complex-conjugate
/// pairs whose imaginary parts are logarithmically spread over
/// `[ω_min, ω_max]` and whose real parts are `−β·ω` with the customary
/// `β = 1/100`. When `n_poles` is odd, one real pole at `−ω_min` is added.
///
/// # Errors
///
/// Returns [`VectFitError::InvalidInput`] for a non-positive frequency range
/// or `n_poles == 0`.
///
/// ```
/// use pim_vectfit::poles::initial_poles;
/// # fn main() -> Result<(), pim_vectfit::VectFitError> {
/// let poles = initial_poles(2.0 * std::f64::consts::PI * 1e3, 2.0 * std::f64::consts::PI * 2e9, 12)?;
/// assert_eq!(poles.len(), 12);
/// assert!(poles.iter().all(|p| p.re < 0.0));
/// # Ok(())
/// # }
/// ```
pub fn initial_poles(omega_min: f64, omega_max: f64, n_poles: usize) -> Result<Vec<Complex64>> {
    if n_poles == 0 {
        return Err(VectFitError::InvalidInput("n_poles must be positive".into()));
    }
    if !(omega_min > 0.0) || !(omega_max > omega_min) {
        return Err(VectFitError::InvalidInput(
            "initial_poles requires 0 < omega_min < omega_max".into(),
        ));
    }
    let mut poles = Vec::with_capacity(n_poles);
    let n_pairs = n_poles / 2;
    let has_real = n_poles % 2 == 1;
    if has_real {
        poles.push(Complex64::new(-omega_min, 0.0));
    }
    if n_pairs > 0 {
        let l0 = omega_min.log10();
        let l1 = omega_max.log10();
        for k in 0..n_pairs {
            let t = if n_pairs == 1 { 0.5 } else { k as f64 / (n_pairs - 1) as f64 };
            let beta = 10f64.powf(l0 + (l1 - l0) * t);
            let alpha = -beta / 100.0;
            poles.push(Complex64::new(alpha, beta));
            poles.push(Complex64::new(alpha, -beta));
        }
    }
    Ok(poles)
}

/// Rebuilds a conjugate-symmetric pole list from raw eigenvalues of a real
/// matrix: eigenvalues with negligible imaginary part become real poles, the
/// rest are paired into `(p, p̄)` with the positive-imaginary member first.
///
/// Raw eigenvalues of a real matrix are conjugate-symmetric only up to
/// roundoff; this helper restores the exact symmetry required by
/// [`pim_statespace::PoleResidueModel`].
pub fn symmetrize_spectrum(eigenvalues: &[Complex64]) -> Vec<Complex64> {
    let mut reals: Vec<f64> = Vec::new();
    let mut upper: Vec<Complex64> = Vec::new();
    let mut lower: Vec<Complex64> = Vec::new();
    for &ev in eigenvalues {
        let scale = ev.abs().max(1.0);
        if ev.im.abs() <= 1e-9 * scale {
            reals.push(ev.re);
        } else if ev.im > 0.0 {
            upper.push(ev);
        } else {
            lower.push(ev);
        }
    }
    // Pair each upper-half eigenvalue with its closest lower-half partner and
    // average them to restore exact conjugacy. Unmatched leftovers fall back
    // to real poles (their imaginary part is dropped).
    let mut out = Vec::with_capacity(eigenvalues.len());
    for r in &reals {
        out.push(Complex64::new(*r, 0.0));
    }
    let mut lower_used = vec![false; lower.len()];
    for u in upper {
        let mut best: Option<(usize, f64)> = None;
        for (idx, l) in lower.iter().enumerate() {
            if lower_used[idx] {
                continue;
            }
            let d = (u.conj() - *l).abs();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((idx, d));
            }
        }
        match best {
            Some((idx, _)) => {
                lower_used[idx] = true;
                let l = lower[idx];
                let avg = Complex64::new(0.5 * (u.re + l.re), 0.5 * (u.im - l.im));
                out.push(avg);
                out.push(avg.conj());
            }
            None => out.push(Complex64::new(u.re, 0.0)),
        }
    }
    for (idx, l) in lower.iter().enumerate() {
        if !lower_used[idx] {
            out.push(Complex64::new(l.re, 0.0));
        }
    }
    out
}

/// Reflects every unstable pole into the open left half plane (`Re ← −|Re|`),
/// the standard stabilization applied after each pole-relocation step.
pub fn flip_unstable(poles: &mut [Complex64]) {
    for p in poles {
        if p.re > 0.0 {
            p.re = -p.re;
        }
    }
}

/// Number of real-valued basis coefficients associated with a
/// conjugate-symmetric pole list (one per real pole, two per complex pair —
/// which equals the pole count when pairs are stored explicitly).
pub fn real_coefficient_count(poles: &[Complex64]) -> usize {
    poles.len()
}

/// Classification of a conjugate-symmetric pole list into scan-friendly
/// blocks: `Real(index)` or `Pair(index_of_upper_member)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoleBlock {
    /// A single real pole at the given index of the pole list.
    Real(usize),
    /// A complex-conjugate pair occupying indices `i` and `i + 1`.
    Pair(usize),
}

/// Walks a conjugate-symmetric pole list (pairs adjacent) and produces the
/// block structure used to build real-coefficient least squares bases.
///
/// # Errors
///
/// Returns [`VectFitError::InvalidInput`] if a complex pole has no adjacent
/// conjugate partner.
pub fn pole_blocks(poles: &[Complex64]) -> Result<Vec<PoleBlock>> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < poles.len() {
        let p = poles[i];
        let scale = p.abs().max(1.0);
        if p.im.abs() <= 1e-9 * scale {
            blocks.push(PoleBlock::Real(i));
            i += 1;
        } else {
            let q = poles.get(i + 1).copied().ok_or_else(|| {
                VectFitError::InvalidInput(format!("complex pole {p} has no conjugate partner"))
            })?;
            if (q - p.conj()).abs() > 1e-6 * scale {
                return Err(VectFitError::InvalidInput(format!(
                    "poles at indices {i} and {} are not a conjugate pair",
                    i + 1
                )));
            }
            blocks.push(PoleBlock::Pair(i));
            i += 2;
        }
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_poles_structure() {
        let poles = initial_poles(1.0, 1e6, 13).unwrap();
        assert_eq!(poles.len(), 13);
        // One real pole (odd order), the rest conjugate pairs.
        let blocks = pole_blocks(&poles).unwrap();
        let reals = blocks.iter().filter(|b| matches!(b, PoleBlock::Real(_))).count();
        assert_eq!(reals, 1);
        assert!(poles.iter().all(|p| p.re < 0.0));
        // Imaginary parts span the band.
        let max_im = poles.iter().map(|p| p.im.abs()).fold(0.0_f64, f64::max);
        assert!((max_im - 1e6).abs() < 1.0);
        // Errors.
        assert!(initial_poles(0.0, 1.0, 4).is_err());
        assert!(initial_poles(1.0, 1.0, 4).is_err());
        assert!(initial_poles(1.0, 2.0, 0).is_err());
    }

    #[test]
    fn even_order_has_no_real_pole() {
        let poles = initial_poles(10.0, 1e4, 8).unwrap();
        let blocks = pole_blocks(&poles).unwrap();
        assert!(blocks.iter().all(|b| matches!(b, PoleBlock::Pair(_))));
        assert_eq!(poles.len(), 8);
    }

    #[test]
    fn symmetrize_recovers_pairs_from_noisy_spectrum() {
        let evs = vec![
            Complex64::new(-1.0, 2.0 + 1e-12),
            Complex64::new(-3.0, 1e-13),
            Complex64::new(-1.0 + 1e-12, -2.0),
        ];
        let sym = symmetrize_spectrum(&evs);
        assert_eq!(sym.len(), 3);
        let blocks = pole_blocks(&sym).unwrap();
        assert_eq!(blocks.len(), 2);
        // The pair is exactly conjugate after symmetrization.
        let pair_idx = sym.iter().position(|p| p.im > 0.0).unwrap();
        assert_eq!(sym[pair_idx + 1], sym[pair_idx].conj());
    }

    #[test]
    fn symmetrize_handles_unmatched_eigenvalues() {
        // A single complex eigenvalue without a partner degrades to real.
        let sym = symmetrize_spectrum(&[Complex64::new(-2.0, 5.0)]);
        assert_eq!(sym.len(), 1);
        assert_eq!((sym[0].im).to_bits(), 0.0f64.to_bits());
        let sym2 = symmetrize_spectrum(&[Complex64::new(-2.0, -5.0)]);
        assert_eq!((sym2[0].im).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn flip_unstable_reflects_into_lhp() {
        let mut poles = vec![Complex64::new(3.0, 4.0), Complex64::new(-1.0, 0.0)];
        flip_unstable(&mut poles);
        assert!(poles.iter().all(|p| p.re <= 0.0));
        assert_eq!((poles[0].im).to_bits(), 4.0f64.to_bits());
    }

    #[test]
    fn pole_blocks_rejects_malformed_lists() {
        assert!(pole_blocks(&[Complex64::new(-1.0, 2.0)]).is_err());
        assert!(pole_blocks(&[Complex64::new(-1.0, 2.0), Complex64::new(-1.0, 3.0)]).is_err());
        assert_eq!(real_coefficient_count(&[Complex64::new(-1.0, 0.0)]), 1);
    }
}
