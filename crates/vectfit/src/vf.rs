//! Vector Fitting of tabulated multiport frequency responses.
//!
//! This is the classic pole-relocation algorithm of Gustavsen & Semlyen
//! (reference \[8\] of the paper) in its "fast" per-element QR-compressed form,
//! extended with the per-frequency weighting of eq. (6) that the paper uses to
//! embed the PDN sensitivity into the fitting metric.

use crate::poles::{flip_unstable, initial_poles, pole_blocks, symmetrize_spectrum, PoleBlock};
use crate::{Result, VectFitError};
use pim_linalg::eig::eigenvalues;
use pim_linalg::qr::{lstsq_scaled, QrFactor};
use pim_linalg::{CMat, Complex64, Mat};
use pim_rfdata::NetworkData;
use pim_statespace::PoleResidueModel;

/// Configuration of a Vector Fitting run.
#[derive(Debug, Clone)]
pub struct VfConfig {
    /// Model order (number of poles, counting both members of complex pairs).
    pub n_poles: usize,
    /// Number of pole-relocation iterations.
    pub n_iterations: usize,
    /// Reflect unstable relocated poles into the left half plane.
    pub enforce_stable_poles: bool,
    /// Include the constant (asymptotic) term `D` in the model.
    pub fit_constant: bool,
    /// Symmetrize the residue and constant matrices (reciprocal networks).
    pub enforce_symmetry: bool,
    /// Optional user-supplied starting poles (conjugate pairs adjacent);
    /// when `None` the standard log-spaced heuristic is used.
    pub initial_poles: Option<Vec<Complex64>>,
}

impl Default for VfConfig {
    fn default() -> Self {
        VfConfig {
            n_poles: 12,
            n_iterations: 5,
            enforce_stable_poles: true,
            fit_constant: true,
            enforce_symmetry: true,
            initial_poles: None,
        }
    }
}

impl VfConfig {
    /// Default configuration with the given model order (`n_poles`), the
    /// knob every caller sets; chain [`VfConfig::iterations`] for the second
    /// most common one.
    pub fn with_order(n_poles: usize) -> Self {
        VfConfig { n_poles, ..VfConfig::default() }
    }

    /// Sets the number of pole-relocation iterations (builder style).
    #[must_use]
    pub fn iterations(mut self, n_iterations: usize) -> Self {
        self.n_iterations = n_iterations;
        self
    }
}

/// Outcome of a Vector Fitting run.
#[derive(Debug, Clone)]
pub struct VfResult {
    /// The identified pole–residue macromodel.
    pub model: PoleResidueModel,
    /// Unweighted RMS fitting error over all entries and frequencies.
    pub rms_error: f64,
    /// Weighted RMS fitting error (equals `rms_error` for unit weights).
    pub weighted_rms_error: f64,
    /// Pole sets after each relocation iteration (diagnostic).
    pub pole_history: Vec<Vec<Complex64>>,
}

/// Fits a common-pole rational macromodel to tabulated frequency responses.
///
/// `weights`, when provided, must hold one non-negative value per frequency
/// sample; the least-squares metric becomes the weighted error of eq. (6).
///
/// # Errors
///
/// Returns [`VectFitError::InvalidInput`] for malformed configuration or
/// weights and propagates numerical failures of the underlying solvers.
///
/// ```
/// use pim_linalg::{CMat, Complex64};
/// use pim_rfdata::{FrequencyGrid, NetworkData, ParameterKind};
/// use pim_vectfit::{vector_fit, VfConfig};
///
/// # fn main() -> Result<(), pim_vectfit::VectFitError> {
/// // Samples of H(s) = 1/(s+100) on a small grid.
/// let grid = FrequencyGrid::log_space(1.0, 1e4, 40)?;
/// let mats: Vec<CMat> = grid
///     .omegas()
///     .iter()
///     .map(|&w| CMat::from_diag(&[(Complex64::new(100.0, w)).recip()]))
///     .collect();
/// let data = NetworkData::new(grid, mats, ParameterKind::Scattering, 50.0)?;
/// let cfg = VfConfig { n_poles: 3, n_iterations: 4, ..VfConfig::default() };
/// let fit = vector_fit(&data, None, &cfg)?;
/// assert!(fit.rms_error < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn vector_fit(
    data: &NetworkData,
    weights: Option<&[f64]>,
    config: &VfConfig,
) -> Result<VfResult> {
    let k_samples = data.len();
    let ports = data.ports();
    if config.n_poles == 0 {
        return Err(VectFitError::InvalidInput("n_poles must be positive".into()));
    }
    if 2 * k_samples < 2 * config.n_poles + 2 {
        return Err(VectFitError::InvalidInput(format!(
            "{} frequency samples are not enough to identify {} poles",
            k_samples, config.n_poles
        )));
    }
    let w: Vec<f64> = match weights {
        Some(w) => {
            if w.len() != k_samples {
                return Err(VectFitError::InvalidInput(format!(
                    "expected {} weights, got {}",
                    k_samples,
                    w.len()
                )));
            }
            if w.iter().any(|&x| !(x >= 0.0) || !x.is_finite()) {
                return Err(VectFitError::InvalidInput(
                    "weights must be finite and non-negative".into(),
                ));
            }
            w.to_vec()
        }
        None => vec![1.0; k_samples],
    };

    let omegas = data.grid().omegas();
    let initial = match &config.initial_poles {
        Some(p) => {
            if p.len() != config.n_poles {
                return Err(VectFitError::InvalidInput(format!(
                    "initial_poles has {} entries but n_poles is {}",
                    p.len(),
                    config.n_poles
                )));
            }
            // Validate pairing up front.
            pole_blocks(p)?;
            p.clone()
        }
        None => {
            let w_min = omegas.iter().copied().find(|&x| x > 0.0).unwrap_or(1.0);
            let w_max = omegas.last().copied().unwrap_or(1.0).max(w_min * 10.0);
            initial_poles(w_min, w_max, config.n_poles)?
        }
    };

    // Normalize the frequency axis so every regression column is O(1); the
    // huge dynamic range of PDN grids (kHz to GHz) would otherwise make the
    // least-squares systems badly scaled.
    let omega_scale = omegas.iter().copied().fold(0.0_f64, f64::max).max(f64::MIN_POSITIVE);
    let omegas_n: Vec<f64> = omegas.iter().map(|w| w / omega_scale).collect();
    let mut poles: Vec<Complex64> = initial.iter().map(|p| p.scale(1.0 / omega_scale)).collect();

    let mut pole_history = Vec::with_capacity(config.n_iterations);
    for _iter in 0..config.n_iterations {
        poles = relocate_poles(data, &omegas_n, &w, &poles, config)?;
        if config.enforce_stable_poles {
            flip_unstable(&mut poles);
        }
        pole_history.push(poles.iter().map(|p| p.scale(omega_scale)).collect());
    }

    let model_n = identify_residues(data, &omegas_n, &w, &poles, config)?;
    // Undo the frequency normalization: s = ω_scale·s' maps poles and
    // residues by the same factor and leaves the constant term untouched.
    let model = PoleResidueModel::new(
        model_n.poles().iter().map(|p| p.scale(omega_scale)).collect(),
        model_n.residues().iter().map(|r| r.scaled_real(omega_scale)).collect(),
        model_n.d().clone(),
    )?;

    // Fitting errors.
    let mut sum_sq = 0.0;
    let mut sum_sq_w = 0.0;
    for (k, &omega) in omegas.iter().enumerate() {
        let h = model.evaluate_at_omega(omega)?;
        let diff = (&h - data.matrix(k)).frobenius_norm();
        sum_sq += diff * diff;
        sum_sq_w += w[k] * w[k] * diff * diff;
    }
    let denom = (k_samples * ports * ports) as f64;
    Ok(VfResult {
        model,
        rms_error: (sum_sq / denom).sqrt(),
        weighted_rms_error: (sum_sq_w / denom).sqrt(),
        pole_history,
    })
}

/// Builds the real-coefficient partial-fraction basis at every frequency:
/// column `n` holds the basis function of real coefficient `n`.
fn build_basis(omegas: &[f64], poles: &[Complex64]) -> Result<CMat> {
    let blocks = pole_blocks(poles)?;
    let n = poles.len();
    let mut phi = CMat::zeros(omegas.len(), n);
    for (k, &omega) in omegas.iter().enumerate() {
        let s = Complex64::from_imag(omega);
        for blk in &blocks {
            match *blk {
                PoleBlock::Real(i) => {
                    phi[(k, i)] = (s - poles[i]).recip();
                }
                PoleBlock::Pair(i) => {
                    let a = (s - poles[i]).recip();
                    let b = (s - poles[i + 1]).recip();
                    phi[(k, i)] = a + b;
                    phi[(k, i + 1)] = (a - b) * Complex64::I;
                }
            }
        }
    }
    Ok(phi)
}

/// One pole-relocation step: identifies the residues of the scaling function
/// `σ(s) = 1 + Σ c̃ₙ φₙ(s)` by compressed least squares over every matrix
/// element, then returns the zeros of `σ` as the new pole set.
fn relocate_poles(
    data: &NetworkData,
    omegas: &[f64],
    weights: &[f64],
    poles: &[Complex64],
    config: &VfConfig,
) -> Result<Vec<Complex64>> {
    let k_samples = omegas.len();
    let ports = data.ports();
    let n = poles.len();
    let nd = if config.fit_constant { 1 } else { 0 };
    let n_local = n + nd;
    let phi = build_basis(omegas, poles)?;

    // Compressed normal-block accumulation: for every element, QR-factor the
    // local problem `[phi, 1 | -h*phi] x = h` and keep only the rows that
    // couple to the shared sigma unknowns.
    //
    // The left block `[phi, 1]` is the same for every matrix element, so its
    // Householder reflectors are computed once and applied (`Qᵀ`) to each
    // element's sigma columns and right-hand side; only the trailing rows —
    // the residual after projecting out the shared columns — then need a
    // (much smaller) per-element QR. This produces bit-identical compressed
    // rows at roughly a third of the factorization work.
    let mut a1 = Mat::zeros(2 * k_samples, n_local);
    for k in 0..k_samples {
        let wk = weights[k];
        for c in 0..n {
            let b = phi[(k, c)];
            a1[(k, c)] = wk * b.re;
            a1[(k_samples + k, c)] = wk * b.im;
        }
        if nd == 1 {
            a1[(k, n)] = wk;
        }
    }
    let q1 = QrFactor::new(&a1)?;
    let tail_rows = 2 * k_samples - n_local;

    let mut stacked = Mat::zeros(ports * ports * n, n);
    let mut stacked_rhs = vec![0.0; ports * ports * n];
    let mut colbuf = vec![0.0; 2 * k_samples];
    let mut tail = Mat::zeros(tail_rows, n + 1);
    for i in 0..ports {
        for j in 0..ports {
            let h = data.element(i, j);
            for c in 0..=n {
                if c < n {
                    // Sigma column c: -w·h·phi_c.
                    for k in 0..k_samples {
                        let hb = h[k] * phi[(k, c)];
                        colbuf[k] = -weights[k] * hb.re;
                        colbuf[k_samples + k] = -weights[k] * hb.im;
                    }
                } else {
                    // Right-hand side: w·h.
                    for k in 0..k_samples {
                        colbuf[k] = weights[k] * h[k].re;
                        colbuf[k_samples + k] = weights[k] * h[k].im;
                    }
                }
                q1.apply_qt_in_place(&mut colbuf);
                for r in 0..tail_rows {
                    tail[(r, c)] = colbuf[n_local + r];
                }
            }
            let r2 = QrFactor::new(&tail)?.r();
            // Rows 0..n of the tail factor are the rows n_local..n_local+n
            // of the full factorization: the sigma-only coupling block.
            let base = (i * ports + j) * n;
            for row in 0..n {
                for c in row..n {
                    stacked[(base + row, c)] = r2[(row, c)];
                }
                stacked_rhs[base + row] = r2[(row, n)];
            }
        }
    }
    let big = stacked;
    // A lightly regularized, column-equilibrated solve: when the data can be
    // fitted exactly with fewer poles than requested, the scaling-function
    // problem is rank deficient and the regularization picks the small-norm
    // solution (equivalent to leaving the surplus poles in place).
    let sigma_res = lstsq_scaled(&big, &stacked_rhs, 1e-10)?;

    // Zeros of sigma(s) = 1 + c̃ (sI - A)^(-1) b  are the eigenvalues of A - b·c̃.
    let blocks = pole_blocks(poles)?;
    let mut a_sigma = Mat::zeros(n, n);
    let mut b_sigma = Mat::zeros(n, 1);
    let mut c_sigma = Mat::zeros(1, n);
    for blk in &blocks {
        match *blk {
            PoleBlock::Real(i) => {
                a_sigma[(i, i)] = poles[i].re;
                b_sigma[(i, 0)] = 1.0;
                c_sigma[(0, i)] = sigma_res[i];
            }
            PoleBlock::Pair(i) => {
                let sig = poles[i].re;
                let om = poles[i].im;
                a_sigma[(i, i)] = sig;
                a_sigma[(i, i + 1)] = om;
                a_sigma[(i + 1, i)] = -om;
                a_sigma[(i + 1, i + 1)] = sig;
                b_sigma[(i, 0)] = 1.0;
                c_sigma[(0, i)] = 2.0 * sigma_res[i];
                c_sigma[(0, i + 1)] = 2.0 * sigma_res[i + 1];
            }
        }
    }
    let closed = &a_sigma - &b_sigma.matmul(&c_sigma)?;
    let evs = eigenvalues(&closed)?;
    let mut new_poles = symmetrize_spectrum(&evs);
    // Keep a deterministic ordering: ascending |Im|, then ascending Re.
    sort_pole_pairs(&mut new_poles);
    Ok(new_poles)
}

/// Sorts a conjugate-symmetric pole list (pairs adjacent, positive imaginary
/// part first within a pair) by ascending imaginary magnitude.
fn sort_pole_pairs(poles: &mut Vec<Complex64>) {
    let blocks = pole_blocks(poles).unwrap_or_default();
    let mut groups: Vec<Vec<Complex64>> = Vec::new();
    for blk in blocks {
        match blk {
            PoleBlock::Real(i) => groups.push(vec![poles[i]]),
            PoleBlock::Pair(i) => {
                let p = if poles[i].im >= 0.0 { poles[i] } else { poles[i + 1] };
                groups.push(vec![p, p.conj()]);
            }
        }
    }
    groups.sort_by(|a, b| {
        let ka = (a[0].im.abs(), a[0].re);
        let kb = (b[0].im.abs(), b[0].re);
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    *poles = groups.into_iter().flatten().collect();
}

/// Final residue identification with fixed poles.
fn identify_residues(
    data: &NetworkData,
    omegas: &[f64],
    weights: &[f64],
    poles: &[Complex64],
    config: &VfConfig,
) -> Result<PoleResidueModel> {
    let k_samples = omegas.len();
    let ports = data.ports();
    let n = poles.len();
    let nd = if config.fit_constant { 1 } else { 0 };
    let phi = build_basis(omegas, poles)?;
    let blocks = pole_blocks(poles)?;

    // Shared regression matrix (identical for every element).
    let mut a = Mat::zeros(2 * k_samples, n + nd);
    for k in 0..k_samples {
        let wk = weights[k];
        for c in 0..n {
            let b = phi[(k, c)];
            a[(k, c)] = wk * b.re;
            a[(k_samples + k, c)] = wk * b.im;
        }
        if nd == 1 {
            a[(k, n)] = wk;
        }
    }
    let qr = QrFactor::new(&a)?;

    let mut residues = vec![CMat::zeros(ports, ports); n];
    let mut d = Mat::zeros(ports, ports);
    for i in 0..ports {
        for j in 0..ports {
            let h = data.element(i, j);
            let mut rhs = vec![0.0; 2 * k_samples];
            for k in 0..k_samples {
                rhs[k] = weights[k] * h[k].re;
                rhs[k_samples + k] = weights[k] * h[k].im;
            }
            let x = qr.solve_least_squares(&rhs)?;
            for blk in &blocks {
                match *blk {
                    PoleBlock::Real(m) => {
                        residues[m][(i, j)] = Complex64::from_real(x[m]);
                    }
                    PoleBlock::Pair(m) => {
                        let r = Complex64::new(x[m], x[m + 1]);
                        residues[m][(i, j)] = r;
                        residues[m + 1][(i, j)] = r.conj();
                    }
                }
            }
            if nd == 1 {
                d[(i, j)] = x[n];
            }
        }
    }

    if config.enforce_symmetry {
        for r in &mut residues {
            let sym = CMat::from_fn(ports, ports, |i, j| (r[(i, j)] + r[(j, i)]).scale(0.5));
            *r = sym;
        }
        d = Mat::from_fn(ports, ports, |i, j| 0.5 * (d[(i, j)] + d[(j, i)]));
    }

    Ok(PoleResidueModel::new(poles.to_vec(), residues, d)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_rfdata::{FrequencyGrid, ParameterKind};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A known 2-port rational function sampled on a grid.
    fn synthetic_data(grid: &FrequencyGrid) -> (PoleResidueModel, NetworkData) {
        let p1 = c(-2e4, 0.0);
        let p2 = c(-5e4, 3e5);
        let r1 = CMat::from_fn(2, 2, |i, j| c(1e4 * (1.0 + (i + j) as f64), 0.0));
        let r2 =
            CMat::from_fn(2, 2, |i, j| c(2e4 - 1e3 * (i + j) as f64, 5e3 * (1 + i + j) as f64));
        let d = Mat::from_fn(2, 2, |i, j| if i == j { 0.3 } else { 0.05 });
        let model =
            PoleResidueModel::new(vec![p1, p2, p2.conj()], vec![r1, r2.clone(), r2.conj()], d)
                .unwrap();
        let data = model.sample(grid, ParameterKind::Scattering, 50.0).unwrap();
        (model, data)
    }

    #[test]
    fn recovers_known_rational_function_exactly() {
        let grid = FrequencyGrid::log_space(1e2, 1e7, 80).unwrap().with_dc();
        let (reference, data) = synthetic_data(&grid);
        let cfg = VfConfig { n_poles: 3, n_iterations: 6, ..VfConfig::default() };
        let fit = vector_fit(&data, None, &cfg).unwrap();
        assert!(fit.rms_error < 1e-7, "rms error {}", fit.rms_error);
        assert!(fit.model.is_stable());
        assert_eq!(fit.model.order(), 3);
        // Poles must match the reference (sorted by imaginary part).
        let mut got: Vec<Complex64> = fit.model.poles().to_vec();
        let mut want: Vec<Complex64> = reference.poles().to_vec();
        let key = |p: &Complex64| (p.im, p.re);
        got.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        want.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-3 * w.abs(), "pole mismatch: {g} vs {w}");
        }
        assert_eq!(fit.pole_history.len(), 6);
    }

    #[test]
    fn fit_quality_improves_with_order_on_nonrational_data() {
        // Data with a frequency-dependent loss term that is not exactly
        // rational: higher order must fit at least as well.
        let grid = FrequencyGrid::log_space(1e3, 1e8, 60).unwrap();
        let mats: Vec<CMat> = grid
            .omegas()
            .iter()
            .map(|&w| {
                let s = Complex64::from_imag(w);
                let base = (s + 1e4).recip() * 1e4 + (s + 1e6).recip() * 5e5;
                let skin = Complex64::from_real(1.0 + (w / 1e8).sqrt() * 0.1);
                CMat::from_diag(&[base * skin.recip()])
            })
            .collect();
        let data = NetworkData::new(grid, mats, ParameterKind::Scattering, 50.0).unwrap();
        let cfg_lo = VfConfig { n_poles: 2, n_iterations: 5, ..VfConfig::default() };
        let cfg_hi = VfConfig { n_poles: 6, n_iterations: 5, ..VfConfig::default() };
        let e_lo = vector_fit(&data, None, &cfg_lo).unwrap().rms_error;
        let e_hi = vector_fit(&data, None, &cfg_hi).unwrap().rms_error;
        assert!(e_hi <= e_lo * 1.01, "order 6 ({e_hi}) should beat order 2 ({e_lo})");
        assert!(e_hi < 1e-3);
    }

    #[test]
    fn weighting_shifts_accuracy_toward_weighted_band() {
        // A 1-port response with two resonances; weight the low band heavily
        // and fit with an order too small to capture both: the low-frequency
        // band must then be fitted better than with uniform weights.
        let grid = FrequencyGrid::log_space(1e3, 1e9, 120).unwrap();
        let mats: Vec<CMat> = grid
            .omegas()
            .iter()
            .map(|&w| {
                let s = Complex64::from_imag(w);
                let h = (s + 1e4).recip() * 9e3
                    + ((s + 5e3) * (s + 2e8)).recip() * 4e11
                    + Complex64::from_real(0.05);
                CMat::from_diag(&[h])
            })
            .collect();
        let data = NetworkData::new(grid.clone(), mats, ParameterKind::Scattering, 50.0).unwrap();
        let weights: Vec<f64> =
            grid.freqs_hz().iter().map(|&f| if f < 1e6 { 100.0 } else { 1.0 }).collect();
        let cfg = VfConfig { n_poles: 2, n_iterations: 5, ..VfConfig::default() };
        let unweighted = vector_fit(&data, None, &cfg).unwrap();
        let weighted = vector_fit(&data, Some(&weights), &cfg).unwrap();
        // Compare low-frequency accuracy.
        let low_err = |m: &PoleResidueModel| -> f64 {
            grid.freqs_hz()
                .iter()
                .zip(grid.omegas())
                .filter(|(&f, _)| f < 1e6)
                .map(|(_, w)| {
                    (m.evaluate_at_omega(w).unwrap()[(0, 0)]
                        - data.matrix(grid.nearest_index(w / (2.0 * std::f64::consts::PI)))[(0, 0)])
                        .abs()
                })
                .fold(0.0_f64, f64::max)
        };
        let e_u = low_err(&unweighted.model);
        let e_w = low_err(&weighted.model);
        assert!(e_w < e_u, "weighted low-band error {e_w} must beat unweighted {e_u}");
    }

    #[test]
    fn input_validation() {
        let grid = FrequencyGrid::log_space(1e3, 1e6, 30).unwrap();
        let (_, data) = synthetic_data(&grid);
        let cfg = VfConfig { n_poles: 0, ..VfConfig::default() };
        assert!(vector_fit(&data, None, &cfg).is_err());
        let cfg = VfConfig { n_poles: 40, ..VfConfig::default() };
        assert!(vector_fit(&data, None, &cfg).is_err());
        let cfg = VfConfig::default();
        assert!(vector_fit(&data, Some(&[1.0, 2.0]), &cfg).is_err());
        let bad_w = vec![-1.0; data.len()];
        assert!(vector_fit(&data, Some(&bad_w), &cfg).is_err());
        let cfg =
            VfConfig { initial_poles: Some(vec![c(-1.0, 0.0)]), n_poles: 3, ..VfConfig::default() };
        assert!(vector_fit(&data, None, &cfg).is_err());
    }

    #[test]
    fn symmetry_enforcement_produces_symmetric_model() {
        let grid = FrequencyGrid::log_space(1e2, 1e7, 50).unwrap();
        let (_, mut data_vec) = synthetic_data(&grid);
        // Slightly break the symmetry of the data.
        data_vec = data_vec
            .map_matrices(|_, m| {
                let mut m2 = m.clone();
                m2[(0, 1)] += Complex64::new(1e-3, 0.0);
                Ok(m2)
            })
            .unwrap();
        let cfg =
            VfConfig { n_poles: 3, n_iterations: 4, enforce_symmetry: true, ..VfConfig::default() };
        let fit = vector_fit(&data_vec, None, &cfg).unwrap();
        for r in fit.model.residues() {
            assert!((r[(0, 1)] - r[(1, 0)]).abs() < 1e-12);
        }
        assert!((fit.model.d()[(0, 1)] - fit.model.d()[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn custom_initial_poles_are_honoured() {
        let grid = FrequencyGrid::log_space(1e2, 1e7, 60).unwrap();
        let (_, data) = synthetic_data(&grid);
        let init = vec![c(-1e3, 0.0), c(-1e5, 1e6), c(-1e5, -1e6)];
        let cfg = VfConfig {
            n_poles: 3,
            n_iterations: 5,
            initial_poles: Some(init),
            ..VfConfig::default()
        };
        let fit = vector_fit(&data, None, &cfg).unwrap();
        assert!(fit.rms_error < 1e-6);
    }

    #[test]
    fn without_constant_term_model_is_strictly_proper() {
        let grid = FrequencyGrid::log_space(1e2, 1e7, 60).unwrap();
        // Strictly proper data (no feedthrough).
        let mats: Vec<CMat> = grid
            .omegas()
            .iter()
            .map(|&w| CMat::from_diag(&[(Complex64::new(1e4, w)).recip() * 2e4]))
            .collect();
        let data = NetworkData::new(grid, mats, ParameterKind::Scattering, 50.0).unwrap();
        let cfg =
            VfConfig { n_poles: 2, n_iterations: 4, fit_constant: false, ..VfConfig::default() };
        let fit = vector_fit(&data, None, &cfg).unwrap();
        assert_eq!((fit.model.d().max_abs()).to_bits(), 0.0f64.to_bits());
        assert!(fit.rms_error < 1e-8);
    }
}
