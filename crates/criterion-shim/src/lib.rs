//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment of this reproduction has no network access to a
//! crates registry, so the workspace cannot depend on the real `criterion`
//! crate. This shim implements the small API subset used by
//! `crates/bench/benches/figures.rs` — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`criterion_group!`]
//! and [`criterion_main!`] — with plain wall-clock timing instead of
//! criterion's statistical analysis.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed iterations,
//! and prints the mean and min/max per-iteration time. Replacing this crate
//! with the real `criterion` (by pointing the workspace dependency back at
//! crates.io) requires no source change in the bench crate.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark, mirroring criterion's
/// default sample count order of magnitude while staying fast enough for a
/// harness that runs in CI.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Timing helper handed to benchmark closures; measures the closure passed
/// to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { samples: Vec::with_capacity(sample_size), sample_size }
    }

    /// Runs `f` once as warm-up, then `sample_size` timed iterations,
    /// recording each iteration's wall-clock duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<44} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Top-level benchmark driver, the shim counterpart of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(DEFAULT_SAMPLE_SIZE);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks sharing a sample-size setting.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self, sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

/// A group of benchmarks with a shared configuration, the shim counterpart
/// of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("  {name}"));
        self
    }

    /// Finishes the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // one warm-up + DEFAULT_SAMPLE_SIZE timed iterations
        assert_eq!(runs, DEFAULT_SAMPLE_SIZE + 1);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("smoke", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4);
    }
}
