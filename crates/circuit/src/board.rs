//! Parametric synthetic PDN board generator.
//!
//! The paper's test structure is "a single power domain at small form factor,
//! few layers package" known through field-solver scattering data. As
//! documented in `DESIGN.md`, this module provides the synthetic substitute:
//! a power/ground plane pair modelled as a 2-D grid of RLGC cells (the
//! standard cavity / transmission-plane model), with series via parasitics at
//! every port and a configurable placement of die, decoupling-capacitor and
//! VRM ports. Its scattering responses share the features that drive the
//! paper's phenomenology: smooth and low-loss over the band, collectively
//! near-open (capacitive) at low frequency — which makes `(I + S)` nearly
//! rank deficient and hence the loaded target impedance extremely sensitive
//! to scattering errors — and mildly resonant toward the GHz range.

use crate::mna::{Circuit, Element};
use crate::{CircuitError, Result};

/// One series stage of the package/die attachment stack: a ball, bump or
/// interposer level between the board plane and a die pad.
///
/// Cascading stages models the paper's "few layers package" vertically: each
/// stage adds a series L/R segment and, optionally, a package-level
/// decoupling capacitance at the intermediate node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackStage {
    /// Series inductance of the stage (henry, positive).
    pub inductance: f64,
    /// Series resistance of the stage (ohms, positive).
    pub resistance: f64,
    /// Decoupling capacitance from the intermediate node to the return plane
    /// (farad); `0.0` means no capacitor at this level.
    pub shunt_capacitance: f64,
}

/// Geometric and electrical parameters of the plane-pair PDN.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnBoardSpec {
    /// Number of grid cells along x.
    pub nx: usize,
    /// Number of grid cells along y.
    pub ny: usize,
    /// Series inductance of one grid segment (henry).
    pub segment_inductance: f64,
    /// Series resistance of one grid segment (ohms).
    pub segment_resistance: f64,
    /// Plane-pair capacitance of one cell to the return plane (farad).
    pub cell_capacitance: f64,
    /// Dielectric loss conductance of one cell (siemens).
    pub cell_conductance: f64,
    /// Series inductance of every port via / ball / bump connection (henry).
    pub via_inductance: f64,
    /// Series resistance of every port via connection (ohms).
    pub via_resistance: f64,
    /// Grid coordinates `(ix, iy)` of the die (on-package) ports.
    pub die_ports: Vec<(usize, usize)>,
    /// Grid coordinates of the decoupling-capacitor ports.
    pub decap_ports: Vec<(usize, usize)>,
    /// Grid coordinates of the VRM port(s).
    pub vrm_ports: Vec<(usize, usize)>,
    /// Package+die attachment stack cascaded between the plane and every
    /// **die** pad (closest-to-plane stage first); decap and VRM ports always
    /// attach through their via parasitics alone. Empty (the default)
    /// reproduces the historical direct-attach boards bit for bit.
    pub die_stack: Vec<StackStage>,
}

impl Default for PdnBoardSpec {
    fn default() -> Self {
        PdnBoardSpec {
            nx: 6,
            ny: 6,
            segment_inductance: 0.3e-9,
            segment_resistance: 8e-3,
            cell_capacitance: 200e-12,
            cell_conductance: 5e-5,
            via_inductance: 0.1e-9,
            via_resistance: 4e-3,
            die_ports: vec![(2, 2), (3, 2), (2, 3), (3, 3)],
            decap_ports: vec![(0, 0), (5, 0), (0, 5)],
            vrm_ports: vec![(5, 5)],
            die_stack: Vec::new(),
        }
    }
}

/// A synthetic PDN: the circuit plus the port bookkeeping needed to assemble
/// the paper's nominal termination scheme (die / decap / VRM / open roles).
#[derive(Debug, Clone)]
pub struct SyntheticPdn {
    /// The RLCG netlist with one port per pad.
    pub circuit: Circuit,
    /// Port indices (into the scattering matrix) of the die ports.
    pub die_ports: Vec<usize>,
    /// Port indices of the decoupling-capacitor ports.
    pub decap_ports: Vec<usize>,
    /// Port indices of the VRM ports.
    pub vrm_ports: Vec<usize>,
}

impl SyntheticPdn {
    /// Total number of ports.
    pub fn ports(&self) -> usize {
        self.die_ports.len() + self.decap_ports.len() + self.vrm_ports.len()
    }
}

/// Builds the plane-pair PDN described by `spec`.
///
/// Ports are numbered die ports first, then decap ports, then VRM ports, in
/// the order given in the spec.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidInput`] for an empty grid, out-of-range
/// port coordinates, duplicated port locations or non-physical element
/// values.
pub fn build_board(spec: &PdnBoardSpec) -> Result<SyntheticPdn> {
    if spec.nx < 2 || spec.ny < 2 {
        return Err(CircuitError::InvalidInput("the plane grid must be at least 2x2".into()));
    }
    if spec.die_ports.is_empty() || spec.vrm_ports.is_empty() {
        return Err(CircuitError::InvalidInput(
            "the board needs at least one die port and one VRM port".into(),
        ));
    }
    let mut circuit = Circuit::new();
    // Allocate one node per grid point, row-major.
    let mut grid_nodes = vec![0usize; spec.nx * spec.ny];
    for node in grid_nodes.iter_mut() {
        *node = circuit.node();
    }
    let at = |ix: usize, iy: usize| grid_nodes[ix * spec.ny + iy];

    // Series segments along x and y.
    for ix in 0..spec.nx {
        for iy in 0..spec.ny {
            if ix + 1 < spec.nx {
                circuit.add(Element::Inductor {
                    a: at(ix, iy),
                    b: at(ix + 1, iy),
                    henry: spec.segment_inductance,
                    series_resistance: spec.segment_resistance,
                })?;
            }
            if iy + 1 < spec.ny {
                circuit.add(Element::Inductor {
                    a: at(ix, iy),
                    b: at(ix, iy + 1),
                    henry: spec.segment_inductance,
                    series_resistance: spec.segment_resistance,
                })?;
            }
            circuit.add(Element::Capacitor {
                a: at(ix, iy),
                b: 0,
                farad: spec.cell_capacitance,
                shunt_conductance: spec.cell_conductance,
            })?;
        }
    }

    // Port connections through via parasitics. Die ports additionally climb
    // the package+die stack: plane → stage 1 → … → stage n → via → pad.
    let mut seen = std::collections::BTreeSet::new();
    let connect_ports = |circuit: &mut Circuit,
                         coords: &[(usize, usize)],
                         stack: &[StackStage],
                         seen: &mut std::collections::BTreeSet<(usize, usize)>|
     -> Result<Vec<usize>> {
        let mut indices = Vec::with_capacity(coords.len());
        for &(ix, iy) in coords {
            if ix >= spec.nx || iy >= spec.ny {
                return Err(CircuitError::InvalidInput(format!(
                    "port location ({ix}, {iy}) outside the {}x{} grid",
                    spec.nx, spec.ny
                )));
            }
            if !seen.insert((ix, iy)) {
                return Err(CircuitError::InvalidInput(format!(
                    "port location ({ix}, {iy}) used more than once"
                )));
            }
            let mut attach = at(ix, iy);
            for stage in stack {
                let level = circuit.node();
                circuit.add(Element::Inductor {
                    a: level,
                    b: attach,
                    henry: stage.inductance,
                    series_resistance: stage.resistance,
                })?;
                if stage.shunt_capacitance > 0.0 {
                    circuit.add(Element::Capacitor {
                        a: level,
                        b: 0,
                        farad: stage.shunt_capacitance,
                        shunt_conductance: 0.0,
                    })?;
                } else if stage.shunt_capacitance < 0.0 {
                    return Err(CircuitError::InvalidInput(format!(
                        "stack stage shunt capacitance must be non-negative, got {}",
                        stage.shunt_capacitance
                    )));
                }
                attach = level;
            }
            let pad = circuit.node();
            circuit.add(Element::Inductor {
                a: pad,
                b: attach,
                henry: spec.via_inductance,
                series_resistance: spec.via_resistance,
            })?;
            indices.push(circuit.port_count());
            circuit.add_port(pad)?;
        }
        Ok(indices)
    };

    let die_ports = connect_ports(&mut circuit, &spec.die_ports, &spec.die_stack, &mut seen)?;
    let decap_ports = connect_ports(&mut circuit, &spec.decap_ports, &[], &mut seen)?;
    let vrm_ports = connect_ports(&mut circuit, &spec.vrm_ports, &[], &mut seen)?;

    Ok(SyntheticPdn { circuit, die_ports, decap_ports, vrm_ports })
}

/// The standard reproduction board: the default [`PdnBoardSpec`] (6×6 cells,
/// 4 die + 3 decap + 1 VRM ports), which is the synthetic stand-in for the
/// paper's industrial test case.
///
/// # Errors
///
/// Never fails for the built-in spec; the `Result` mirrors [`build_board`].
pub fn standard_board() -> Result<SyntheticPdn> {
    build_board(&PdnBoardSpec::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_rfdata::FrequencyGrid;

    fn small_spec() -> PdnBoardSpec {
        PdnBoardSpec {
            nx: 3,
            ny: 3,
            die_ports: vec![(1, 1)],
            decap_ports: vec![(0, 0)],
            vrm_ports: vec![(2, 2)],
            ..PdnBoardSpec::default()
        }
    }

    #[test]
    fn builds_and_counts_ports() {
        let pdn = build_board(&small_spec()).unwrap();
        assert_eq!(pdn.ports(), 3);
        assert_eq!(pdn.die_ports, vec![0]);
        assert_eq!(pdn.decap_ports, vec![1]);
        assert_eq!(pdn.vrm_ports, vec![2]);
        assert_eq!(pdn.circuit.port_count(), 3);
        // 9 grid nodes + 3 pads.
        assert_eq!(pdn.circuit.node_count(), 12);
    }

    #[test]
    fn default_board_matches_paper_structure() {
        let pdn = standard_board().unwrap();
        assert_eq!(pdn.ports(), 8);
        assert_eq!(pdn.die_ports.len(), 4);
        assert_eq!(pdn.decap_ports.len(), 3);
        assert_eq!(pdn.vrm_ports.len(), 1);
    }

    #[test]
    fn scattering_is_smooth_passive_and_reciprocal() {
        let pdn = build_board(&small_spec()).unwrap();
        let grid = FrequencyGrid::log_space(1e3, 2e9, 30).unwrap().with_dc();
        let s = pdn.circuit.scattering_parameters(&grid, 50.0).unwrap();
        assert_eq!(s.ports(), 3);
        for k in 0..s.len() {
            let m = s.matrix(k);
            // Reciprocity of the RLC network.
            assert!((m[(0, 1)] - m[(1, 0)]).abs() < 1e-9);
            // Passivity of the raw data: all singular values at most one.
            let sv = pim_linalg::svd::singular_values(m).unwrap();
            assert!(sv[0] <= 1.0 + 1e-9, "sigma {} at sample {k}", sv[0]);
        }
        // Low-frequency behaviour: the plane pair ties all ports to one
        // almost-open capacitive node, so S approaches (2/P)·J − I — the
        // matrix whose eigenvalues are +1 (common mode) and −1 (P−1 times),
        // which is exactly what makes (I + S) ill conditioned and the loaded
        // impedance highly sensitive (Sec. II of the paper).
        let low = s.matrix(1);
        assert!((low[(0, 0)].re - (2.0 / 3.0 - 1.0)).abs() < 0.2, "S11 {}", low[(0, 0)].re);
        assert!((low[(0, 1)].re - 2.0 / 3.0).abs() < 0.2, "S12 {}", low[(0, 1)].re);
    }

    #[test]
    fn low_frequency_input_resistance_through_vrm_is_milliohms() {
        // Terminate nothing, but check the transfer impedance between a die
        // port and the VRM port at low frequency: it is dominated by the
        // spreading resistance of the plane (a few mΩ), which is what makes
        // the loaded target impedance small and extremely sensitive.
        let pdn = build_board(&small_spec()).unwrap();
        let z = pdn.circuit.port_impedance_at(2.0 * std::f64::consts::PI * 1e4).unwrap();
        let die = pdn.die_ports[0];
        let vrm = pdn.vrm_ports[0];
        // Difference between self and transfer impedance reflects the metal
        // path resistance/inductance, small but nonzero.
        let path = z[(die, die)] - z[(die, vrm)];
        assert!(path.abs() < 1.0, "path impedance unexpectedly large: {}", path.abs());
        assert!(path.abs() > 1e-4);
    }

    #[test]
    fn die_stack_cascades_under_die_pads_only() {
        let mut spec = small_spec();
        spec.die_stack = vec![
            StackStage { inductance: 0.2e-9, resistance: 2e-3, shunt_capacitance: 5e-9 },
            StackStage { inductance: 0.1e-9, resistance: 1e-3, shunt_capacitance: 0.0 },
        ];
        let stacked = build_board(&spec).unwrap();
        let flat = build_board(&small_spec()).unwrap();
        assert_eq!(stacked.ports(), flat.ports());
        // One die port, two stages: +2 intermediate nodes, +2 inductors and
        // +1 package capacitor over the flat board.
        assert_eq!(stacked.circuit.node_count(), flat.circuit.node_count() + 2);
        assert_eq!(stacked.circuit.elements().len(), flat.circuit.elements().len() + 3);
        // A pure series stack (no package decoupling) raises the die
        // self-inductance: at high frequency the die-port input impedance
        // magnitude must exceed the flat board's. (With a package capacitor
        // the comparison flips — that is what decoupling is for.)
        let mut series_only = small_spec();
        series_only.die_stack =
            vec![StackStage { inductance: 0.2e-9, resistance: 2e-3, shunt_capacitance: 0.0 }];
        let series_board = build_board(&series_only).unwrap();
        let omega = 2.0 * std::f64::consts::PI * 1e9;
        let z_stacked = series_board.circuit.port_impedance_at(omega).unwrap();
        let z_flat = flat.circuit.port_impedance_at(omega).unwrap();
        let die = series_board.die_ports[0];
        assert!(z_stacked[(die, die)].abs() > z_flat[(die, die)].abs());
        // Still passive data.
        let grid = FrequencyGrid::log_space(1e3, 2e9, 20).unwrap().with_dc();
        let s = stacked.circuit.scattering_parameters(&grid, 50.0).unwrap();
        for k in 0..s.len() {
            let sv = pim_linalg::svd::singular_values(s.matrix(k)).unwrap();
            assert!(sv[0] <= 1.0 + 1e-9, "sigma {} at sample {k}", sv[0]);
        }
        // Negative stack values are rejected.
        let mut bad = small_spec();
        bad.die_stack =
            vec![StackStage { inductance: 1e-9, resistance: 1e-3, shunt_capacitance: -1.0 }];
        assert!(build_board(&bad).is_err());
        let mut bad = small_spec();
        bad.die_stack =
            vec![StackStage { inductance: 0.0, resistance: 1e-3, shunt_capacitance: 0.0 }];
        assert!(build_board(&bad).is_err());
    }

    #[test]
    fn spec_validation() {
        let mut bad = small_spec();
        bad.nx = 1;
        assert!(build_board(&bad).is_err());
        let mut bad = small_spec();
        bad.die_ports = vec![];
        assert!(build_board(&bad).is_err());
        let mut bad = small_spec();
        bad.die_ports = vec![(9, 9)];
        assert!(build_board(&bad).is_err());
        let mut bad = small_spec();
        bad.decap_ports = vec![(1, 1)]; // same as the die port
        assert!(build_board(&bad).is_err());
    }
}
