//! Frequency-domain nodal analysis of RLCG netlists with ports.

use crate::{CircuitError, Result};
use pim_linalg::lu::CLu;
use pim_linalg::{CMat, Complex64};
use pim_rfdata::network::z_to_s;
use pim_rfdata::{FrequencyGrid, NetworkData, ParameterKind};

/// A two-terminal circuit element. Node `0` is the ground reference; other
/// nodes are allocated by [`Circuit::node`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Element {
    /// Resistor in ohms.
    Resistor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Capacitor in farad, with an optional parallel conductance (dielectric
    /// loss).
    Capacitor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Capacitance in farad (must be positive).
        farad: f64,
        /// Parallel conductance in siemens (non-negative).
        shunt_conductance: f64,
    },
    /// Inductor in henry with a series resistance (the series resistance also
    /// keeps the DC point well defined).
    Inductor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Inductance in henry (must be positive).
        henry: f64,
        /// Series resistance in ohms (must be positive).
        series_resistance: f64,
    },
}

impl Element {
    /// Branch admittance of the element at angular frequency `ω`.
    fn admittance(&self, omega: f64) -> Result<Complex64> {
        let jw = Complex64::from_imag(omega);
        match *self {
            Element::Resistor { ohms, .. } => {
                if !(ohms > 0.0) {
                    return Err(CircuitError::InvalidInput(format!(
                        "resistor must have positive resistance, got {ohms}"
                    )));
                }
                Ok(Complex64::from_real(1.0 / ohms))
            }
            Element::Capacitor { farad, shunt_conductance, .. } => {
                if !(farad > 0.0) || shunt_conductance < 0.0 {
                    return Err(CircuitError::InvalidInput(
                        "capacitor requires positive C and non-negative shunt conductance".into(),
                    ));
                }
                Ok(Complex64::new(shunt_conductance, omega * farad))
            }
            Element::Inductor { henry, series_resistance, .. } => {
                if !(henry > 0.0) || !(series_resistance > 0.0) {
                    return Err(CircuitError::InvalidInput(
                        "inductor requires positive L and positive series resistance".into(),
                    ));
                }
                let z = Complex64::from_real(series_resistance) + jw * henry;
                Ok(z.recip())
            }
        }
    }

    fn nodes(&self) -> (usize, usize) {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => (a, b),
        }
    }
}

/// An RLCG netlist with externally accessible ports.
///
/// ```
/// use pim_circuit::{Circuit, Element};
///
/// # fn main() -> Result<(), pim_circuit::CircuitError> {
/// // A 25 Ω resistor to ground exposed as a 1-port.
/// let mut ckt = Circuit::new();
/// let n = ckt.node();
/// ckt.add(Element::Resistor { a: n, b: 0, ohms: 25.0 })?;
/// ckt.add_port(n)?;
/// let grid = pim_rfdata::FrequencyGrid::from_hz(vec![1e6])?;
/// let z = ckt.impedance_parameters(&grid)?;
/// assert!((z.matrix(0)[(0, 0)].re - 25.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    n_nodes: usize,
    elements: Vec<Element>,
    ports: Vec<usize>,
    gmin: f64,
}

impl Circuit {
    /// Creates an empty circuit (ground node only).
    pub fn new() -> Self {
        Circuit { n_nodes: 0, elements: Vec::new(), ports: Vec::new(), gmin: 1e-12 }
    }

    /// Allocates a new node and returns its index (`≥ 1`; `0` is ground).
    pub fn node(&mut self) -> usize {
        self.n_nodes += 1;
        self.n_nodes
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The elements of the netlist.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Sets the minimum node-to-ground conductance (numerical `gmin`) used to
    /// keep the nodal matrix nonsingular at DC for floating nets.
    pub fn set_gmin(&mut self, gmin: f64) {
        self.gmin = gmin.max(0.0);
    }

    /// Adds an element.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidInput`] when a terminal references a
    /// node that has not been allocated, both terminals coincide, or the
    /// element value is non-physical.
    pub fn add(&mut self, element: Element) -> Result<()> {
        let (a, b) = element.nodes();
        if a > self.n_nodes || b > self.n_nodes {
            return Err(CircuitError::InvalidInput(format!(
                "element references node {} but only {} nodes exist",
                a.max(b),
                self.n_nodes
            )));
        }
        if a == b {
            return Err(CircuitError::InvalidInput(
                "element terminals must be distinct nodes".into(),
            ));
        }
        // Validate the value eagerly by evaluating the admittance once.
        element.admittance(1.0)?;
        self.elements.push(element);
        Ok(())
    }

    /// Declares a port between `node` and ground.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidInput`] for unknown nodes, the ground
    /// node, or duplicate port nodes.
    pub fn add_port(&mut self, node: usize) -> Result<()> {
        if node == 0 || node > self.n_nodes {
            return Err(CircuitError::InvalidInput(format!(
                "port node {node} is not a valid non-ground node"
            )));
        }
        if self.ports.contains(&node) {
            return Err(CircuitError::InvalidInput(format!("node {node} is already a port")));
        }
        self.ports.push(node);
        Ok(())
    }

    /// Assembles the complex nodal admittance matrix at angular frequency `ω`.
    fn nodal_matrix(&self, omega: f64) -> Result<CMat> {
        let n = self.n_nodes;
        let mut y = CMat::zeros(n, n);
        for i in 0..n {
            y[(i, i)] = Complex64::from_real(self.gmin);
        }
        for el in &self.elements {
            let (a, b) = el.nodes();
            let ya = el.admittance(omega)?;
            if a > 0 {
                y[(a - 1, a - 1)] += ya;
            }
            if b > 0 {
                y[(b - 1, b - 1)] += ya;
            }
            if a > 0 && b > 0 {
                y[(a - 1, b - 1)] -= ya;
                y[(b - 1, a - 1)] -= ya;
            }
        }
        Ok(y)
    }

    /// Open-circuit impedance matrix of the ports at angular frequency `ω`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidInput`] when no port is defined and
    /// propagates solver failures.
    pub fn port_impedance_at(&self, omega: f64) -> Result<CMat> {
        if self.ports.is_empty() {
            return Err(CircuitError::InvalidInput("the circuit defines no ports".into()));
        }
        let y = self.nodal_matrix(omega)?;
        let lu = CLu::new(&y)?;
        let p = self.ports.len();
        let mut z = CMat::zeros(p, p);
        for (col, &port_node) in self.ports.iter().enumerate() {
            // Inject 1 A into the port node, read the voltages at all ports.
            let mut rhs = vec![Complex64::ZERO; self.n_nodes];
            rhs[port_node - 1] = Complex64::ONE;
            let v = lu.solve_vec(&rhs)?;
            for (row, &other_node) in self.ports.iter().enumerate() {
                z[(row, col)] = v[other_node - 1];
            }
        }
        Ok(z)
    }

    /// Tabulates the open-circuit impedance parameters over a frequency grid.
    ///
    /// # Errors
    ///
    /// See [`Circuit::port_impedance_at`].
    pub fn impedance_parameters(&self, grid: &FrequencyGrid) -> Result<NetworkData> {
        let mut matrices = Vec::with_capacity(grid.len());
        for &omega in &grid.omegas() {
            matrices.push(self.port_impedance_at(omega)?);
        }
        Ok(NetworkData::new(grid.clone(), matrices, ParameterKind::Impedance, 50.0)?)
    }

    /// Tabulates the scattering parameters (normalized to `z_ref`) over a
    /// frequency grid — the synthetic equivalent of the paper's field-solver
    /// output.
    ///
    /// # Errors
    ///
    /// See [`Circuit::port_impedance_at`]; the reference resistance must be
    /// positive.
    pub fn scattering_parameters(&self, grid: &FrequencyGrid, z_ref: f64) -> Result<NetworkData> {
        if !(z_ref > 0.0) {
            return Err(CircuitError::InvalidInput(format!(
                "reference resistance must be positive, got {z_ref}"
            )));
        }
        let mut matrices = Vec::with_capacity(grid.len());
        for &omega in &grid.omegas() {
            let z = self.port_impedance_at(omega)?;
            matrices.push(z_to_s(&z, z_ref)?);
        }
        Ok(NetworkData::new(grid.clone(), matrices, ParameterKind::Scattering, z_ref)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

    #[test]
    fn resistive_divider_impedance() {
        // Two 100 Ω resistors in parallel to ground at the same node: 50 Ω.
        let mut ckt = Circuit::new();
        let n = ckt.node();
        ckt.add(Element::Resistor { a: n, b: 0, ohms: 100.0 }).unwrap();
        ckt.add(Element::Resistor { a: 0, b: n, ohms: 100.0 }).unwrap();
        ckt.add_port(n).unwrap();
        let z = ckt.port_impedance_at(0.0).unwrap();
        assert!((z[(0, 0)].re - 50.0).abs() < 1e-6);
    }

    #[test]
    fn series_rl_and_shunt_c_resonance() {
        // A series R-L feeding a shunt C: the port input impedance has a
        // series resonance at 1/sqrt(LC) where it reduces to approximately R.
        let r = 0.1;
        let l = 1e-9;
        let c = 1e-9;
        let mut ckt = Circuit::new();
        let mid = ckt.node();
        let inp = ckt.node();
        ckt.add(Element::Inductor { a: inp, b: mid, henry: l, series_resistance: r }).unwrap();
        ckt.add(Element::Capacitor { a: mid, b: 0, farad: c, shunt_conductance: 0.0 }).unwrap();
        ckt.add_port(inp).unwrap();
        let f0 = 1.0 / (TWO_PI * (l * c).sqrt());
        let z_res = ckt.port_impedance_at(TWO_PI * f0).unwrap()[(0, 0)];
        assert!((z_res.re - r).abs() < 0.02 * r, "Re(Z) at resonance: {}", z_res.re);
        assert!(z_res.im.abs() < 0.05, "Im(Z) at resonance: {}", z_res.im);
        // Far below resonance the capacitor dominates (capacitive phase).
        let z_lo = ckt.port_impedance_at(TWO_PI * f0 / 100.0).unwrap()[(0, 0)];
        assert!(z_lo.im < 0.0);
        // Far above, the inductor dominates.
        let z_hi = ckt.port_impedance_at(TWO_PI * f0 * 100.0).unwrap()[(0, 0)];
        assert!(z_hi.im > 0.0);
    }

    #[test]
    fn two_port_pi_network_matches_analytic_z_parameters() {
        // Pi network: Za from port1 to ground, Zb series, Zc from port2 to
        // ground, all resistive.
        let za = 100.0;
        let zb = 25.0;
        let zc = 100.0;
        let mut ckt = Circuit::new();
        let n1 = ckt.node();
        let n2 = ckt.node();
        ckt.add(Element::Resistor { a: n1, b: 0, ohms: za }).unwrap();
        ckt.add(Element::Resistor { a: n1, b: n2, ohms: zb }).unwrap();
        ckt.add(Element::Resistor { a: n2, b: 0, ohms: zc }).unwrap();
        ckt.add_port(n1).unwrap();
        ckt.add_port(n2).unwrap();
        let z = ckt.port_impedance_at(0.0).unwrap();
        let denom = za + zb + zc;
        assert!((z[(0, 0)].re - za * (zb + zc) / denom).abs() < 1e-6);
        assert!((z[(1, 1)].re - zc * (za + zb) / denom).abs() < 1e-6);
        assert!((z[(0, 1)].re - za * zc / denom).abs() < 1e-6);
        assert!((z[(0, 1)] - z[(1, 0)]).abs() < 1e-9, "reciprocity");
    }

    #[test]
    fn scattering_of_matched_load_is_small() {
        let mut ckt = Circuit::new();
        let n = ckt.node();
        ckt.add(Element::Resistor { a: n, b: 0, ohms: 50.0 }).unwrap();
        ckt.add_port(n).unwrap();
        let grid = FrequencyGrid::log_space(1e3, 1e9, 10).unwrap();
        let s = ckt.scattering_parameters(&grid, 50.0).unwrap();
        assert_eq!(s.kind(), ParameterKind::Scattering);
        for k in 0..s.len() {
            assert!(s.matrix(k)[(0, 0)].abs() < 1e-6);
        }
        // Impedance parameters agree with the direct evaluation.
        let z = ckt.impedance_parameters(&grid).unwrap();
        assert!((z.matrix(0)[(0, 0)].re - 50.0).abs() < 1e-5);
    }

    #[test]
    fn netlist_validation() {
        let mut ckt = Circuit::new();
        let n = ckt.node();
        assert!(ckt.add(Element::Resistor { a: n, b: n, ohms: 1.0 }).is_err());
        assert!(ckt.add(Element::Resistor { a: n, b: 7, ohms: 1.0 }).is_err());
        assert!(ckt.add(Element::Resistor { a: n, b: 0, ohms: -1.0 }).is_err());
        assert!(ckt
            .add(Element::Capacitor { a: n, b: 0, farad: 0.0, shunt_conductance: 0.0 })
            .is_err());
        assert!(ckt
            .add(Element::Inductor { a: n, b: 0, henry: 1e-9, series_resistance: 0.0 })
            .is_err());
        assert!(ckt.add_port(0).is_err());
        assert!(ckt.add_port(9).is_err());
        ckt.add_port(n).unwrap();
        assert!(ckt.add_port(n).is_err());
        assert_eq!(ckt.port_count(), 1);
        assert_eq!(ckt.node_count(), 1);
        // A circuit without ports cannot be solved for port parameters.
        let empty = Circuit::new();
        assert!(empty.port_impedance_at(1.0).is_err());
        // Reference resistance validation.
        let grid = FrequencyGrid::from_hz(vec![1.0]).unwrap();
        assert!(ckt.scattering_parameters(&grid, -1.0).is_err());
    }

    #[test]
    fn floating_node_is_kept_solvable_by_gmin() {
        // A port connected only through a capacitor: at DC the node would be
        // floating without gmin; the impedance must be finite and huge.
        let mut ckt = Circuit::new();
        let n = ckt.node();
        ckt.add(Element::Capacitor { a: n, b: 0, farad: 1e-9, shunt_conductance: 0.0 }).unwrap();
        ckt.add_port(n).unwrap();
        let z = ckt.port_impedance_at(0.0).unwrap();
        assert!(z[(0, 0)].re > 1e9 && z[(0, 0)].re.is_finite());
    }
}
