//! # pim-circuit
//!
//! Frequency-domain circuit analysis and synthetic PDN generation for the
//! DATE 2014 sensitivity-weighted passivity enforcement reproduction.
//!
//! The paper's evaluation uses field-solver scattering data of a proprietary
//! Intel package PDN; this crate provides the substitute substrate described
//! in `DESIGN.md`:
//!
//! * [`mna`] — a nodal-admittance frequency-domain solver for RLCG netlists
//!   with ports, returning tabulated impedance or scattering parameters;
//! * [`board`] — a parametric plane-pair PDN generator (2-D RLGC cavity grid
//!   with via parasitics, die/decap/VRM port placement) whose scattering
//!   responses have the same qualitative structure as the paper's test case:
//!   smooth, low-loss, near-short at low frequency and mildly resonant toward
//!   the GHz range;
//! * [`generator`] — the seeded [`generator::BoardGenerator`]: samples the
//!   full board parameter space (grid size, port counts and placement, decap
//!   libraries with mixed ESL/ESR populations, multi-VRM feeds, package+die
//!   stacking) deterministically from a `(config, seed)` pair — the scenario
//!   source of the stress-corpus harness in `pim-core`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod board;
pub mod generator;
pub mod mna;

pub use board::{standard_board, PdnBoardSpec, StackStage, SyntheticPdn};
pub use generator::{
    default_decap_library, BoardGenerator, DecapPart, DieModel, GeneratedBoard, GeneratorConfig,
    Placement, VrmModel,
};
pub use mna::{Circuit, Element};

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving circuits.
#[derive(Debug)]
pub enum CircuitError {
    /// The underlying linear algebra kernel failed (singular nodal matrix).
    Linalg(pim_linalg::LinalgError),
    /// Frequency-data handling failed.
    RfData(pim_rfdata::RfDataError),
    /// The netlist or the analysis request is invalid.
    InvalidInput(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CircuitError::RfData(e) => write!(f, "data handling failure: {e}"),
            CircuitError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Linalg(e) => Some(e),
            CircuitError::RfData(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for CircuitError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        CircuitError::Linalg(e)
    }
}

impl From<pim_rfdata::RfDataError> for CircuitError {
    fn from(e: pim_rfdata::RfDataError) -> Self {
        CircuitError::RfData(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
