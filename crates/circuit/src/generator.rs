//! Seeded, parameterized board generation: the scenario-diversity engine.
//!
//! The hand-built [`PdnBoardSpec`] presets cover six topologies; production
//! coverage needs thousands. [`BoardGenerator`] samples the full parameter
//! space of the plane-pair model — N×M grids, die/decap/VRM port placement,
//! decap libraries with mixed ESL/ESR populations, multi-VRM feeds, and
//! package+die stacking — from a deterministic SplitMix64 stream, so every
//! generated board is exactly reproducible from `(GeneratorConfig, seed)`.
//!
//! The generator emits a [`GeneratedBoard`]: the [`PdnBoardSpec`] plus the
//! per-port electrical models (decap library picks, VRM and die parameters)
//! that a downstream scenario assembler turns into a termination network.
//! `pim-circuit` stays free of termination types — the models are plain
//! numbers here.
//!
//! The **draw order is part of the determinism contract**: grid size, port
//! counts, placement, plane electricals, stack, per-decap library picks, VRM
//! and die parameters, in that order. Changing it invalidates committed
//! corpus artifacts (see `tests/fixtures/corpus/` at the workspace root).

use crate::board::{build_board, PdnBoardSpec, StackStage, SyntheticPdn};
use crate::{CircuitError, Result};

/// SplitMix64 pseudo-random number generator.
///
/// Twin of `pim_pdn::rng::SplitMix64` and `proptest::TestRng` in
/// `crates/proptest-shim` (`pim-circuit` sits below `pim-pdn` in the crate
/// graph, so it keeps its own copy) — keep the mixing constants and the
/// float conversion in sync with those copies.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` using the 53 high bits of `next_u64`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the **inclusive** range `[lo, hi]`.
    fn next_range(&mut self, (lo, hi): (usize, usize)) -> usize {
        if lo >= hi {
            return lo;
        }
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Log-uniform sample in the **inclusive** interval `[lo, hi]`.
    ///
    /// Degenerate intervals return `lo` exactly (bit-identical — no
    /// `exp(ln x)` round trip), which is what lets a fully pinned
    /// configuration reproduce a hand-built board bit for bit.
    fn next_log_uniform(&mut self, (lo, hi): (f64, f64)) -> f64 {
        if lo >= hi {
            return lo;
        }
        let u = self.next_f64();
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    }
}

/// One part in a decoupling-capacitor library: the vendor-style C/ESR/ESL
/// triple of [`PdnBoardSpec`]-level realism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecapPart {
    /// Capacitance in farad (positive).
    pub capacitance: f64,
    /// Equivalent series resistance in ohms (positive).
    pub esr: f64,
    /// Equivalent series inductance in henry (positive).
    pub esl: f64,
}

/// VRM electrical model drawn by the generator (one shared by all VRM legs;
/// multi-VRM boards split the regulation across identical phases, as in the
/// `MultiVrm` preset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VrmModel {
    /// Series resistance in ohms.
    pub resistance: f64,
    /// Series inductance in henry.
    pub inductance: f64,
}

/// Die block electrical model drawn by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieModel {
    /// Series resistance in ohms.
    pub resistance: f64,
    /// Block capacitance in farad.
    pub capacitance: f64,
}

/// How the generator places ports on the plane grid.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Seeded placement: die ports take the cells nearest the grid center
    /// (the flip-chip footprint), then the remaining cells are shuffled and
    /// decap / VRM ports draw from the shuffle — every board is connected
    /// and collision-free by construction.
    Seeded,
    /// Explicit coordinates — the mode the hand-built presets route through;
    /// no placement randomness is consumed.
    Explicit {
        /// Die port coordinates.
        die: Vec<(usize, usize)>,
        /// Decap port coordinates.
        decaps: Vec<(usize, usize)>,
        /// VRM port coordinates.
        vrms: Vec<(usize, usize)>,
    },
}

/// The sampled parameter space of [`BoardGenerator`].
///
/// Integer pairs are inclusive `(lo, hi)` count ranges; float pairs are
/// inclusive log-uniform value ranges. A degenerate pair `(v, v)` pins the
/// parameter to exactly `v` (bit-identical, no rounding through `ln`/`exp`).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Grid cells along x.
    pub nx: (usize, usize),
    /// Grid cells along y.
    pub ny: (usize, usize),
    /// Number of die ports.
    pub die_ports: (usize, usize),
    /// Number of decap ports.
    pub decap_ports: (usize, usize),
    /// Number of VRM ports.
    pub vrm_ports: (usize, usize),
    /// Port placement mode.
    pub placement: Placement,
    /// Segment inductance range (henry).
    pub segment_inductance: (f64, f64),
    /// Segment resistance range (ohms).
    pub segment_resistance: (f64, f64),
    /// Cell capacitance range (farad).
    pub cell_capacitance: (f64, f64),
    /// Cell conductance range (siemens).
    pub cell_conductance: (f64, f64),
    /// Via inductance range (henry).
    pub via_inductance: (f64, f64),
    /// Via resistance range (ohms).
    pub via_resistance: (f64, f64),
    /// Number of package+die stack stages cascaded under every die pad.
    pub stack_stages: (usize, usize),
    /// Per-stage series inductance range (henry).
    pub stack_inductance: (f64, f64),
    /// Per-stage series resistance range (ohms).
    pub stack_resistance: (f64, f64),
    /// Per-stage package decoupling capacitance range (farad); drawn only
    /// for stages the stream marks as decoupled (every other stage).
    pub stack_capacitance: (f64, f64),
    /// The decap library; each decap port picks one part uniformly, giving
    /// mixed ESL/ESR populations across the board. Must not be empty when
    /// decap ports are possible.
    pub decap_library: Vec<DecapPart>,
    /// VRM series resistance range (ohms).
    pub vrm_resistance: (f64, f64),
    /// VRM series inductance range (henry).
    pub vrm_inductance: (f64, f64),
    /// Die block resistance range (ohms).
    pub die_resistance: (f64, f64),
    /// Die block capacitance range (farad).
    pub die_capacitance: (f64, f64),
}

/// The built-in decap library: four vendor-style populations from small
/// ceramic through bulk electrolytic — deliberately including the bulk part
/// of the known 5×5 dense-decap divergence regime.
pub fn default_decap_library() -> Vec<DecapPart> {
    vec![
        DecapPart { capacitance: 100e-9, esr: 10e-3, esl: 0.3e-9 },
        DecapPart { capacitance: 1e-6, esr: 5e-3, esl: 0.4e-9 },
        DecapPart { capacitance: 10e-6, esr: 3e-3, esl: 0.6e-9 },
        DecapPart { capacitance: 47e-6, esr: 8e-3, esl: 1.2e-9 },
    ]
}

impl Default for GeneratorConfig {
    /// The corpus-default space: 3×3 – 6×6 grids, 1–4 die, 1–4 decap and
    /// 1–2 VRM ports, electrical parameters within roughly a factor of 3 of
    /// the [`PdnBoardSpec::default`] values, up to two stack stages, and the
    /// [`default_decap_library`].
    fn default() -> Self {
        GeneratorConfig {
            nx: (3, 6),
            ny: (3, 6),
            die_ports: (1, 4),
            decap_ports: (1, 4),
            vrm_ports: (1, 2),
            placement: Placement::Seeded,
            segment_inductance: (0.1e-9, 0.9e-9),
            segment_resistance: (3e-3, 24e-3),
            cell_capacitance: (70e-12, 600e-12),
            cell_conductance: (2e-5, 1.5e-4),
            via_inductance: (0.03e-9, 0.3e-9),
            via_resistance: (1.5e-3, 12e-3),
            stack_stages: (0, 2),
            stack_inductance: (0.05e-9, 0.5e-9),
            stack_resistance: (1e-3, 10e-3),
            stack_capacitance: (1e-9, 20e-9),
            decap_library: default_decap_library(),
            vrm_resistance: (0.5e-3, 3e-3),
            vrm_inductance: (10e-9, 50e-9),
            die_resistance: (20e-3, 80e-3),
            die_capacitance: (30e-9, 150e-9),
        }
    }
}

impl GeneratorConfig {
    /// A fully pinned configuration expressing one explicit topology with
    /// the historical [`PdnBoardSpec::default`] electricals and no stack —
    /// the shape every hand-built preset routes through. With every range
    /// degenerate, the generated [`PdnBoardSpec`] is bit-identical for any
    /// seed.
    pub fn explicit(
        nx: usize,
        ny: usize,
        die: Vec<(usize, usize)>,
        decaps: Vec<(usize, usize)>,
        vrms: Vec<(usize, usize)>,
    ) -> Self {
        let d = PdnBoardSpec::default();
        GeneratorConfig {
            nx: (nx, nx),
            ny: (ny, ny),
            die_ports: (die.len(), die.len()),
            decap_ports: (decaps.len(), decaps.len()),
            vrm_ports: (vrms.len(), vrms.len()),
            placement: Placement::Explicit { die, decaps, vrms },
            segment_inductance: (d.segment_inductance, d.segment_inductance),
            segment_resistance: (d.segment_resistance, d.segment_resistance),
            cell_capacitance: (d.cell_capacitance, d.cell_capacitance),
            cell_conductance: (d.cell_conductance, d.cell_conductance),
            via_inductance: (d.via_inductance, d.via_inductance),
            via_resistance: (d.via_resistance, d.via_resistance),
            stack_stages: (0, 0),
            ..GeneratorConfig::default()
        }
    }
}

/// A fully materialized generated scenario source: the board spec plus the
/// per-port electrical models a scenario assembler needs. Self-contained —
/// rebuilding the [`SyntheticPdn`] needs nothing but this value.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedBoard {
    /// The seed the board was drawn from (bookkeeping; the spec and models
    /// below are already fully materialized).
    pub seed: u64,
    /// The board description, buildable via [`GeneratedBoard::build`].
    pub spec: PdnBoardSpec,
    /// One decap model per decap port, in `spec.decap_ports` order.
    pub decap_models: Vec<DecapPart>,
    /// The VRM electrical model (shared by every VRM leg).
    pub vrm: VrmModel,
    /// The die block electrical model (shared by every die port).
    pub die: DieModel,
}

impl GeneratedBoard {
    /// Builds the synthetic PDN for this board.
    ///
    /// # Errors
    ///
    /// See [`build_board`].
    pub fn build(&self) -> Result<SyntheticPdn> {
        build_board(&self.spec)
    }
}

/// The seeded board generator (see the module docs).
#[derive(Debug, Clone)]
pub struct BoardGenerator {
    config: GeneratorConfig,
}

impl BoardGenerator {
    /// Creates a generator over the given parameter space.
    pub fn new(config: GeneratorConfig) -> Self {
        BoardGenerator { config }
    }

    /// The parameter space this generator samples.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Draws the board for `seed`. Equal `(config, seed)` pairs produce
    /// bit-identical [`GeneratedBoard`]s.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidInput`] when the configuration cannot
    /// produce a valid board (grid too small for the port counts, empty
    /// decap library with decap ports requested, explicit coordinates
    /// outside the grid, non-positive range bounds).
    pub fn generate(&self, seed: u64) -> Result<GeneratedBoard> {
        let cfg = &self.config;
        let mut rng = SplitMix64::seed_from_u64(seed);

        // 1. Grid size.
        let nx = rng.next_range(cfg.nx);
        let ny = rng.next_range(cfg.ny);
        if nx < 2 || ny < 2 {
            return Err(CircuitError::InvalidInput(format!(
                "generated grid {nx}x{ny} below the 2x2 minimum; fix the nx/ny ranges"
            )));
        }

        // 2. Port counts, clamped so every port gets a distinct cell (die
        //    first, then VRM, then decap — decaps yield first because a
        //    board stays meaningful with fewer of them).
        let cells = nx * ny;
        if cells < 3 {
            return Err(CircuitError::InvalidInput(
                "the grid must offer at least 3 cells (die + decap + VRM)".into(),
            ));
        }
        let n_die = rng.next_range(cfg.die_ports).clamp(1, cells - 2);
        let n_vrm = rng.next_range(cfg.vrm_ports).clamp(1, cells - n_die - 1);
        let n_decap = rng.next_range(cfg.decap_ports).clamp(1, cells - n_die - n_vrm);

        // 3. Placement.
        let (die_ports, decap_ports, vrm_ports) = match &cfg.placement {
            Placement::Explicit { die, decaps, vrms } => {
                (die.clone(), decaps.clone(), vrms.clone())
            }
            Placement::Seeded => {
                // Die ports: the cells nearest the grid center, ordered by
                // squared distance with a stable (ix, iy) tie-break.
                let cx = (nx as f64 - 1.0) / 2.0;
                let cy = (ny as f64 - 1.0) / 2.0;
                let mut by_center: Vec<(usize, usize)> =
                    (0..nx).flat_map(|ix| (0..ny).map(move |iy| (ix, iy))).collect();
                by_center.sort_by(|&(ax, ay), &(bx, by)| {
                    let da = (ax as f64 - cx).powi(2) + (ay as f64 - cy).powi(2);
                    let db = (bx as f64 - cx).powi(2) + (by as f64 - cy).powi(2);
                    da.partial_cmp(&db).expect("finite distances").then((ax, ay).cmp(&(bx, by)))
                });
                let die: Vec<_> = by_center[..n_die].to_vec();
                // Remaining cells: Fisher–Yates shuffle, then decaps and
                // VRMs draw in order.
                let mut rest: Vec<(usize, usize)> = by_center[n_die..].to_vec();
                for i in (1..rest.len()).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    rest.swap(i, j);
                }
                let decaps: Vec<_> = rest[..n_decap].to_vec();
                let vrms: Vec<_> = rest[n_decap..n_decap + n_vrm].to_vec();
                (die, decaps, vrms)
            }
        };

        // 4. Plane and via electricals.
        let segment_inductance = rng.next_log_uniform(cfg.segment_inductance);
        let segment_resistance = rng.next_log_uniform(cfg.segment_resistance);
        let cell_capacitance = rng.next_log_uniform(cfg.cell_capacitance);
        let cell_conductance = rng.next_log_uniform(cfg.cell_conductance);
        let via_inductance = rng.next_log_uniform(cfg.via_inductance);
        let via_resistance = rng.next_log_uniform(cfg.via_resistance);

        // 5. Package+die stack: every other stage (counting from the plane)
        //    carries a package decoupling capacitor.
        let n_stages = rng.next_range(cfg.stack_stages);
        let mut die_stack = Vec::with_capacity(n_stages);
        for level in 0..n_stages {
            let inductance = rng.next_log_uniform(cfg.stack_inductance);
            let resistance = rng.next_log_uniform(cfg.stack_resistance);
            let shunt_capacitance =
                if level % 2 == 0 { rng.next_log_uniform(cfg.stack_capacitance) } else { 0.0 };
            die_stack.push(StackStage { inductance, resistance, shunt_capacitance });
        }

        // 6. Per-decap library picks (mixed ESL/ESR population).
        if !decap_ports.is_empty() && cfg.decap_library.is_empty() {
            return Err(CircuitError::InvalidInput(
                "the decap library is empty but decap ports were requested".into(),
            ));
        }
        let decap_models: Vec<DecapPart> = (0..decap_ports.len())
            .map(|_| cfg.decap_library[(rng.next_u64() % cfg.decap_library.len() as u64) as usize])
            .collect();

        // 7. VRM and die electricals.
        let vrm = VrmModel {
            resistance: rng.next_log_uniform(cfg.vrm_resistance),
            inductance: rng.next_log_uniform(cfg.vrm_inductance),
        };
        let die = DieModel {
            resistance: rng.next_log_uniform(cfg.die_resistance),
            capacitance: rng.next_log_uniform(cfg.die_capacitance),
        };

        let spec = PdnBoardSpec {
            nx,
            ny,
            segment_inductance,
            segment_resistance,
            cell_capacitance,
            cell_conductance,
            via_inductance,
            via_resistance,
            die_ports,
            decap_ports,
            vrm_ports,
            die_stack,
        };
        // Validate eagerly: a generated board must always build (explicit
        // placements can carry out-of-grid or colliding coordinates).
        build_board(&spec)?;
        Ok(GeneratedBoard { seed, spec, decap_models, vrm, die })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let generator = BoardGenerator::new(GeneratorConfig::default());
        let a = generator.generate(123).unwrap();
        let b = generator.generate(123).unwrap();
        assert_eq!(a, b);
        // Distinct seeds explore the space (not a constant generator).
        let c = generator.generate(124).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn explicit_config_reproduces_the_default_board_bit_for_bit() {
        let d = PdnBoardSpec::default();
        let generator = BoardGenerator::new(GeneratorConfig::explicit(
            d.nx,
            d.ny,
            d.die_ports.clone(),
            d.decap_ports.clone(),
            d.vrm_ports.clone(),
        ));
        // Seed-independent: every range is degenerate.
        for seed in [0, 7, u64::MAX] {
            let board = generator.generate(seed).unwrap();
            assert_eq!(board.spec, d);
        }
    }

    #[test]
    fn generated_ports_are_distinct_and_inside_the_grid() {
        let generator = BoardGenerator::new(GeneratorConfig::default());
        for seed in 0..64 {
            let board = generator.generate(seed).unwrap();
            let spec = &board.spec;
            let mut seen = std::collections::BTreeSet::new();
            for &(ix, iy) in spec.die_ports.iter().chain(&spec.decap_ports).chain(&spec.vrm_ports) {
                assert!(ix < spec.nx && iy < spec.ny, "seed {seed}: ({ix},{iy}) out of grid");
                assert!(seen.insert((ix, iy)), "seed {seed}: duplicate port ({ix},{iy})");
            }
            assert_eq!(board.decap_models.len(), spec.decap_ports.len());
        }
    }

    #[test]
    fn infeasible_configs_are_rejected() {
        let cfg = GeneratorConfig { nx: (1, 1), ..GeneratorConfig::default() };
        assert!(BoardGenerator::new(cfg).generate(0).is_err());
        let cfg = GeneratorConfig { decap_library: Vec::new(), ..GeneratorConfig::default() };
        assert!(BoardGenerator::new(cfg).generate(0).is_err());
        // Explicit coordinates outside the grid fail at build validation.
        let cfg = GeneratorConfig::explicit(3, 3, vec![(9, 9)], vec![(0, 0)], vec![(2, 2)]);
        assert!(BoardGenerator::new(cfg).generate(0).is_err());
    }
}
