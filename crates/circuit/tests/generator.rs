//! Property-based tests of the seeded board generator: every board drawn
//! from the parameter space must be a well-formed [`SyntheticPdn`] —
//! in-bounds non-overlapping ports, positive element values, a connected
//! nodal network, port counts matching the spec — and regeneration from the
//! same `(config, seed)` pair must be bit-identical.

use pim_circuit::{BoardGenerator, Element, GeneratorConfig, Placement, SyntheticPdn};
use proptest::prelude::*;

/// Union-find connectivity check over the element graph (ground = node 0):
/// the MNA matrix of a disconnected netlist is singular, so every node must
/// reach ground through elements.
fn is_connected(pdn: &SyntheticPdn) -> bool {
    // `node_count()` counts non-ground nodes; indices run 0..=count with 0
    // as ground.
    let n = pdn.circuit.node_count() + 1;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for element in pdn.circuit.elements() {
        let (a, b) = match *element {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => (a, b),
        };
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        parent[ra] = rb;
    }
    let ground = find(&mut parent, 0);
    (0..n).all(|x| find(&mut parent, x) == ground)
}

/// Every element value a generated board may contain must be strictly
/// positive (shunt conductances may be zero).
fn elements_well_formed(pdn: &SyntheticPdn) -> Result<(), String> {
    for element in pdn.circuit.elements() {
        match *element {
            Element::Resistor { ohms, .. } => {
                if !(ohms > 0.0) {
                    return Err(format!("non-positive resistor {ohms}"));
                }
            }
            Element::Capacitor { farad, shunt_conductance, .. } => {
                if !(farad > 0.0) {
                    return Err(format!("non-positive capacitor {farad}"));
                }
                if !(shunt_conductance >= 0.0) {
                    return Err(format!("negative shunt conductance {shunt_conductance}"));
                }
            }
            Element::Inductor { henry, series_resistance, .. } => {
                if !(henry > 0.0) {
                    return Err(format!("non-positive inductor {henry}"));
                }
                if !(series_resistance > 0.0) {
                    return Err(format!("non-positive series resistance {series_resistance}"));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Seeds 0..256 across the 2×2..8×8 grid space: every draw builds a
    // well-formed, connected PDN whose port bookkeeping is consistent.
    #[test]
    fn generated_boards_are_well_formed(seed in 0usize..256) {
        let config = GeneratorConfig {
            nx: (2, 8),
            ny: (2, 8),
            ..GeneratorConfig::default()
        };
        let board = BoardGenerator::new(config.clone())
            .generate(seed as u64)
            .expect("every seed in the default space must generate");
        let spec = &board.spec;

        // Grid bounds honour the configured ranges.
        prop_assert!(spec.nx >= 2 && spec.nx <= 8);
        prop_assert!(spec.ny >= 2 && spec.ny <= 8);

        // Ports are in bounds and do not overlap across roles.
        let all: Vec<(usize, usize)> = spec
            .die_ports
            .iter()
            .chain(&spec.decap_ports)
            .chain(&spec.vrm_ports)
            .copied()
            .collect();
        for &(ix, iy) in &all {
            prop_assert!(ix < spec.nx && iy < spec.ny, "port ({ix},{iy}) off the grid");
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert!(dedup.len() == all.len(), "overlapping port cells");

        // Role counts: at least one die, decap and VRM port each; one decap
        // model per decap port.
        prop_assert!(!spec.die_ports.is_empty());
        prop_assert!(!spec.decap_ports.is_empty());
        prop_assert!(!spec.vrm_ports.is_empty());
        prop_assert!(board.decap_models.len() == spec.decap_ports.len());

        // Electrical models are physical.
        for m in &board.decap_models {
            prop_assert!(m.capacitance > 0.0 && m.esr > 0.0 && m.esl > 0.0);
        }
        prop_assert!(board.vrm.resistance > 0.0 && board.vrm.inductance > 0.0);
        prop_assert!(board.die.resistance > 0.0 && board.die.capacitance > 0.0);

        // The built netlist: port counts match the spec, every element is
        // physical, and the nodal graph is connected (solvable MNA).
        let pdn = board.build().expect("generated spec must build");
        prop_assert!(pdn.die_ports.len() == spec.die_ports.len());
        prop_assert!(pdn.decap_ports.len() == spec.decap_ports.len());
        prop_assert!(pdn.vrm_ports.len() == spec.vrm_ports.len());
        prop_assert!(pdn.ports() == all.len());
        prop_assert!(pdn.circuit.port_count() == all.len());
        if let Err(msg) = elements_well_formed(&pdn) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert!(is_connected(&pdn), "disconnected nodal network");

        // Determinism: the same (config, seed) pair regenerates the board
        // bit for bit.
        let again = BoardGenerator::new(config).generate(seed as u64).unwrap();
        prop_assert!(again == board, "regeneration is not bit-identical");
    }

    // A generated board stays solvable: one mid-band nodal solve per seed
    // must return finite scattering entries.
    #[test]
    fn generated_boards_solve_at_a_spot_frequency(seed in 0usize..64) {
        let board = BoardGenerator::new(GeneratorConfig::default()).generate(seed as u64).unwrap();
        let pdn = board.build().unwrap();
        let z = pdn.circuit.port_impedance_at(2.0 * std::f64::consts::PI * 1e8).unwrap();
        for i in 0..pdn.ports() {
            for j in 0..pdn.ports() {
                let entry = z[(i, j)];
                prop_assert!(
                    entry.re.is_finite() && entry.im.is_finite(),
                    "non-finite Z[{}, {}] = {:?}", i, j, entry
                );
            }
        }
    }

    // Explicit placement pins the ports while electrical draws stay
    // seed-dependent: the topology must be constant across seeds.
    #[test]
    fn explicit_placement_is_seed_independent(seed in 0usize..64) {
        let config = GeneratorConfig::explicit(
            4,
            4,
            vec![(1, 1), (2, 2)],
            vec![(0, 3)],
            vec![(3, 0)],
        );
        let board = BoardGenerator::new(config).generate(seed as u64).unwrap();
        prop_assert!(board.spec.die_ports == vec![(1, 1), (2, 2)]);
        prop_assert!(board.spec.decap_ports == vec![(0, 3)]);
        prop_assert!(board.spec.vrm_ports == vec![(3, 0)]);
        prop_assert!(board.spec.nx == 4);
        prop_assert!(board.spec.ny == 4);
    }

    // Seeded placement across larger grids keeps the die in the interior
    // region the generator promises (cells nearest the grid centre).
    #[test]
    fn seeded_placement_keeps_die_ports_off_the_corners(seed in 0usize..128) {
        let config = GeneratorConfig {
            nx: (4, 8),
            ny: (4, 8),
            placement: Placement::Seeded,
            ..GeneratorConfig::default()
        };
        let board = BoardGenerator::new(config).generate(seed as u64).unwrap();
        let spec = &board.spec;
        let corners = [
            (0, 0),
            (0, spec.ny - 1),
            (spec.nx - 1, 0),
            (spec.nx - 1, spec.ny - 1),
        ];
        for &die in &spec.die_ports {
            prop_assert!(!corners.contains(&die), "die port {die:?} on a corner");
        }
    }
}
