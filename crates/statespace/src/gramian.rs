//! Controllability / observability Gramians and the frequency-weighted
//! Gramians used by the sensitivity-weighted perturbation norm.

use crate::{Result, StateSpace, StateSpaceError};
use pim_linalg::lyapunov::{controllability_gramian, observability_gramian};
use pim_linalg::Mat;

/// Controllability Gramian `P` of a state-space system: the solution of
/// `A·P + P·Aᵀ + B·Bᵀ = 0` (eq. 11 of the paper).
///
/// # Errors
///
/// Propagates Lyapunov solver failures (the system must be asymptotically
/// stable for the Gramian to exist).
pub fn controllability(sys: &StateSpace) -> Result<Mat> {
    Ok(controllability_gramian(sys.a(), sys.b())?)
}

/// Observability Gramian `Q` of a state-space system: the solution of
/// `Aᵀ·Q + Q·A + Cᵀ·C = 0`.
///
/// # Errors
///
/// Propagates Lyapunov solver failures.
pub fn observability(sys: &StateSpace) -> Result<Mat> {
    Ok(observability_gramian(sys.a(), sys.c())?)
}

/// The L2 norm of the impulse-response perturbation induced by a perturbation
/// `δC` of the output matrix: `‖δH‖₂² = tr(δC · P · δCᵀ)` (eq. 10 of the
/// paper), where `P` is the controllability Gramian.
///
/// # Errors
///
/// Returns [`StateSpaceError::InvalidModel`] on dimension mismatch.
pub fn perturbation_norm_sq(delta_c: &Mat, gramian: &Mat) -> Result<f64> {
    if delta_c.cols() != gramian.rows() || !gramian.is_square() {
        return Err(StateSpaceError::InvalidModel(format!(
            "perturbation_norm_sq: δC is {:?} but the Gramian is {:?}",
            delta_c.shape(),
            gramian.shape()
        )));
    }
    let m = delta_c.matmul(gramian)?.matmul(&delta_c.transpose())?;
    Ok(m.trace())
}

/// The partitioned, frequency-weighted controllability Gramian of eq. (19):
/// given the SISO realization of a matrix element `S_ij(s)` and of the
/// sensitivity weight `Ξ̃(s)`, forms the cascade `S_ij(s)·Ξ̃(s)` (eq. 18),
/// computes its controllability Gramian, and returns the upper-left
/// `n_ij × n_ij` block `P^Ξ,11` that weights perturbations of `c_ij`
/// (eq. 20).
///
/// # Errors
///
/// Returns [`StateSpaceError::InvalidModel`] if either system is not SISO and
/// propagates Lyapunov solver failures.
pub fn weighted_element_gramian(element: &StateSpace, weight: &StateSpace) -> Result<Mat> {
    let cascade = element.cascade_siso(weight)?;
    let full = controllability(&cascade)?;
    Ok(full.block(0, 0, element.order(), element.order()))
}

/// Convenience: the plain (unweighted) element Gramian, i.e. the
/// controllability Gramian of the element realization itself. Using this in
/// place of [`weighted_element_gramian`] recovers the standard L2 enforcement
/// norm.
///
/// # Errors
///
/// Propagates Lyapunov solver failures.
pub fn element_gramian(element: &StateSpace) -> Result<Mat> {
    controllability(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::approx_eq;

    fn first_order(pole: f64, gain: f64) -> StateSpace {
        StateSpace::new(
            Mat::from_diag(&[pole]),
            Mat::col_vector(&[1.0]),
            Mat::row_vector(&[gain]),
            Mat::from_diag(&[0.0]),
        )
        .unwrap()
    }

    #[test]
    fn controllability_of_first_order_system() {
        // P = b^2 / (2|a|)
        let sys = first_order(-4.0, 3.0);
        let p = controllability(&sys).unwrap();
        assert!(approx_eq(p[(0, 0)], 1.0 / 8.0, 1e-12));
        let q = observability(&sys).unwrap();
        assert!(approx_eq(q[(0, 0)], 9.0 / 8.0, 1e-12));
    }

    #[test]
    fn perturbation_norm_matches_l2_norm_of_impulse_response() {
        // For H(s) = c/(s+a), the impulse response is c e^{-at} and
        // ||H||_2^2 = c^2/(2a). Perturbing c by dc changes the norm by
        // dc^2/(2a), which must equal tr(dc P dc^T).
        let a = 2.5;
        let sys = first_order(-a, 1.0);
        let p = controllability(&sys).unwrap();
        let dc = Mat::row_vector(&[0.3]);
        let n = perturbation_norm_sq(&dc, &p).unwrap();
        assert!(approx_eq(n, 0.3 * 0.3 / (2.0 * a), 1e-12));
        assert!(perturbation_norm_sq(&Mat::row_vector(&[1.0, 2.0]), &p).is_err());
    }

    #[test]
    fn weighted_gramian_reduces_to_plain_gramian_for_unit_weight() {
        let sys = first_order(-3.0, 2.0);
        // Unit weight: W(s) = 1 (zero-order dynamics represented by a fast,
        // negligible pole with zero residue and d = 1).
        let unit = StateSpace::new(
            Mat::from_diag(&[-1e9]),
            Mat::col_vector(&[0.0]),
            Mat::row_vector(&[0.0]),
            Mat::from_diag(&[1.0]),
        )
        .unwrap();
        let pw = weighted_element_gramian(&sys, &unit).unwrap();
        let p = element_gramian(&sys).unwrap();
        assert!(pw.max_abs_diff(&p) < 1e-10);
    }

    #[test]
    fn weighted_gramian_scales_quadratically_with_constant_weight() {
        let sys = first_order(-1.0, 1.0);
        let make_const = |k: f64| {
            StateSpace::new(
                Mat::from_diag(&[-1e9]),
                Mat::col_vector(&[0.0]),
                Mat::row_vector(&[0.0]),
                Mat::from_diag(&[k]),
            )
            .unwrap()
        };
        let p1 = weighted_element_gramian(&sys, &make_const(1.0)).unwrap();
        let p3 = weighted_element_gramian(&sys, &make_const(3.0)).unwrap();
        // ||W·dS||^2 with constant W = 3 is 9x the unweighted norm.
        assert!(approx_eq(p3[(0, 0)], 9.0 * p1[(0, 0)], 1e-9));
    }

    #[test]
    fn weighted_gramian_emphasizes_the_weighted_band() {
        // Element with a low-frequency pole; weight is a low-pass filter.
        // A low-pass weight must produce a larger (1,1) Gramian entry than a
        // high-pass weight of identical peak gain, because the element's
        // energy is concentrated at low frequency.
        let sys = first_order(-1.0, 1.0);
        let low_pass = StateSpace::new(
            Mat::from_diag(&[-10.0]),
            Mat::col_vector(&[1.0]),
            Mat::row_vector(&[10.0]),
            Mat::from_diag(&[0.0]),
        )
        .unwrap();
        let high_pass = StateSpace::new(
            Mat::from_diag(&[-10.0]),
            Mat::col_vector(&[1.0]),
            Mat::row_vector(&[-10.0]),
            Mat::from_diag(&[1.0]),
        )
        .unwrap();
        let p_lp = weighted_element_gramian(&sys, &low_pass).unwrap();
        let p_hp = weighted_element_gramian(&sys, &high_pass).unwrap();
        assert!(p_lp[(0, 0)] > p_hp[(0, 0)]);
    }

    #[test]
    fn gramian_fails_when_poles_are_symmetric_about_the_imaginary_axis() {
        // A has eigenvalues +1 and -1: the Lyapunov operator is singular and
        // no Gramian exists.
        let sys = StateSpace::new(
            Mat::from_diag(&[1.0, -1.0]),
            Mat::from_rows(&[&[1.0], &[1.0]]),
            Mat::row_vector(&[1.0, 1.0]),
            Mat::from_diag(&[0.0]),
        )
        .unwrap();
        assert!(controllability(&sys).is_err());
    }
}
