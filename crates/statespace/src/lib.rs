//! # pim-statespace
//!
//! Rational macromodel types for the DATE 2014 sensitivity-weighted passivity
//! enforcement reproduction: pole–residue models produced by Vector Fitting,
//! their real state-space realizations, controllability Gramians, and the
//! cascade (product) realizations needed by the sensitivity-weighted
//! perturbation norm (eq. 18–20 of the paper).
//!
//! The main types are:
//!
//! * [`PoleResidueModel`] — a multiport transfer matrix
//!   `S(s) = Σₙ Rₙ/(s − pₙ) + D` with poles shared by all matrix elements;
//! * [`StateSpace`] — a real `{A, B, C, D}` realization, either of the full
//!   multiport model or of a single matrix element;
//! * [`gramian`] — controllability / observability Gramians and the
//!   partitioned Gramian of a cascade `S_ij(s)·Ξ̃(s)`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gramian;
pub mod pole_residue;
pub mod realization;

pub use pole_residue::PoleResidueModel;
pub use realization::StateSpace;

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating macromodels.
#[derive(Debug)]
pub enum StateSpaceError {
    /// The underlying linear algebra kernel failed.
    Linalg(pim_linalg::LinalgError),
    /// A data-handling operation failed.
    RfData(pim_rfdata::RfDataError),
    /// The model structure is invalid (mismatched sizes, unpaired complex
    /// poles, non-conjugate residues, ...).
    InvalidModel(String),
}

impl fmt::Display for StateSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateSpaceError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            StateSpaceError::RfData(e) => write!(f, "data handling failure: {e}"),
            StateSpaceError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl Error for StateSpaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StateSpaceError::Linalg(e) => Some(e),
            StateSpaceError::RfData(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for StateSpaceError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        StateSpaceError::Linalg(e)
    }
}

impl From<pim_rfdata::RfDataError> for StateSpaceError {
    fn from(e: pim_rfdata::RfDataError) -> Self {
        StateSpaceError::RfData(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, StateSpaceError>;
