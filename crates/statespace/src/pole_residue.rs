//! Pole–residue (partial fraction) macromodels with common poles.

use crate::{Result, StateSpaceError};
use pim_linalg::{CMat, Complex64, Mat};
use pim_rfdata::{FrequencyGrid, NetworkData, ParameterKind};

/// Relative tolerance used to decide whether a pole is real and whether two
/// poles form a complex-conjugate pair.
const PAIR_TOL: f64 = 1e-9;

/// A multiport pole–residue macromodel
/// `H(s) = Σₙ Rₙ / (s − pₙ) + D` (eq. 3 of the paper).
///
/// Conventions:
///
/// * all matrix elements share the same pole set (`poles`);
/// * complex poles appear in adjacent conjugate pairs `(p, p̄)` with the
///   positive-imaginary-part member first, and the residue matrix attached to
///   `p̄` is the complex conjugate of the one attached to `p`;
/// * the asymptotic term `D` is real, as required for a real-valued impulse
///   response.
///
/// ```
/// use pim_linalg::{CMat, Complex64, Mat};
/// use pim_statespace::PoleResidueModel;
///
/// # fn main() -> Result<(), pim_statespace::StateSpaceError> {
/// // H(s) = 2/(s+1) + 1  (single port, single real pole)
/// let model = PoleResidueModel::new(
///     vec![Complex64::new(-1.0, 0.0)],
///     vec![CMat::from_diag(&[Complex64::new(2.0, 0.0)])],
///     Mat::from_diag(&[1.0]),
/// )?;
/// let h0 = model.evaluate(Complex64::ZERO)?;
/// assert!((h0[(0, 0)].re - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PoleResidueModel {
    poles: Vec<Complex64>,
    residues: Vec<CMat>,
    d: Mat,
}

impl PoleResidueModel {
    /// Builds a model from poles, residue matrices and the constant term.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] when lengths mismatch,
    /// residues are not square or of inconsistent size, complex poles are not
    /// in adjacent conjugate pairs, or conjugate residues are inconsistent.
    pub fn new(poles: Vec<Complex64>, residues: Vec<CMat>, d: Mat) -> Result<Self> {
        if poles.len() != residues.len() {
            return Err(StateSpaceError::InvalidModel(format!(
                "{} poles but {} residue matrices",
                poles.len(),
                residues.len()
            )));
        }
        if !d.is_square() {
            return Err(StateSpaceError::InvalidModel("constant term D must be square".into()));
        }
        let ports = d.rows();
        for (n, r) in residues.iter().enumerate() {
            if r.shape() != (ports, ports) {
                return Err(StateSpaceError::InvalidModel(format!(
                    "residue {n} has shape {:?}, expected {}x{}",
                    r.shape(),
                    ports,
                    ports
                )));
            }
        }
        let model = PoleResidueModel { poles, residues, d };
        model.validate_pairing()?;
        Ok(model)
    }

    /// Checks the conjugate-pair structure of the pole/residue lists.
    fn validate_pairing(&self) -> Result<()> {
        let mut n = 0;
        while n < self.poles.len() {
            let p = self.poles[n];
            let scale = p.abs().max(1.0);
            if p.im.abs() <= PAIR_TOL * scale {
                n += 1;
                continue;
            }
            // Complex pole: its conjugate must follow.
            let q = *self.poles.get(n + 1).ok_or_else(|| {
                StateSpaceError::InvalidModel(format!(
                    "complex pole {p} at index {n} has no conjugate partner"
                ))
            })?;
            if (q - p.conj()).abs() > PAIR_TOL * scale {
                return Err(StateSpaceError::InvalidModel(format!(
                    "pole at index {} ({q}) is not the conjugate of the pole at index {n} ({p})",
                    n + 1
                )));
            }
            let r = &self.residues[n];
            let rc = &self.residues[n + 1];
            let diff = (rc - &r.conj()).max_abs();
            let rscale = r.max_abs().max(1.0);
            if diff > 1e-6 * rscale {
                return Err(StateSpaceError::InvalidModel(format!(
                    "residue at index {} is not the conjugate of the residue at index {n}",
                    n + 1
                )));
            }
            n += 2;
        }
        Ok(())
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.d.rows()
    }

    /// Number of poles (counting both members of complex pairs).
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// The pole list (conjugate pairs adjacent).
    pub fn poles(&self) -> &[Complex64] {
        &self.poles
    }

    /// The residue matrices, aligned with [`PoleResidueModel::poles`].
    pub fn residues(&self) -> &[CMat] {
        &self.residues
    }

    /// The real constant (asymptotic) term `D`.
    pub fn d(&self) -> &Mat {
        &self.d
    }

    /// Returns `true` when the pole at `index` is (numerically) real.
    pub fn is_real_pole(&self, index: usize) -> bool {
        let p = self.poles[index];
        p.im.abs() <= PAIR_TOL * p.abs().max(1.0)
    }

    /// Returns `true` when every pole has a strictly negative real part.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }

    /// Evaluates the transfer matrix at a complex frequency `s`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] if `s` coincides with a pole.
    pub fn evaluate(&self, s: Complex64) -> Result<CMat> {
        let ports = self.ports();
        let mut out = self.d.to_complex();
        for (p, r) in self.poles.iter().zip(&self.residues) {
            let den = s - *p;
            // audit:allow(float-eq): evaluation exactly on a pole must take the residue branch
            if den.abs() == 0.0 {
                return Err(StateSpaceError::InvalidModel(format!(
                    "evaluation point {s} coincides with pole {p}"
                )));
            }
            let inv = den.recip();
            for i in 0..ports {
                for j in 0..ports {
                    out[(i, j)] += r[(i, j)] * inv;
                }
            }
        }
        Ok(out)
    }

    /// Evaluates the transfer matrix at the real angular frequency `ω`
    /// (i.e. at `s = jω`).
    ///
    /// # Errors
    ///
    /// See [`PoleResidueModel::evaluate`].
    pub fn evaluate_at_omega(&self, omega: f64) -> Result<CMat> {
        self.evaluate(Complex64::from_imag(omega))
    }

    /// Evaluates a single matrix element at `s`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] for out-of-range indices or
    /// evaluation at a pole.
    pub fn evaluate_element(&self, i: usize, j: usize, s: Complex64) -> Result<Complex64> {
        let ports = self.ports();
        if i >= ports || j >= ports {
            return Err(StateSpaceError::InvalidModel(format!(
                "element ({i},{j}) out of range for a {ports}-port model"
            )));
        }
        let mut out = Complex64::from_real(self.d[(i, j)]);
        for (p, r) in self.poles.iter().zip(&self.residues) {
            let den = s - *p;
            // audit:allow(float-eq): evaluation exactly on a pole must take the residue branch
            if den.abs() == 0.0 {
                return Err(StateSpaceError::InvalidModel(format!(
                    "evaluation point {s} coincides with pole {p}"
                )));
            }
            out += r[(i, j)] / den;
        }
        Ok(out)
    }

    /// Samples the model over a frequency grid, producing a tabulated
    /// [`NetworkData`] set in the given representation kind.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and data-construction failures.
    pub fn sample(
        &self,
        grid: &FrequencyGrid,
        kind: ParameterKind,
        z_ref: f64,
    ) -> Result<NetworkData> {
        let mut matrices = Vec::with_capacity(grid.len());
        for &omega in &grid.omegas() {
            matrices.push(self.evaluate_at_omega(omega)?);
        }
        Ok(NetworkData::new(grid.clone(), matrices, kind, z_ref)?)
    }

    /// Returns a copy with every unstable pole reflected into the left half
    /// plane (`p ← −p̄`), the standard stabilization used inside Vector
    /// Fitting pole relocation.
    pub fn with_stable_poles(&self) -> PoleResidueModel {
        let poles = self
            .poles
            .iter()
            .map(|p| if p.re > 0.0 { Complex64::new(-p.re, p.im) } else { *p })
            .collect();
        PoleResidueModel { poles, residues: self.residues.clone(), d: self.d.clone() }
    }

    /// Returns a copy with the residue matrices replaced (poles and `D`
    /// unchanged).
    ///
    /// # Errors
    ///
    /// Same validation as [`PoleResidueModel::new`].
    pub fn with_residues(&self, residues: Vec<CMat>, d: Mat) -> Result<PoleResidueModel> {
        PoleResidueModel::new(self.poles.clone(), residues, d)
    }

    /// Extracts the scalar (single-element) model for entry `(i, j)`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] for out-of-range indices.
    pub fn element_model(&self, i: usize, j: usize) -> Result<PoleResidueModel> {
        let ports = self.ports();
        if i >= ports || j >= ports {
            return Err(StateSpaceError::InvalidModel(format!(
                "element ({i},{j}) out of range for a {ports}-port model"
            )));
        }
        let residues: Vec<CMat> =
            self.residues.iter().map(|r| CMat::from_diag(&[r[(i, j)]])).collect();
        PoleResidueModel::new(self.poles.clone(), residues, Mat::from_diag(&[self.d[(i, j)]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn two_port_model() -> PoleResidueModel {
        // Poles: one real (-1e3), one complex pair (-2e3 ± j 5e3).
        let p = c(-2e3, 5e3);
        let r_real = CMat::from_fn(2, 2, |i, j| c(10.0 + (i + j) as f64, 0.0));
        let r_cplx = CMat::from_fn(2, 2, |i, j| c(3.0 - i as f64, 2.0 + j as f64));
        PoleResidueModel::new(
            vec![c(-1e3, 0.0), p, p.conj()],
            vec![r_real, r_cplx.clone(), r_cplx.conj()],
            Mat::from_fn(2, 2, |i, j| if i == j { 0.5 } else { 0.1 }),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = two_port_model();
        assert_eq!(m.ports(), 2);
        assert_eq!(m.order(), 3);
        assert!(m.is_stable());
        assert!(m.is_real_pole(0));
        assert!(!m.is_real_pole(1));
        assert_eq!(m.poles().len(), 3);
        assert_eq!(m.residues().len(), 3);
        assert_eq!((m.d()[(0, 0)]).to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn invalid_models_are_rejected() {
        let p = c(-1.0, 2.0);
        let r = CMat::identity(1);
        // Missing conjugate partner.
        assert!(PoleResidueModel::new(vec![p], vec![r.clone()], Mat::identity(1)).is_err());
        // Wrong partner.
        assert!(PoleResidueModel::new(
            vec![p, c(-1.0, -3.0)],
            vec![r.clone(), r.clone()],
            Mat::identity(1)
        )
        .is_err());
        // Non-conjugate residues.
        let r2 = CMat::from_diag(&[c(1.0, 5.0)]);
        assert!(PoleResidueModel::new(
            vec![p, p.conj()],
            vec![r2.clone(), r2.clone()],
            Mat::identity(1)
        )
        .is_err());
        // Length mismatch.
        assert!(PoleResidueModel::new(vec![c(-1.0, 0.0)], vec![], Mat::identity(1)).is_err());
        // Non-square D.
        assert!(PoleResidueModel::new(vec![], vec![], Mat::zeros(1, 2)).is_err());
        // Residue size mismatch.
        assert!(PoleResidueModel::new(
            vec![c(-1.0, 0.0)],
            vec![CMat::identity(3)],
            Mat::identity(1)
        )
        .is_err());
    }

    #[test]
    fn evaluation_is_conjugate_symmetric_for_real_models() {
        let m = two_port_model();
        let s = c(0.0, 7.5e3);
        let h_pos = m.evaluate(s).unwrap();
        let h_neg = m.evaluate(s.conj()).unwrap();
        // H(conj(s)) = conj(H(s)) for real impulse responses.
        assert!(h_neg.max_abs_diff(&h_pos.conj()) < 1e-9);
    }

    #[test]
    fn evaluate_matches_manual_sum() {
        let m = two_port_model();
        let s = c(-50.0, 1234.0);
        let h = m.evaluate(s).unwrap();
        let mut manual = Complex64::from_real(m.d()[(0, 1)]);
        for (p, r) in m.poles().iter().zip(m.residues()) {
            manual += r[(0, 1)] / (s - *p);
        }
        assert!((h[(0, 1)] - manual).abs() < 1e-12);
        assert!((m.evaluate_element(0, 1, s).unwrap() - manual).abs() < 1e-12);
        assert!(m.evaluate_element(5, 0, s).is_err());
    }

    #[test]
    fn evaluation_at_pole_fails() {
        let m = two_port_model();
        assert!(m.evaluate(c(-1e3, 0.0)).is_err());
        assert!(m.evaluate_element(0, 0, c(-1e3, 0.0)).is_err());
    }

    #[test]
    fn sampling_produces_network_data() {
        let m = two_port_model();
        let grid = FrequencyGrid::log_space(1.0, 1e5, 20).unwrap().with_dc();
        let data = m.sample(&grid, ParameterKind::Scattering, 50.0).unwrap();
        assert_eq!(data.len(), 21);
        assert_eq!(data.ports(), 2);
        // DC value equals D + sum of R/|p| contributions (real).
        assert!(data.matrix(0)[(0, 0)].im.abs() < 1e-9);
    }

    #[test]
    fn stabilization_flips_unstable_poles() {
        let p = c(2.0, 3.0);
        let r = CMat::identity(1);
        let m = PoleResidueModel::new(
            vec![p, p.conj(), c(5.0, 0.0)],
            vec![r.clone(), r.conj(), r.clone()],
            Mat::identity(1),
        )
        .unwrap();
        assert!(!m.is_stable());
        let st = m.with_stable_poles();
        assert!(st.is_stable());
        assert!((st.poles()[0].re + 2.0).abs() < 1e-15);
        assert!((st.poles()[0].im - 3.0).abs() < 1e-15);
        assert!((st.poles()[2].re + 5.0).abs() < 1e-15);
    }

    #[test]
    fn element_model_extraction() {
        let m = two_port_model();
        let e = m.element_model(1, 0).unwrap();
        assert_eq!(e.ports(), 1);
        assert_eq!(e.order(), 3);
        let s = c(0.0, 4e3);
        let full = m.evaluate(s).unwrap()[(1, 0)];
        let scalar = e.evaluate(s).unwrap()[(0, 0)];
        assert!((full - scalar).abs() < 1e-12);
        assert!(m.element_model(2, 0).is_err());
    }

    #[test]
    fn with_residues_replaces_and_validates() {
        let m = two_port_model();
        let zeros: Vec<CMat> = m.residues().iter().map(|r| r.scaled_real(0.0)).collect();
        let z = m.with_residues(zeros, Mat::zeros(2, 2)).unwrap();
        let h = z.evaluate(c(0.0, 1e4)).unwrap();
        assert!(h.max_abs() < 1e-15);
    }
}
