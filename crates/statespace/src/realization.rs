//! Real state-space realizations of pole–residue macromodels.

use crate::{PoleResidueModel, Result, StateSpaceError};
use pim_linalg::lu::CLu;
use pim_linalg::{CMat, Complex64, Mat};
use pim_rfdata::{FrequencyGrid, NetworkData, ParameterKind};

/// A real state-space system `{A, B, C, D}` with transfer matrix
/// `H(s) = C(sI − A)⁻¹B + D` (eq. 7 of the paper).
///
/// ```
/// use pim_linalg::{Complex64, Mat};
/// use pim_statespace::StateSpace;
///
/// # fn main() -> Result<(), pim_statespace::StateSpaceError> {
/// // H(s) = 1/(s+2)
/// let sys = StateSpace::new(
///     Mat::from_diag(&[-2.0]),
///     Mat::col_vector(&[1.0]),
///     Mat::row_vector(&[1.0]),
///     Mat::from_diag(&[0.0]),
/// )?;
/// let h = sys.evaluate(Complex64::ZERO)?;
/// assert!((h[(0, 0)].re - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateSpace {
    a: Mat,
    b: Mat,
    c: Mat,
    d: Mat,
}

impl StateSpace {
    /// Builds a system from its four matrices.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] when the dimensions are
    /// inconsistent (`A` square `n×n`, `B` `n×m`, `C` `p×n`, `D` `p×m`).
    pub fn new(a: Mat, b: Mat, c: Mat, d: Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(StateSpaceError::InvalidModel(format!(
                "A must be square, got {:?}",
                a.shape()
            )));
        }
        let n = a.rows();
        if b.rows() != n {
            return Err(StateSpaceError::InvalidModel(format!(
                "B must have {n} rows, got {:?}",
                b.shape()
            )));
        }
        if c.cols() != n {
            return Err(StateSpaceError::InvalidModel(format!(
                "C must have {n} columns, got {:?}",
                c.shape()
            )));
        }
        if d.shape() != (c.rows(), b.cols()) {
            return Err(StateSpaceError::InvalidModel(format!(
                "D must be {}x{}, got {:?}",
                c.rows(),
                b.cols(),
                d.shape()
            )));
        }
        Ok(StateSpace { a, b, c, d })
    }

    /// State dimension `n`.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// The state matrix `A`.
    pub fn a(&self) -> &Mat {
        &self.a
    }

    /// The input matrix `B`.
    pub fn b(&self) -> &Mat {
        &self.b
    }

    /// The output matrix `C`.
    pub fn c(&self) -> &Mat {
        &self.c
    }

    /// The feedthrough matrix `D`.
    pub fn d(&self) -> &Mat {
        &self.d
    }

    /// Replaces the output matrix `C` (used by the passivity enforcement loop,
    /// which perturbs only `C`).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] on shape mismatch.
    pub fn with_c(&self, c: Mat) -> Result<StateSpace> {
        StateSpace::new(self.a.clone(), self.b.clone(), c, self.d.clone())
    }

    /// Evaluates the transfer matrix at a complex frequency `s`.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::Linalg`] when `sI − A` is singular.
    pub fn evaluate(&self, s: Complex64) -> Result<CMat> {
        let n = self.order();
        let mut si_a = self.a.to_complex().scaled_real(-1.0);
        for i in 0..n {
            si_a[(i, i)] += s;
        }
        let lu = CLu::new(&si_a)?;
        let x = lu.solve(&self.b.to_complex())?;
        let mut h = self.c.to_complex().matmul(&x)?;
        h += &self.d.to_complex();
        Ok(h)
    }

    /// Evaluates the transfer matrix at `s = jω`.
    ///
    /// # Errors
    ///
    /// See [`StateSpace::evaluate`].
    pub fn evaluate_at_omega(&self, omega: f64) -> Result<CMat> {
        self.evaluate(Complex64::from_imag(omega))
    }

    /// Samples the transfer matrix over a frequency grid.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and data-construction failures.
    pub fn sample(
        &self,
        grid: &FrequencyGrid,
        kind: ParameterKind,
        z_ref: f64,
    ) -> Result<NetworkData> {
        let mut matrices = Vec::with_capacity(grid.len());
        for &omega in &grid.omegas() {
            matrices.push(self.evaluate_at_omega(omega)?);
        }
        Ok(NetworkData::new(grid.clone(), matrices, kind, z_ref)?)
    }

    /// Eigenvalues of `A` (the system poles).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue solver failures.
    pub fn poles(&self) -> Result<Vec<Complex64>> {
        Ok(pim_linalg::eig::eigenvalues(&self.a)?)
    }

    /// `true` when every eigenvalue of `A` has a strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue solver failures.
    pub fn is_stable(&self) -> Result<bool> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Builds the full multiport realization of a pole–residue model with
    /// common poles (the standard Gilbert-style realization used by Vector
    /// Fitting, with 2×2 real blocks for complex-conjugate pole pairs).
    ///
    /// The state dimension is `order × ports`.
    ///
    /// # Errors
    ///
    /// Propagates model validation failures.
    pub fn from_pole_residue(model: &PoleResidueModel) -> Result<StateSpace> {
        let ports = model.ports();
        let blocks = scalar_pole_blocks(model);
        let n_scalar: usize = blocks.iter().map(|b| b.size()).sum();
        let n = n_scalar * ports;
        let mut a = Mat::zeros(n, n);
        let mut b = Mat::zeros(n, ports);
        let mut c = Mat::zeros(ports, n);
        let mut offset = 0usize;
        for blk in &blocks {
            match blk {
                PoleBlock::Real { pole, index } => {
                    let r = &model.residues()[*index];
                    for q in 0..ports {
                        let row = offset + q;
                        a[(row, row)] = *pole;
                        b[(row, q)] = 1.0;
                        for i in 0..ports {
                            c[(i, row)] = r[(i, q)].re;
                        }
                    }
                    offset += ports;
                }
                PoleBlock::ComplexPair { sigma, omega, index } => {
                    let r = &model.residues()[*index];
                    for q in 0..ports {
                        let row1 = offset + q;
                        let row2 = offset + ports + q;
                        a[(row1, row1)] = *sigma;
                        a[(row1, row2)] = *omega;
                        a[(row2, row1)] = -*omega;
                        a[(row2, row2)] = *sigma;
                        b[(row1, q)] = 1.0;
                        for i in 0..ports {
                            c[(i, row1)] = 2.0 * r[(i, q)].re;
                            c[(i, row2)] = 2.0 * r[(i, q)].im;
                        }
                    }
                    offset += 2 * ports;
                }
            }
        }
        StateSpace::new(a, b, c, model.d().clone())
    }

    /// Builds the single-input single-output realization of matrix element
    /// `(i, j)` of a pole–residue model. The state dimension equals the model
    /// order (number of poles).
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] for out-of-range indices.
    pub fn from_pole_residue_element(
        model: &PoleResidueModel,
        i: usize,
        j: usize,
    ) -> Result<StateSpace> {
        let ports = model.ports();
        if i >= ports || j >= ports {
            return Err(StateSpaceError::InvalidModel(format!(
                "element ({i},{j}) out of range for a {ports}-port model"
            )));
        }
        let blocks = scalar_pole_blocks(model);
        let n: usize = blocks.iter().map(|b| b.size()).sum();
        let mut a = Mat::zeros(n, n);
        let mut b = Mat::zeros(n, 1);
        let mut c = Mat::zeros(1, n);
        let mut offset = 0usize;
        for blk in &blocks {
            match blk {
                PoleBlock::Real { pole, index } => {
                    let r = model.residues()[*index][(i, j)];
                    a[(offset, offset)] = *pole;
                    b[(offset, 0)] = 1.0;
                    c[(0, offset)] = r.re;
                    offset += 1;
                }
                PoleBlock::ComplexPair { sigma, omega, index } => {
                    let r = model.residues()[*index][(i, j)];
                    a[(offset, offset)] = *sigma;
                    a[(offset, offset + 1)] = *omega;
                    a[(offset + 1, offset)] = -*omega;
                    a[(offset + 1, offset + 1)] = *sigma;
                    b[(offset, 0)] = 1.0;
                    c[(0, offset)] = 2.0 * r.re;
                    c[(0, offset + 1)] = 2.0 * r.im;
                    offset += 2;
                }
            }
        }
        StateSpace::new(a, b, c, Mat::from_diag(&[model.d()[(i, j)]]))
    }

    /// Series (cascade) connection realizing the product `self(s) · other(s)`
    /// for two SISO systems, in the block form of eq. (18) of the paper:
    ///
    /// ```text
    /// [ A₁   b₁c₂ | b₁d₂ ]
    /// [ 0    A₂   | b₂   ]
    /// [ c₁   d₁c₂ | d₁d₂ ]
    /// ```
    ///
    /// where subscript 1 is `self` (e.g. `S_ij`) and 2 is `other` (e.g. the
    /// sensitivity macromodel `Ξ̃`). The first `n₁` states are those of
    /// `self`, which is what the partitioned Gramian of eq. (19) relies on.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] if either system is not SISO.
    pub fn cascade_siso(&self, other: &StateSpace) -> Result<StateSpace> {
        if self.inputs() != 1 || self.outputs() != 1 || other.inputs() != 1 || other.outputs() != 1
        {
            return Err(StateSpaceError::InvalidModel(
                "cascade_siso requires two single-input single-output systems".into(),
            ));
        }
        let n1 = self.order();
        let n2 = other.order();
        let d1 = self.d[(0, 0)];
        let d2 = other.d[(0, 0)];
        let mut a = Mat::zeros(n1 + n2, n1 + n2);
        a.set_block(0, 0, &self.a);
        a.set_block(n1, n1, &other.a);
        // b1 * c2 block (n1 x n2)
        let b1c2 = self.b.matmul(&other.c)?;
        a.set_block(0, n1, &b1c2);
        let mut b = Mat::zeros(n1 + n2, 1);
        b.set_block(0, 0, &self.b.scaled(d2));
        b.set_block(n1, 0, &other.b);
        let mut c = Mat::zeros(1, n1 + n2);
        c.set_block(0, 0, &self.c);
        c.set_block(0, n1, &other.c.scaled(d1));
        let d = Mat::from_diag(&[d1 * d2]);
        StateSpace::new(a, b, c, d)
    }

    /// Time-domain simulation with the trapezoidal rule for a given input
    /// sequence `u[k]` sampled with period `dt`, starting from a zero state.
    /// Returns the output sequence (one row per output).
    ///
    /// Used for transient sanity checks of passive vs. non-passive models.
    ///
    /// # Errors
    ///
    /// Returns [`StateSpaceError::InvalidModel`] on input-size mismatch, or
    /// [`StateSpaceError::Linalg`] when the implicit-step matrix is singular
    /// (never the case for a stable system and reasonable `dt`).
    pub fn simulate(&self, inputs: &[Vec<f64>], dt: f64) -> Result<Vec<Vec<f64>>> {
        if inputs.len() != self.inputs() {
            return Err(StateSpaceError::InvalidModel(format!(
                "expected {} input sequences, got {}",
                self.inputs(),
                inputs.len()
            )));
        }
        let steps = inputs.first().map(|u| u.len()).unwrap_or(0);
        if inputs.iter().any(|u| u.len() != steps) {
            return Err(StateSpaceError::InvalidModel(
                "all input sequences must have the same length".into(),
            ));
        }
        if !(dt > 0.0) {
            return Err(StateSpaceError::InvalidModel("time step must be positive".into()));
        }
        let n = self.order();
        // Trapezoidal: (I - dt/2 A) x_{k+1} = (I + dt/2 A) x_k + dt/2 B (u_k + u_{k+1})
        let half = dt / 2.0;
        let m_minus = &Mat::identity(n) - &self.a.scaled(half);
        let m_plus = &Mat::identity(n) + &self.a.scaled(half);
        let lu = pim_linalg::lu::Lu::new(&m_minus)?;
        let mut x = vec![0.0; n];
        let mut out = vec![Vec::with_capacity(steps); self.outputs()];
        for k in 0..steps {
            let uk: Vec<f64> = inputs.iter().map(|u| u[k]).collect();
            // Output at the current state.
            let y = {
                let cx = self.c.matvec(&x)?;
                let du = self.d.matvec(&uk)?;
                cx.iter().zip(du).map(|(a, b)| a + b).collect::<Vec<f64>>()
            };
            for (o, y_o) in out.iter_mut().zip(&y) {
                o.push(*y_o);
            }
            if k + 1 == steps {
                break;
            }
            let uk1: Vec<f64> = inputs.iter().map(|u| u[k + 1]).collect();
            let u_sum: Vec<f64> = uk.iter().zip(&uk1).map(|(a, b)| a + b).collect();
            let rhs1 = m_plus.matvec(&x)?;
            let rhs2 = self.b.matvec(&u_sum)?;
            let rhs: Vec<f64> = rhs1.iter().zip(&rhs2).map(|(a, b)| a + half * b).collect();
            x = lu.solve_vec(&rhs)?;
        }
        Ok(out)
    }
}

/// Internal description of the real-block structure of a common-pole model.
enum PoleBlock {
    Real { pole: f64, index: usize },
    ComplexPair { sigma: f64, omega: f64, index: usize },
}

impl PoleBlock {
    fn size(&self) -> usize {
        match self {
            PoleBlock::Real { .. } => 1,
            PoleBlock::ComplexPair { .. } => 2,
        }
    }
}

/// Walks the pole list of a model, grouping conjugate pairs.
fn scalar_pole_blocks(model: &PoleResidueModel) -> Vec<PoleBlock> {
    let mut blocks = Vec::new();
    let poles = model.poles();
    let mut n = 0usize;
    while n < poles.len() {
        if model.is_real_pole(n) {
            blocks.push(PoleBlock::Real { pole: poles[n].re, index: n });
            n += 1;
        } else {
            blocks.push(PoleBlock::ComplexPair {
                sigma: poles[n].re,
                omega: poles[n].im,
                index: n,
            });
            n += 2;
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn two_port_model() -> PoleResidueModel {
        let p = c(-2e3, 5e3);
        let r_real = CMat::from_fn(2, 2, |i, j| c(10.0 + (i + j) as f64, 0.0));
        let r_cplx = CMat::from_fn(2, 2, |i, j| c(3.0 - i as f64, 2.0 + j as f64));
        PoleResidueModel::new(
            vec![c(-1e3, 0.0), p, p.conj()],
            vec![r_real, r_cplx.clone(), r_cplx.conj()],
            Mat::from_fn(2, 2, |i, j| if i == j { 0.5 } else { 0.1 }),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(StateSpace::new(
            Mat::zeros(2, 3),
            Mat::zeros(2, 1),
            Mat::zeros(1, 2),
            Mat::zeros(1, 1)
        )
        .is_err());
        assert!(StateSpace::new(
            Mat::identity(2),
            Mat::zeros(3, 1),
            Mat::zeros(1, 2),
            Mat::zeros(1, 1)
        )
        .is_err());
        assert!(StateSpace::new(
            Mat::identity(2),
            Mat::zeros(2, 1),
            Mat::zeros(1, 3),
            Mat::zeros(1, 1)
        )
        .is_err());
        assert!(StateSpace::new(
            Mat::identity(2),
            Mat::zeros(2, 1),
            Mat::zeros(1, 2),
            Mat::zeros(2, 2)
        )
        .is_err());
    }

    #[test]
    fn full_realization_matches_pole_residue_evaluation() {
        let model = two_port_model();
        let sys = StateSpace::from_pole_residue(&model).unwrap();
        assert_eq!(sys.order(), 3 * 2); // 3 scalar states x 2 ports
        assert_eq!(sys.inputs(), 2);
        assert_eq!(sys.outputs(), 2);
        for &omega in &[0.0, 1e2, 1e3, 7e3, 1e5] {
            let h_pr = model.evaluate_at_omega(omega).unwrap();
            let h_ss = sys.evaluate_at_omega(omega).unwrap();
            assert!(
                h_ss.max_abs_diff(&h_pr) < 1e-9 * h_pr.max_abs().max(1.0),
                "mismatch at omega={omega}"
            );
        }
        assert!(sys.is_stable().unwrap());
    }

    #[test]
    fn element_realization_matches_pole_residue_evaluation() {
        let model = two_port_model();
        for i in 0..2 {
            for j in 0..2 {
                let sys = StateSpace::from_pole_residue_element(&model, i, j).unwrap();
                assert_eq!(sys.order(), 3);
                for &omega in &[0.0, 3e3, 2e4] {
                    let h_pr = model.evaluate_at_omega(omega).unwrap()[(i, j)];
                    let h_ss = sys.evaluate_at_omega(omega).unwrap()[(0, 0)];
                    assert!((h_pr - h_ss).abs() < 1e-9 * h_pr.abs().max(1.0));
                }
            }
        }
        assert!(StateSpace::from_pole_residue_element(&model, 3, 0).is_err());
    }

    #[test]
    fn poles_of_realization_match_model_poles() {
        let model = two_port_model();
        let sys = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let mut poles = sys.poles().unwrap();
        poles.sort_by(|a, b| a.im.partial_cmp(&b.im).unwrap());
        assert!((poles[0] - c(-2e3, -5e3)).abs() < 1e-6);
        assert!((poles[1] - c(-1e3, 0.0)).abs() < 1e-6);
        assert!((poles[2] - c(-2e3, 5e3)).abs() < 1e-6);
    }

    #[test]
    fn cascade_realizes_transfer_product() {
        let model = two_port_model();
        let s1 = StateSpace::from_pole_residue_element(&model, 0, 1).unwrap();
        // A simple weighting system: W(s) = (s + 100) / (s + 1000) realized directly.
        let w = StateSpace::new(
            Mat::from_diag(&[-1000.0]),
            Mat::col_vector(&[1.0]),
            Mat::row_vector(&[100.0 - 1000.0]),
            Mat::from_diag(&[1.0]),
        )
        .unwrap();
        let prod = s1.cascade_siso(&w).unwrap();
        assert_eq!(prod.order(), s1.order() + w.order());
        for &omega in &[0.0, 50.0, 500.0, 5e3, 5e4] {
            let h1 = s1.evaluate_at_omega(omega).unwrap()[(0, 0)];
            let h2 = w.evaluate_at_omega(omega).unwrap()[(0, 0)];
            let hp = prod.evaluate_at_omega(omega).unwrap()[(0, 0)];
            assert!((hp - h1 * h2).abs() < 1e-9 * (h1 * h2).abs().max(1.0));
        }
        // Non-SISO systems are rejected.
        let full = StateSpace::from_pole_residue(&model).unwrap();
        assert!(full.cascade_siso(&w).is_err());
    }

    #[test]
    fn with_c_replaces_output_matrix() {
        let model = two_port_model();
        let sys = StateSpace::from_pole_residue(&model).unwrap();
        let zero_c = Mat::zeros(2, sys.order());
        let sys0 = sys.with_c(zero_c).unwrap();
        let h = sys0.evaluate_at_omega(1e3).unwrap();
        // Only D remains.
        assert!(h.max_abs_diff(&model.d().to_complex()) < 1e-12);
        assert!(sys.with_c(Mat::zeros(3, 1)).is_err());
    }

    #[test]
    fn trapezoidal_simulation_matches_dc_gain() {
        // Step response of a stable first-order low-pass settles at the DC gain.
        let sys = StateSpace::new(
            Mat::from_diag(&[-100.0]),
            Mat::col_vector(&[100.0]),
            Mat::row_vector(&[2.0]),
            Mat::from_diag(&[0.0]),
        )
        .unwrap();
        let steps = 2000;
        let u = vec![vec![1.0; steps]];
        let y = sys.simulate(&u, 1e-3).unwrap();
        assert_eq!(y.len(), 1);
        assert_eq!(y[0].len(), steps);
        let settled = y[0][steps - 1];
        assert!((settled - 2.0).abs() < 1e-6, "settled value {settled}");
        // Validation errors.
        assert!(sys.simulate(&[], 1e-3).is_err());
        assert!(sys.simulate(&u, -1.0).is_err());
        assert!(sys.simulate(&[vec![0.0; 3], vec![0.0; 4]], 1e-3).is_err());
    }
}
