//! Property-based tests on the realization invariants.

use pim_linalg::{CMat, Complex64, Mat};
use pim_statespace::{PoleResidueModel, StateSpace};
use proptest::prelude::*;

/// Strategy: a random stable 2-port pole-residue model with one real pole and
/// one complex pair.
fn random_model() -> impl Strategy<Value = PoleResidueModel> {
    (
        0.1f64..5.0,
        0.5f64..50.0,
        prop::collection::vec(-10.0f64..10.0, 8),
        prop::collection::vec(-1.0f64..1.0, 4),
    )
        .prop_map(|(sig, om, res, d)| {
            let p_real = Complex64::new(-sig * 10.0, 0.0);
            let p = Complex64::new(-sig, om);
            let r_real = CMat::from_fn(2, 2, |i, j| Complex64::from_real(res[i * 2 + j]));
            let r_c = CMat::from_fn(2, 2, |i, j| {
                Complex64::new(res[4 + i * 2 + j], res[(i * 2 + j + 2) % 4])
            });
            PoleResidueModel::new(
                vec![p_real, p, p.conj()],
                vec![r_real, r_c.clone(), r_c.conj()],
                Mat::from_fn(2, 2, |i, j| 0.3 * d[i * 2 + j]),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn full_realization_matches_model(model in random_model(), omega in 0.0f64..100.0) {
        let sys = StateSpace::from_pole_residue(&model).unwrap();
        let h_pr = model.evaluate_at_omega(omega).unwrap();
        let h_ss = sys.evaluate_at_omega(omega).unwrap();
        prop_assert!(h_ss.max_abs_diff(&h_pr) < 1e-8 * h_pr.max_abs().max(1.0));
    }

    #[test]
    fn element_realization_matches_model(model in random_model(), omega in 0.0f64..100.0) {
        for i in 0..2 {
            for j in 0..2 {
                let sys = StateSpace::from_pole_residue_element(&model, i, j).unwrap();
                let a = model.evaluate_at_omega(omega).unwrap()[(i, j)];
                let b = sys.evaluate_at_omega(omega).unwrap()[(0, 0)];
                prop_assert!((a - b).abs() < 1e-8 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn realization_poles_match_model_poles(model in random_model()) {
        let sys = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let mut got = sys.poles().unwrap();
        let mut want = model.poles().to_vec();
        let key = |p: &Complex64| (p.re, p.im);
        got.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        want.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((*g - *w).abs() < 1e-6 * w.abs().max(1.0));
        }
    }

    #[test]
    fn conjugate_symmetry_of_frequency_response(model in random_model(), omega in 0.1f64..100.0) {
        let h_pos = model.evaluate_at_omega(omega).unwrap();
        let h_neg = model.evaluate(Complex64::from_imag(-omega)).unwrap();
        prop_assert!(h_neg.max_abs_diff(&h_pos.conj()) < 1e-10 * h_pos.max_abs().max(1.0));
    }
}
