//! Loaded PDN impedance (eq. 2 of the paper) and the scalar target impedance.

use crate::{PdnError, Result, TerminationNetwork};
use pim_linalg::{CMat, Complex64};
use pim_rfdata::network::s_to_y;
use pim_rfdata::{NetworkData, ParameterKind};

/// The target impedance of a loaded PDN over frequency: the voltage observed
/// at an observation port for the nominal switching-current excitation.
#[derive(Debug, Clone)]
pub struct TargetImpedance {
    /// Frequencies in hertz (copied from the scattering data grid).
    pub freqs_hz: Vec<f64>,
    /// Complex target impedance `Z_PDN(jω_k)` in ohms.
    pub values: Vec<Complex64>,
    /// The observation port index.
    pub observation_port: usize,
}

impl TargetImpedance {
    /// Magnitudes `|Z_PDN|` in ohms.
    pub fn magnitudes(&self) -> Vec<f64> {
        self.values.iter().map(|z| z.abs()).collect()
    }

    /// The worst-case (largest) impedance magnitude and the frequency at
    /// which it occurs.
    pub fn peak(&self) -> (f64, f64) {
        let mut best = (0.0, 0.0);
        for (k, z) in self.values.iter().enumerate() {
            if z.abs() > best.1 {
                best = (self.freqs_hz[k], z.abs());
            }
        }
        best
    }
}

/// Computes the loaded impedance matrix of eq. (2) at a single frequency:
/// `Z = [R₀⁻¹(I − S)(I + S)⁻¹ + Y_L(jω)]⁻¹`.
///
/// # Errors
///
/// Returns [`PdnError::Linalg`] when either inversion is singular (an exactly
/// lossless short-circuited network at DC can trigger this).
pub fn loaded_impedance_matrix(
    scattering: &CMat,
    z_ref: f64,
    load_admittance: &CMat,
) -> Result<CMat> {
    if scattering.shape() != load_admittance.shape() {
        return Err(PdnError::InvalidInput(format!(
            "scattering matrix is {:?} but the load admittance is {:?}",
            scattering.shape(),
            load_admittance.shape()
        )));
    }
    let y_pdn = s_to_y(scattering, z_ref)?;
    let total = &y_pdn + load_admittance;
    Ok(total.inverse()?)
}

/// Computes the target impedance of a tabulated scattering data set under a
/// nominal termination network.
///
/// The observation port is where the voltage is read; the excitation is the
/// Norton current vector of the termination network (eq. 1), so the returned
/// quantity is `Z_PDN(jω_k) = Σ_j Z_kij · J_j / I_total` — for the paper's
/// normalized 1 A total excitation this is exactly the voltage at the
/// observation port.
///
/// # Errors
///
/// Returns [`PdnError::InvalidInput`] when the data is not in scattering
/// form, port counts mismatch, the observation port is out of range or no
/// port is excited.
pub fn target_impedance(
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
) -> Result<TargetImpedance> {
    if data.kind() != ParameterKind::Scattering {
        return Err(PdnError::InvalidInput(
            "target_impedance requires scattering parameters".into(),
        ));
    }
    if data.ports() != network.ports() {
        return Err(PdnError::InvalidInput(format!(
            "data has {} ports but the termination network has {}",
            data.ports(),
            network.ports()
        )));
    }
    if observation_port >= data.ports() {
        return Err(PdnError::InvalidInput(format!(
            "observation port {observation_port} out of range for {}-port data",
            data.ports()
        )));
    }
    let j = network.excitation_vector();
    let total_current: f64 = j.iter().map(|z| z.re).sum();
    if total_current <= 0.0 {
        return Err(PdnError::InvalidInput(
            "the termination network defines no excitation; call with_excitation first".into(),
        ));
    }

    // Every frequency is an independent load-and-solve; the sweep runs on
    // the global pool with results collected by frequency index, so the
    // output is bit-identical to the serial loop for every `PIM_THREADS`
    // (when several frequencies fail, the error of the lowest index wins).
    let omegas = data.grid().omegas();
    let values: Vec<Complex64> = pim_runtime::global()
        .par_map(&omegas, |k, &omega| -> Result<Complex64> {
            let y_l = network.load_admittance(omega)?;
            let z = loaded_impedance_matrix(data.matrix(k), data.z_ref(), &y_l)?;
            // Voltage at the observation port for the Norton current
            // excitation.
            let mut v = Complex64::ZERO;
            for (col, jj) in j.iter().enumerate() {
                if *jj != Complex64::ZERO {
                    v += z[(observation_port, col)] * *jj;
                }
            }
            Ok(v.scale(1.0 / total_current))
        })
        .into_iter()
        .collect::<Result<_>>()?;
    Ok(TargetImpedance { freqs_hz: data.grid().freqs_hz().to_vec(), values, observation_port })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Termination;
    use pim_rfdata::network::z_to_s;
    use pim_rfdata::FrequencyGrid;

    const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A 1-port PDN that is just a 0.1 Ω resistor to ground, observed under a
    /// die-block termination: the parallel combination is analytic.
    #[test]
    fn single_port_resistive_pdn_matches_analytic_parallel() {
        let grid = FrequencyGrid::log_space(1e3, 1e9, 40).unwrap();
        let r_pdn = 0.1;
        let mats: Vec<CMat> = grid
            .freqs_hz()
            .iter()
            .map(|_| z_to_s(&CMat::from_diag(&[c(r_pdn, 0.0)]), 50.0).unwrap())
            .collect();
        let data = NetworkData::new(grid.clone(), mats, ParameterKind::Scattering, 50.0).unwrap();
        let die = Termination::DieBlock { resistance: 0.05, capacitance: 100e-9 };
        let net =
            TerminationNetwork::new(vec![die]).unwrap().with_excitation(vec![0], 1.0).unwrap();
        let zt = target_impedance(&data, &net, 0).unwrap();
        for (k, &f) in grid.freqs_hz().iter().enumerate() {
            let omega = TWO_PI * f;
            let y_die = die.admittance(omega).unwrap();
            let expected = (Complex64::from_real(1.0 / r_pdn) + y_die).recip();
            assert!((zt.values[k] - expected).abs() < 1e-9 * expected.abs(), "mismatch at {f} Hz");
        }
        let (f_peak, z_peak) = zt.peak();
        assert!(z_peak <= 0.1 + 1e-12);
        assert!(f_peak >= 1e3);
        assert_eq!(zt.magnitudes().len(), 40);
    }

    /// A 2-port PDN: the transfer impedance from the excited port to the
    /// observation port through a known resistive divider.
    #[test]
    fn two_port_transfer_impedance() {
        // PDN: a T network of resistors; port 2 loaded with a 1 Ω resistor,
        // port 1 excited and observed.
        let grid = FrequencyGrid::from_hz(vec![1e6]).unwrap();
        // Z-parameters of a symmetric resistive network.
        let z = CMat::from_rows(&[&[c(0.5, 0.0), c(0.3, 0.0)], &[c(0.3, 0.0), c(0.5, 0.0)]]);
        let s = z_to_s(&z, 50.0).unwrap();
        let data = NetworkData::new(grid, vec![s], ParameterKind::Scattering, 50.0).unwrap();
        let net =
            TerminationNetwork::new(vec![Termination::Open, Termination::Resistor { ohms: 1.0 }])
                .unwrap()
                .with_excitation(vec![0], 1.0)
                .unwrap();
        let zt = target_impedance(&data, &net, 0).unwrap();
        // Analytic: Z_in with port 2 loaded by R_L:
        // Z = Z11 - Z12*Z21/(Z22 + R_L)
        let expected = 0.5 - 0.3 * 0.3 / (0.5 + 1.0);
        assert!((zt.values[0].re - expected).abs() < 1e-12);
        assert!(zt.values[0].im.abs() < 1e-12);
    }

    #[test]
    fn loaded_matrix_is_parallel_combination() {
        // S of a 25 Ω resistor, loaded with a 25 Ω resistor: 12.5 Ω.
        let s = z_to_s(&CMat::from_diag(&[c(25.0, 0.0)]), 50.0).unwrap();
        let y_l = CMat::from_diag(&[c(1.0 / 25.0, 0.0)]);
        let z = loaded_impedance_matrix(&s, 50.0, &y_l).unwrap();
        assert!((z[(0, 0)].re - 12.5).abs() < 1e-12);
        assert!(loaded_impedance_matrix(&s, 50.0, &CMat::zeros(2, 2)).is_err());
    }

    #[test]
    fn validation_errors() {
        let grid = FrequencyGrid::from_hz(vec![1.0]).unwrap();
        let s = CMat::zeros(1, 1);
        let data = NetworkData::new(grid.clone(), vec![s.clone()], ParameterKind::Scattering, 50.0)
            .unwrap();
        let net = TerminationNetwork::new(vec![Termination::Open]).unwrap();
        // No excitation declared.
        assert!(target_impedance(&data, &net, 0).is_err());
        let net = net.with_excitation(vec![0], 1.0).unwrap();
        // Observation port out of range.
        assert!(target_impedance(&data, &net, 3).is_err());
        // Port count mismatch.
        let net2 = TerminationNetwork::new(vec![Termination::Open, Termination::Open])
            .unwrap()
            .with_excitation(vec![0], 1.0)
            .unwrap();
        assert!(target_impedance(&data, &net2, 0).is_err());
        // Non-scattering data.
        let zdata = NetworkData::new(grid, vec![s], ParameterKind::Impedance, 50.0).unwrap();
        assert!(target_impedance(&zdata, &net, 0).is_err());
    }
}
