//! Minimal deterministic pseudo-random number generator for the Monte Carlo
//! sensitivity estimator.
//!
//! The build environment has no crates-registry access, so instead of the
//! `rand` crate the Monte Carlo path uses this self-contained SplitMix64
//! generator (Steele, Lea, Flood — "Fast splittable pseudorandom number
//! generators", OOPSLA 2014). Statistical quality far beyond what a mean
//! absolute deviation estimate over a few hundred trials can resolve, and the
//! fixed seed keeps every reported sensitivity series reproducible.

/// SplitMix64 pseudo-random number generator.
///
/// Twin of `proptest::TestRng` in `crates/proptest-shim` (which must stay
/// dependency-free) — keep the mixing constants in sync with that copy.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in the half-open interval `(0, 1]`: the 53 high bits of
    /// [`Self::next_u64`] scaled to `[0, 1)`, then reflected so the result is
    /// never zero (safe as the argument of `ln` in Box–Muller).
    pub fn next_open01(&mut self) -> f64 {
        1.0 - (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn open01_stays_in_range_and_is_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_open01();
            assert!(x > 0.0 && x <= 1.0, "sample {x} outside (0, 1]");
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
