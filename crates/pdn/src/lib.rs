//! # pim-pdn
//!
//! Power Distribution Network (PDN) termination modelling, loaded target
//! impedance computation and first-order sensitivity analysis for the
//! DATE 2014 sensitivity-weighted passivity enforcement reproduction.
//!
//! The crate covers the "problem statement" half of the paper (Sec. II):
//!
//! * [`terminations`] — the nominal termination network: decoupling
//!   capacitors with ESR/ESL, VRM, series-RC die blocks, open and short
//!   ports, assembled into the load admittance `Y_L(jω)` of the generalized
//!   Norton equivalent (eq. 1);
//! * [`impedance`] — the loaded PDN impedance matrix of eq. (2) and the
//!   scalar target impedance `Z_PDN` observed at a die port;
//! * [`sensitivity`] — the first-order sensitivity `Ξ_k` of the target
//!   impedance to perturbations of the scattering samples (eq. 5), computed
//!   both in closed form and by Monte Carlo perturbation, plus the weight
//!   post-processing used to feed it into Vector Fitting (eq. 6) and into the
//!   weighted passivity enforcement.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod impedance;
pub mod rng;
pub mod sensitivity;
pub mod terminations;

pub use impedance::{loaded_impedance_matrix, target_impedance, TargetImpedance};
pub use sensitivity::{
    analytic_sensitivity, monte_carlo_sensitivity, monte_carlo_sensitivity_with, SensitivityOptions,
};
pub use terminations::{Termination, TerminationNetwork};

use std::error::Error;
use std::fmt;

/// Errors produced by the PDN analysis tooling.
#[derive(Debug)]
pub enum PdnError {
    /// The underlying linear algebra kernel failed.
    Linalg(pim_linalg::LinalgError),
    /// Frequency-data handling failed.
    RfData(pim_rfdata::RfDataError),
    /// The termination scheme or the analysis request is invalid.
    InvalidInput(String),
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PdnError::RfData(e) => write!(f, "data handling failure: {e}"),
            PdnError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for PdnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PdnError::Linalg(e) => Some(e),
            PdnError::RfData(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for PdnError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        PdnError::Linalg(e)
    }
}

impl From<pim_rfdata::RfDataError> for PdnError {
    fn from(e: pim_rfdata::RfDataError) -> Self {
        PdnError::RfData(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, PdnError>;
