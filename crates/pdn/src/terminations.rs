//! Nominal termination networks for PDN ports.
//!
//! The paper's test case (Sec. IV) terminates the PDN ports with a mix of
//! decoupling capacitors (with their parasitic ESR and ESL), a short-circuit
//! VRM connection, series-RC models for the active die blocks, and open
//! ports; the die ports additionally carry identical current sources summing
//! to 1 A. This module builds the per-port admittances, the full load
//! admittance matrix `Y_L(jω)` of the generalized Norton equivalent (eq. 1)
//! and the excitation vector `J`.

use crate::{PdnError, Result};
use pim_linalg::{CMat, Complex64};

/// A single-port termination element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// No connection: zero admittance.
    Open,
    /// Ideal short to the reference node (infinite admittance). Represented
    /// internally by a very large conductance so the Norton formulation stays
    /// finite; use [`Termination::Resistor`] with a small value for a more
    /// physical VRM model.
    Short,
    /// A resistor to ground, in ohms.
    Resistor {
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// A series R–L branch to ground (typical VRM output model).
    SeriesRl {
        /// Series resistance in ohms.
        resistance: f64,
        /// Series inductance in henry.
        inductance: f64,
    },
    /// A decoupling capacitor with its parasitic equivalent series resistance
    /// and inductance (ESR, ESL).
    Decap {
        /// Capacitance in farad.
        capacitance: f64,
        /// Equivalent series resistance in ohms.
        esr: f64,
        /// Equivalent series inductance in henry.
        esl: f64,
    },
    /// A series R–C branch to ground, the paper's model for an active die
    /// power-supply block.
    DieBlock {
        /// Series resistance in ohms.
        resistance: f64,
        /// Capacitance in farad.
        capacitance: f64,
    },
}

/// Conductance used to represent an ideal short in the admittance domain.
const SHORT_CONDUCTANCE: f64 = 1e9;

impl Termination {
    /// Admittance of the termination at angular frequency `ω` (rad/s).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidInput`] for non-physical element values
    /// (non-positive resistance of a resistor, negative parasitics, ...).
    pub fn admittance(&self, omega: f64) -> Result<Complex64> {
        let jw = Complex64::from_imag(omega);
        match *self {
            Termination::Open => Ok(Complex64::ZERO),
            Termination::Short => Ok(Complex64::from_real(SHORT_CONDUCTANCE)),
            Termination::Resistor { ohms } => {
                if !(ohms > 0.0) {
                    return Err(PdnError::InvalidInput(format!(
                        "resistor termination must have positive resistance, got {ohms}"
                    )));
                }
                Ok(Complex64::from_real(1.0 / ohms))
            }
            Termination::SeriesRl { resistance, inductance } => {
                // audit:allow(float-eq): a bitwise-zero R and L is the degenerate short
                let zero_rl = resistance == 0.0 && inductance == 0.0;
                if resistance < 0.0 || inductance < 0.0 || zero_rl {
                    return Err(PdnError::InvalidInput(
                        "series RL termination requires non-negative R and L, not both zero".into(),
                    ));
                }
                let z = Complex64::from_real(resistance) + jw * inductance;
                Ok(z.recip())
            }
            Termination::Decap { capacitance, esr, esl } => {
                if !(capacitance > 0.0) || esr < 0.0 || esl < 0.0 {
                    return Err(PdnError::InvalidInput(
                        "decap termination requires positive C and non-negative ESR/ESL".into(),
                    ));
                }
                // audit:allow(float-eq): DC fast path; omega is literal 0.0 at the DC sample
                if omega == 0.0 {
                    // A series capacitor blocks DC entirely.
                    return Ok(Complex64::ZERO);
                }
                let z = Complex64::from_real(esr) + jw * esl + (jw * capacitance).recip();
                Ok(z.recip())
            }
            Termination::DieBlock { resistance, capacitance } => {
                if !(capacitance > 0.0) || resistance < 0.0 {
                    return Err(PdnError::InvalidInput(
                        "die block termination requires positive C and non-negative R".into(),
                    ));
                }
                // audit:allow(float-eq): DC fast path; omega is literal 0.0 at the DC sample
                if omega == 0.0 {
                    return Ok(Complex64::ZERO);
                }
                let z = Complex64::from_real(resistance) + (jw * capacitance).recip();
                Ok(z.recip())
            }
        }
    }
}

/// The full nominal termination scheme of a `P`-port PDN: one termination per
/// port plus the set of excited (die) ports.
///
/// ```
/// use pim_pdn::{Termination, TerminationNetwork};
///
/// # fn main() -> Result<(), pim_pdn::PdnError> {
/// let net = TerminationNetwork::new(vec![
///     Termination::DieBlock { resistance: 0.1, capacitance: 1e-9 },
///     Termination::Decap { capacitance: 1e-6, esr: 5e-3, esl: 5e-10 },
///     Termination::SeriesRl { resistance: 1e-3, inductance: 1e-9 },
/// ])?
/// .with_excitation(vec![0], 1.0)?;
/// let y = net.load_admittance(2.0 * std::f64::consts::PI * 1e6)?;
/// assert_eq!(y.rows(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TerminationNetwork {
    terminations: Vec<Termination>,
    excited_ports: Vec<usize>,
    total_current: f64,
}

impl TerminationNetwork {
    /// Builds a termination network from one termination per port. No port is
    /// excited until [`TerminationNetwork::with_excitation`] is called.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidInput`] for an empty list.
    pub fn new(terminations: Vec<Termination>) -> Result<Self> {
        if terminations.is_empty() {
            return Err(PdnError::InvalidInput("at least one termination is required".into()));
        }
        Ok(TerminationNetwork { terminations, excited_ports: Vec::new(), total_current: 0.0 })
    }

    /// Declares the excited (die) ports: a total switching current
    /// `total_current` is split equally among them (the paper uses 1 A over
    /// the `P_a` active-device ports).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidInput`] for out-of-range ports, duplicates
    /// or a non-positive current.
    pub fn with_excitation(mut self, ports: Vec<usize>, total_current: f64) -> Result<Self> {
        if ports.is_empty() || !(total_current > 0.0) {
            return Err(PdnError::InvalidInput(
                "excitation requires at least one port and a positive total current".into(),
            ));
        }
        let p = self.terminations.len();
        let mut seen = vec![false; p];
        for &port in &ports {
            if port >= p {
                return Err(PdnError::InvalidInput(format!(
                    "excited port {port} out of range for a {p}-port network"
                )));
            }
            if seen[port] {
                return Err(PdnError::InvalidInput(format!("port {port} excited twice")));
            }
            seen[port] = true;
        }
        self.excited_ports = ports;
        self.total_current = total_current;
        Ok(self)
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.terminations.len()
    }

    /// The per-port terminations.
    pub fn terminations(&self) -> &[Termination] {
        &self.terminations
    }

    /// The excited ports (empty when no excitation has been declared).
    pub fn excited_ports(&self) -> &[usize] {
        &self.excited_ports
    }

    /// The diagonal load admittance matrix `Y_L(jω)` of eq. (1).
    ///
    /// # Errors
    ///
    /// Propagates invalid termination parameters.
    pub fn load_admittance(&self, omega: f64) -> Result<CMat> {
        let p = self.ports();
        let mut y = CMat::zeros(p, p);
        for (k, t) in self.terminations.iter().enumerate() {
            y[(k, k)] = t.admittance(omega)?;
        }
        Ok(y)
    }

    /// The Norton excitation vector `J`: `total_current / n_excited` at every
    /// excited port, zero elsewhere.
    pub fn excitation_vector(&self) -> Vec<Complex64> {
        let p = self.ports();
        let mut j = vec![Complex64::ZERO; p];
        if self.excited_ports.is_empty() {
            return j;
        }
        let per_port = self.total_current / self.excited_ports.len() as f64;
        for &port in &self.excited_ports {
            j[port] = Complex64::from_real(per_port);
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

    #[test]
    fn element_admittances_have_expected_limits() {
        // Open: zero at every frequency.
        assert_eq!(Termination::Open.admittance(1e6).unwrap(), Complex64::ZERO);
        // Short: huge conductance.
        assert!(Termination::Short.admittance(0.0).unwrap().re > 1e8);
        // Resistor.
        let y = Termination::Resistor { ohms: 50.0 }.admittance(123.0).unwrap();
        assert!((y.re - 0.02).abs() < 1e-15);
        assert_eq!(y.im.to_bits(), 0.0f64.to_bits());
        // Decap blocks DC and looks inductive far above resonance.
        let decap = Termination::Decap { capacitance: 1e-6, esr: 10e-3, esl: 1e-9 };
        assert_eq!(decap.admittance(0.0).unwrap(), Complex64::ZERO);
        let f_res = 1.0 / (TWO_PI * (1e-6_f64 * 1e-9).sqrt());
        let y_res = decap.admittance(TWO_PI * f_res).unwrap();
        // At series resonance the impedance is just the ESR.
        assert!((y_res.recip().re - 10e-3).abs() < 1e-6);
        let y_hi = decap.admittance(TWO_PI * 1e9).unwrap();
        assert!(y_hi.recip().im > 0.0, "inductive above resonance");
        // Die block: capacitive, blocks DC.
        let die = Termination::DieBlock { resistance: 0.1, capacitance: 10e-9 };
        assert_eq!(die.admittance(0.0).unwrap(), Complex64::ZERO);
        assert!(die.admittance(TWO_PI * 1e3).unwrap().recip().im < 0.0);
        // VRM series RL: resistive at DC, inductive at high frequency.
        let vrm = Termination::SeriesRl { resistance: 1e-3, inductance: 10e-9 };
        assert!((vrm.admittance(0.0).unwrap().re - 1000.0).abs() < 1e-9);
        assert!(vrm.admittance(TWO_PI * 1e9).unwrap().recip().im > 0.0);
    }

    #[test]
    fn invalid_elements_are_rejected() {
        assert!(Termination::Resistor { ohms: 0.0 }.admittance(1.0).is_err());
        assert!(Termination::Resistor { ohms: -5.0 }.admittance(1.0).is_err());
        assert!(Termination::Decap { capacitance: 0.0, esr: 0.0, esl: 0.0 }
            .admittance(1.0)
            .is_err());
        assert!(Termination::Decap { capacitance: 1e-6, esr: -1.0, esl: 0.0 }
            .admittance(1.0)
            .is_err());
        assert!(Termination::DieBlock { resistance: -0.1, capacitance: 1e-9 }
            .admittance(1.0)
            .is_err());
        assert!(Termination::SeriesRl { resistance: 0.0, inductance: 0.0 }
            .admittance(1.0)
            .is_err());
    }

    #[test]
    fn network_assembly_and_excitation() {
        let net = TerminationNetwork::new(vec![
            Termination::DieBlock { resistance: 0.1, capacitance: 1e-9 },
            Termination::DieBlock { resistance: 0.1, capacitance: 1e-9 },
            Termination::Decap { capacitance: 1e-6, esr: 5e-3, esl: 5e-10 },
            Termination::Open,
        ])
        .unwrap()
        .with_excitation(vec![0, 1], 1.0)
        .unwrap();
        assert_eq!(net.ports(), 4);
        assert_eq!(net.excited_ports(), &[0, 1]);
        let y = net.load_admittance(TWO_PI * 1e6).unwrap();
        assert_eq!(y.shape(), (4, 4));
        assert_eq!(y[(3, 3)], Complex64::ZERO);
        assert_eq!(y[(0, 1)], Complex64::ZERO);
        let j = net.excitation_vector();
        assert!((j[0].re - 0.5).abs() < 1e-15 && (j[1].re - 0.5).abs() < 1e-15);
        assert_eq!(j[2], Complex64::ZERO);
    }

    #[test]
    fn excitation_validation() {
        let base = TerminationNetwork::new(vec![Termination::Open, Termination::Open]).unwrap();
        assert!(base.clone().with_excitation(vec![], 1.0).is_err());
        assert!(base.clone().with_excitation(vec![5], 1.0).is_err());
        assert!(base.clone().with_excitation(vec![0, 0], 1.0).is_err());
        assert!(base.clone().with_excitation(vec![0], 0.0).is_err());
        assert!(TerminationNetwork::new(vec![]).is_err());
        // Without excitation the vector is all zero.
        assert!(base.excitation_vector().iter().all(|z| *z == Complex64::ZERO));
    }
}
