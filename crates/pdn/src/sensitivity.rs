//! First-order sensitivity of the PDN target impedance to perturbations of
//! the scattering samples (eq. 5 of the paper).
//!
//! The loaded impedance `Z = [R₀⁻¹(I−S)(I+S)⁻¹ + Y_L]⁻¹` is a nonlinear map
//! of the scattering matrix; small fitting errors `δS` are amplified into
//! target-impedance errors by its Jacobian. Differentiating the map gives the
//! closed form
//!
//! ```text
//! ∂Z_PDN/∂S_ab = (2/R₀) · [Z(I+S)⁻¹]_{ia} · [(I+S)⁻¹Z]_{bj}
//! ```
//!
//! for the observation element `(i, j)`, so a natural scalar sensitivity is
//! the root-sum-square of the Jacobian over all matrix entries — this is the
//! quantity `Ξ_k` that the paper extracts statistically through Gaussian
//! perturbations and uses as a frequency-dependent weight. A Monte Carlo
//! estimator matching the paper's definition is provided for validation.

use crate::rng::SplitMix64;
use crate::{PdnError, Result, TerminationNetwork};
use pim_linalg::{CMat, Complex64};
use pim_rfdata::{NetworkData, ParameterKind};

/// Options for the Monte Carlo sensitivity estimator.
#[derive(Debug, Clone)]
pub struct SensitivityOptions {
    /// Standard deviation of the Gaussian perturbations applied to the real
    /// and imaginary parts of every scattering entry.
    pub sigma: f64,
    /// Number of Monte Carlo trials per frequency.
    pub trials: usize,
    /// RNG seed (the estimator is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for SensitivityOptions {
    fn default() -> Self {
        SensitivityOptions { sigma: 1e-4, trials: 64, seed: 0x5EED_CAFE }
    }
}

/// Computes the analytic first-order sensitivity `Ξ_k` of the target
/// impedance (observed at `observation_port`, excited per the termination
/// network) with respect to independent perturbations of all scattering
/// entries, at every frequency of the data set.
///
/// The returned values have the meaning of eq. (5): the expected
/// target-impedance deviation per unit standard deviation of the scattering
/// perturbations, up to the constant factor that the paper absorbs into the
/// weights (only the frequency dependence matters for weighting).
///
/// # Errors
///
/// Mirrors the validation of [`crate::target_impedance`].
pub fn analytic_sensitivity(
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
) -> Result<Vec<f64>> {
    validate(data, network, observation_port)?;
    let j = network.excitation_vector();
    let total_current: f64 = j.iter().map(|z| z.re).sum();
    if total_current <= 0.0 {
        return Err(PdnError::InvalidInput(
            "the termination network defines no excitation; call with_excitation first".into(),
        ));
    }
    let ports = data.ports();
    let omegas = data.grid().omegas();
    let r0 = data.z_ref();
    let mut out = Vec::with_capacity(data.len());
    for (k, &omega) in omegas.iter().enumerate() {
        let s = data.matrix(k);
        let y_l = network.load_admittance(omega)?;
        let i_plus_s_inv = (&CMat::identity(ports) + s).inverse()?;
        // (I−S)(I+S)⁻¹ = (I+S)⁻¹(I−S): both factors are polynomials in S.
        let y_pdn = i_plus_s_inv.matmul(&(&CMat::identity(ports) - s))?.scaled_real(1.0 / r0);
        let z = (&y_pdn + &y_l).inverse()?;
        // Left and right factors of the Jacobian.
        let left = z.matmul(&i_plus_s_inv)?; // Z (I+S)^{-1}
        let right = i_plus_s_inv.matmul(&z)?; // (I+S)^{-1} Z

        // The observation is a weighted combination of matrix elements
        // (i, col) with weights J_col / I_total; accumulate the Jacobian of
        // that combination.
        let mut sum_sq = 0.0;
        for a in 0..ports {
            for b in 0..ports {
                let mut dz = Complex64::ZERO;
                for (col, jj) in j.iter().enumerate() {
                    if *jj != Complex64::ZERO {
                        dz += left[(observation_port, a)] * right[(b, col)] * *jj;
                    }
                }
                let dz = dz.scale(2.0 / (r0 * total_current));
                sum_sq += dz.abs_sq();
            }
        }
        out.push(sum_sq.sqrt());
    }
    Ok(out)
}

/// Monte Carlo estimate of the sensitivity, matching the statistical
/// definition of eq. (5): every scattering entry is perturbed by independent
/// zero-mean Gaussian noise of standard deviation `options.sigma` (applied to
/// real and imaginary parts), the target impedance is recomputed, and the
/// mean absolute deviation normalized by `sigma` is reported per frequency.
///
/// Every frequency draws from its **own** SplitMix64 stream, whose seed is
/// derived deterministically from `options.seed` and the frequency index.
/// That makes the per-frequency estimates independent of how the frequency
/// grid is chunked across threads: the estimator runs its Gaussian draws in
/// parallel on the [`pim_runtime::global`] pool, and the result is
/// bit-identical to the serial evaluation for every `PIM_THREADS`.
///
/// # Errors
///
/// Mirrors the validation of [`crate::target_impedance`]; singular loaded
/// impedances inside a trial are skipped.
pub fn monte_carlo_sensitivity(
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
    options: &SensitivityOptions,
) -> Result<Vec<f64>> {
    monte_carlo_sensitivity_with(pim_runtime::global(), data, network, observation_port, options)
}

/// Frequencies per parallel work unit of the Monte Carlo estimator. Fixed —
/// never derived from the thread count — so the chunk decomposition (and
/// with it the accumulation order inside each chunk) is identical on every
/// machine.
const MC_CHUNK: usize = 4;

/// [`monte_carlo_sensitivity`] on an explicit [`pim_runtime::ThreadPool`]
/// (the determinism test suites compare pools of different sizes bit for
/// bit).
///
/// # Errors
///
/// See [`monte_carlo_sensitivity`]; when several frequencies fail, the error
/// of the lowest frequency index is reported regardless of scheduling order.
pub fn monte_carlo_sensitivity_with(
    pool: &pim_runtime::ThreadPool,
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
    options: &SensitivityOptions,
) -> Result<Vec<f64>> {
    validate(data, network, observation_port)?;
    if !(options.sigma > 0.0) || options.trials == 0 {
        return Err(PdnError::InvalidInput(
            "Monte Carlo sensitivity requires sigma > 0 and at least one trial".into(),
        ));
    }
    let nominal = crate::target_impedance(data, network, observation_port)?;
    let j = network.excitation_vector();
    let total_current: f64 = j.iter().map(|z| z.re).sum();
    let ports = data.ports();
    let omegas = data.grid().omegas();
    // One independent stream per frequency, seeded from a master stream in
    // frequency order.
    let seeds: Vec<u64> = {
        let mut master = SplitMix64::seed_from_u64(options.seed);
        (0..data.len()).map(|_| master.next_u64()).collect()
    };

    let per_frequency = |k: usize| -> Result<f64> {
        let y_l = network.load_admittance(omegas[k])?;
        let mut rng = SplitMix64::seed_from_u64(seeds[k]);
        let mut acc = 0.0;
        let mut used = 0usize;
        for _ in 0..options.trials {
            let mut s = data.matrix(k).clone();
            for a in 0..ports {
                for b in 0..ports {
                    let dre: f64 = gaussian(&mut rng, options.sigma);
                    let dim: f64 = gaussian(&mut rng, options.sigma);
                    s[(a, b)] += Complex64::new(dre, dim);
                }
            }
            let z = match crate::loaded_impedance_matrix(&s, data.z_ref(), &y_l) {
                Ok(z) => z,
                Err(_) => continue,
            };
            let mut v = Complex64::ZERO;
            for (col, jj) in j.iter().enumerate() {
                if *jj != Complex64::ZERO {
                    v += z[(observation_port, col)] * *jj;
                }
            }
            let perturbed = v.scale(1.0 / total_current);
            acc += (perturbed - nominal.values[k]).abs();
            used += 1;
        }
        if used == 0 {
            return Err(PdnError::InvalidInput(format!(
                "all Monte Carlo trials failed at frequency index {k}"
            )));
        }
        Ok(acc / (used as f64 * options.sigma))
    };

    // Per-chunk accumulators (the chunk's frequency estimates in order),
    // flattened back in fixed chunk order; the frequency index is the chunk
    // start index plus the offset within the chunk.
    let chunks: Result<Vec<Vec<f64>>> = pool
        .par_chunks(&seeds, MC_CHUNK, |start, part| {
            (start..start + part.len()).map(&per_frequency).collect::<Result<Vec<f64>>>()
        })
        .into_iter()
        .collect();
    Ok(chunks?.into_iter().flatten().collect())
}

/// Post-processes raw sensitivity samples into Vector Fitting weights:
/// normalizes to a unit maximum and applies a relative floor so that no
/// frequency is weighted exactly zero.
///
/// # Errors
///
/// Returns [`PdnError::InvalidInput`] for empty input, non-finite entries or
/// an all-zero profile.
pub fn sensitivity_to_weights(sensitivity: &[f64], floor: f64) -> Result<Vec<f64>> {
    if sensitivity.is_empty() {
        return Err(PdnError::InvalidInput("sensitivity profile is empty".into()));
    }
    if sensitivity.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(PdnError::InvalidInput(
            "sensitivity profile must be finite and non-negative".into(),
        ));
    }
    let max = sensitivity.iter().fold(0.0_f64, |a, &b| a.max(b));
    // audit:allow(float-eq): an all-zero sensitivity vector cannot be normalised
    if max == 0.0 {
        return Err(PdnError::InvalidInput("sensitivity profile is identically zero".into()));
    }
    let floor = floor.clamp(0.0, 1.0);
    Ok(sensitivity.iter().map(|&x| (x / max).max(floor)).collect())
}

fn validate(
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
) -> Result<()> {
    if data.kind() != ParameterKind::Scattering {
        return Err(PdnError::InvalidInput("sensitivity requires scattering parameters".into()));
    }
    if data.ports() != network.ports() {
        return Err(PdnError::InvalidInput(format!(
            "data has {} ports but the termination network has {}",
            data.ports(),
            network.ports()
        )));
    }
    if observation_port >= data.ports() {
        return Err(PdnError::InvalidInput(format!(
            "observation port {observation_port} out of range for {}-port data",
            data.ports()
        )));
    }
    Ok(())
}

/// Standard normal sample via Box–Muller on the self-contained [`SplitMix64`]
/// stream (`u1` is drawn from `(0, 1]`, so `ln(u1)` is always finite).
fn gaussian(rng: &mut SplitMix64, sigma: f64) -> f64 {
    let u1 = rng.next_open01();
    let u2 = rng.next_open01();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Termination;
    use pim_rfdata::network::z_to_s;
    use pim_rfdata::FrequencyGrid;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A 1-port resistive PDN loaded by a die block; the sensitivity is
    /// analytically tractable.
    fn resistive_case() -> (NetworkData, TerminationNetwork) {
        let grid = FrequencyGrid::log_space(1e4, 1e8, 25).unwrap();
        let mats: Vec<CMat> = grid
            .freqs_hz()
            .iter()
            .map(|_| z_to_s(&CMat::from_diag(&[c(0.2, 0.0)]), 50.0).unwrap())
            .collect();
        let data = NetworkData::new(grid, mats, ParameterKind::Scattering, 50.0).unwrap();
        let net = TerminationNetwork::new(vec![Termination::DieBlock {
            resistance: 0.05,
            capacitance: 47e-9,
        }])
        .unwrap()
        .with_excitation(vec![0], 1.0)
        .unwrap();
        (data, net)
    }

    #[test]
    fn analytic_sensitivity_matches_finite_differences() {
        let (data, net) = resistive_case();
        let xi = analytic_sensitivity(&data, &net, 0).unwrap();
        assert_eq!(xi.len(), data.len());
        // Finite-difference check at a few frequencies: perturb one entry of
        // S (real part), recompute the target impedance and compare the
        // magnitude of the change against the Jacobian-based prediction.
        let eps = 1e-7;
        for &k in &[0usize, 10, 24] {
            let nominal = crate::target_impedance(&data, &net, 0).unwrap().values[k];
            let perturbed_data = data
                .map_matrices(|idx, m| {
                    let mut m2 = m.clone();
                    if idx == k {
                        m2[(0, 0)] += Complex64::from_real(eps);
                    }
                    Ok(m2)
                })
                .unwrap();
            let perturbed = crate::target_impedance(&perturbed_data, &net, 0).unwrap().values[k];
            let fd = (perturbed - nominal).abs() / eps;
            // For a 1-port there is a single Jacobian entry, so Ξ equals its
            // magnitude (the perturbation direction only changes the phase).
            assert!(
                (fd - xi[k]).abs() < 1e-3 * xi[k].max(1e-12),
                "finite difference {fd} vs analytic {} at index {k}",
                xi[k]
            );
        }
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_up_to_statistical_factor() {
        let (data, net) = resistive_case();
        let xi = analytic_sensitivity(&data, &net, 0).unwrap();
        let mc = monte_carlo_sensitivity(
            &data,
            &net,
            0,
            &SensitivityOptions { sigma: 1e-5, trials: 200, seed: 7 },
        )
        .unwrap();
        assert_eq!(mc.len(), xi.len());
        // The Monte Carlo estimator reports E{|ΔZ|}/σ for 2·P² independent
        // Gaussian components; it is proportional to the analytic
        // root-sum-square sensitivity with a distribution-dependent constant
        // close to one. Verify proportionality across frequency.
        let ratios: Vec<f64> = mc.iter().zip(&xi).map(|(m, a)| m / a).collect();
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 0.5 && mean < 2.0, "unexpected mean ratio {mean}");
        for r in &ratios {
            assert!((r - mean).abs() < 0.35 * mean, "ratio {r} deviates from mean {mean}");
        }
    }

    #[test]
    fn sensitivity_rises_where_the_loading_feedback_is_strong() {
        // With a near-short VRM-like load, |S_loaded| errors are strongly
        // amplified at low frequency where the PDN impedance is tiny compared
        // to 50 Ω. The sensitivity profile must therefore decrease with
        // frequency once the decap takes over.
        let grid = FrequencyGrid::log_space(1e3, 1e9, 40).unwrap();
        let mats: Vec<CMat> = grid
            .freqs_hz()
            .iter()
            .map(|&f| {
                let omega = 2.0 * std::f64::consts::PI * f;
                // PDN looks like 1 mΩ + 100 nH in series: a near-short at
                // low frequency (strong feedback from the termination, hence
                // strong error amplification) that rises above the 50 Ω
                // reference level at the top of the band.
                let z = Complex64::from_real(1e-3) + Complex64::from_imag(omega * 100e-9);
                z_to_s(&CMat::from_diag(&[z]), 50.0).unwrap()
            })
            .collect();
        let data = NetworkData::new(grid, mats, ParameterKind::Scattering, 50.0).unwrap();
        let net = TerminationNetwork::new(vec![Termination::DieBlock {
            resistance: 0.1,
            capacitance: 1e-9,
        }])
        .unwrap()
        .with_excitation(vec![0], 1.0)
        .unwrap();
        let xi = analytic_sensitivity(&data, &net, 0).unwrap();
        // Low-frequency sensitivity must exceed the high-frequency one by a
        // large factor (this is the phenomenon motivating the paper).
        assert!(xi[0] > 10.0 * xi[xi.len() - 1], "xi[0]={} xi[last]={}", xi[0], xi[xi.len() - 1]);
    }

    #[test]
    fn weights_normalization_and_floor() {
        let w = sensitivity_to_weights(&[4.0, 2.0, 0.0], 0.1).unwrap();
        assert_eq!((w[0]).to_bits(), 1.0f64.to_bits());
        assert_eq!((w[1]).to_bits(), 0.5f64.to_bits());
        assert_eq!((w[2]).to_bits(), 0.1f64.to_bits());
        assert!(sensitivity_to_weights(&[], 0.0).is_err());
        assert!(sensitivity_to_weights(&[0.0, 0.0], 0.0).is_err());
        assert!(sensitivity_to_weights(&[1.0, f64::NAN], 0.0).is_err());
        assert!(sensitivity_to_weights(&[1.0, -2.0], 0.0).is_err());
    }

    #[test]
    fn monte_carlo_is_bit_identical_across_thread_counts() {
        let (data, net) = resistive_case();
        let opts = SensitivityOptions { sigma: 1e-5, trials: 32, seed: 11 };
        let serial =
            monte_carlo_sensitivity_with(&pim_runtime::ThreadPool::new(1), &data, &net, 0, &opts)
                .unwrap();
        for threads in [2usize, 8] {
            let pool = pim_runtime::ThreadPool::new(threads);
            let parallel = monte_carlo_sensitivity_with(&pool, &data, &net, 0, &opts).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (k, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} index={k}: {a} vs {b}");
            }
        }
        // The global-pool entry point draws from the same per-frequency
        // streams.
        let global = monte_carlo_sensitivity(&data, &net, 0, &opts).unwrap();
        for (a, b) in serial.iter().zip(&global) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn estimator_validation() {
        let (data, net) = resistive_case();
        assert!(monte_carlo_sensitivity(
            &data,
            &net,
            0,
            &SensitivityOptions { sigma: 0.0, trials: 10, seed: 1 }
        )
        .is_err());
        assert!(monte_carlo_sensitivity(
            &data,
            &net,
            0,
            &SensitivityOptions { sigma: 1e-4, trials: 0, seed: 1 }
        )
        .is_err());
        assert!(analytic_sensitivity(&data, &net, 5).is_err());
        let bare = TerminationNetwork::new(vec![Termination::Open]).unwrap();
        assert!(analytic_sensitivity(&data, &bare, 0).is_err());
    }
}
