//! Property-based tests for the passivity kernels: the block-structured
//! Hamiltonian assembly must agree with the naive textbook formula.

use pim_linalg::lu::inverse;
use pim_linalg::{CMat, Complex64, Mat};
use pim_passivity::check::{hamiltonian_matrix, singular_value_sweep_with};
use pim_passivity::qp::{solve_block_qp_factored, BlockQpFactors, QpOptions};
use pim_runtime::ThreadPool;
use pim_statespace::{PoleResidueModel, StateSpace};
use proptest::prelude::*;

/// Naive reference assembly of the Hamiltonian, computing all four blocks
/// from the textbook formulas (including the redundant `A22` product chain
/// the optimized kernel replaces with `−A11ᵀ`).
fn naive_hamiltonian(sys: &StateSpace) -> Mat {
    let p = sys.outputs();
    let n = sys.order();
    let (a, b, c, d) = (sys.a(), sys.b(), sys.c(), sys.d());
    let r = &d.transpose().matmul(d).unwrap() - &Mat::identity(p);
    let s = &d.matmul(&d.transpose()).unwrap() - &Mat::identity(p);
    let r_inv = inverse(&r).unwrap();
    let s_inv = inverse(&s).unwrap();
    let br = b.matmul(&r_inv).unwrap();
    let a11 = a - &br.matmul(&d.transpose()).unwrap().matmul(c).unwrap();
    let a12 = br.matmul(&b.transpose()).unwrap().scaled(-1.0);
    let a21 = c.transpose().matmul(&s_inv).unwrap().matmul(c).unwrap();
    let a22 = &a.transpose().scaled(-1.0)
        + &c.transpose().matmul(d).unwrap().matmul(&r_inv).unwrap().matmul(&b.transpose()).unwrap();
    let mut m = Mat::zeros(2 * n, 2 * n);
    m.set_block(0, 0, &a11);
    m.set_block(0, n, &a12);
    m.set_block(n, 0, &a21);
    m.set_block(n, n, &a22);
    m
}

/// Strategy: a stable state-space system with `n` states, `p` ports and a
/// strictly contractive feedthrough (so `DᵀD − I` stays well conditioned and
/// the optimized and naive assemblies must agree to roundoff).
fn random_system(n: usize, p: usize) -> impl Strategy<Value = StateSpace> {
    prop::collection::vec(-1.0f64..1.0, n * n + 2 * n * p + p * p).prop_map(move |v| {
        let a = Mat::from_fn(n, n, |i, j| v[i * n + j] - if i == j { n as f64 + 1.0 } else { 0.0 });
        let b = Mat::from_fn(n, p, |i, j| v[n * n + i * p + j]);
        let c = Mat::from_fn(p, n, |i, j| v[n * n + n * p + i * n + j]);
        let d = Mat::from_fn(p, p, |i, j| 0.3 * v[n * n + 2 * n * p + i * p + j] / p as f64);
        StateSpace::new(a, b, c, d).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn block_structured_hamiltonian_matches_naive_reference(
        n in 1usize..33,
        p in 1usize..4,
        seed in 0.0f64..1.0,
    ) {
        // Re-draw the system from the size parameters: the proptest shim has
        // no flat_map, so sizes and entries are decoupled via a nested
        // generation using the seed to vary entries across cases.
        let sys = {
            let total = n * n + 2 * n * p + p * p;
            let v: Vec<f64> = (0..total)
                .map(|k| {

                    (seed * 1e4 + k as f64 * 0.7531).sin()
                })
                .collect();
            let a = Mat::from_fn(n, n, |i, j| {
                v[i * n + j] - if i == j { n as f64 + 1.0 } else { 0.0 }
            });
            let b = Mat::from_fn(n, p, |i, j| v[n * n + i * p + j]);
            let c = Mat::from_fn(p, n, |i, j| v[n * n + n * p + i * n + j]);
            let d = Mat::from_fn(p, p, |i, j| 0.3 * v[n * n + 2 * n * p + i * p + j] / p as f64);
            StateSpace::new(a, b, c, d).unwrap()
        };
        let fast = hamiltonian_matrix(&sys).unwrap();
        let reference = naive_hamiltonian(&sys);
        let scale = reference.max_abs().max(1.0);
        prop_assert!(
            fast.max_abs_diff(&reference) < 1e-12 * scale,
            "Hamiltonian drift {} for n={n} p={p}",
            fast.max_abs_diff(&reference)
        );
    }

    #[test]
    fn hamiltonian_of_fixed_size_systems_matches_reference(sys in random_system(6, 2)) {
        let fast = hamiltonian_matrix(&sys).unwrap();
        let reference = naive_hamiltonian(&sys);
        let scale = reference.max_abs().max(1.0);
        prop_assert!(fast.max_abs_diff(&reference) < 1e-12 * scale);
    }

    #[test]
    fn parallel_assessment_grid_is_bit_identical_across_thread_counts(
        pairs in 1usize..5,
        grid_len in 1usize..33,
        v in prop::collection::vec(-1.0f64..1.0, 4 * 4 + 32),
    ) {
        // A resonant multi-pair pole-residue model (the shape the dense
        // assessment grids sweep in the flow).
        let mut poles = Vec::new();
        let mut residues = Vec::new();
        for k in 0..pairs {
            let p = Complex64::new(-40.0 - 10.0 * v[k].abs(), 800.0 + 300.0 * k as f64);
            let r = Complex64::new(25.0 * v[k + 4], 10.0 * v[k + 8]);
            poles.push(p);
            poles.push(p.conj());
            residues.push(CMat::from_diag(&[r]));
            residues.push(CMat::from_diag(&[r.conj()]));
        }
        let model = PoleResidueModel::new(poles, residues, Mat::from_diag(&[0.6])).unwrap();
        let omegas: Vec<f64> = (0..grid_len).map(|k| 5.0 * k as f64 + 40.0 * v[16 + k].abs()).collect();
        let serial = singular_value_sweep_with(&ThreadPool::new(1), &model, &omegas).unwrap();
        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = singular_value_sweep_with(&pool, &model, &omegas).unwrap();
            prop_assert!(parallel.len() == serial.len());
            for (k, (sa, sb)) in serial.iter().zip(&parallel).enumerate() {
                prop_assert!(sa.len() == sb.len());
                for (a, b) in sa.iter().zip(sb) {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "grid point {k} drifted with {threads} threads: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_qp_is_bit_identical_to_fixed_tikhonov_when_well_conditioned(
        n_blocks in 1usize..5,
        n_block in 1usize..5,
        m in 1usize..7,
        lambda_pick in 0.0f64..1.0,
        v in prop::collection::vec(-1.0f64..1.0, 128),
    ) {
        let lambda_zero = lambda_pick < 0.5;
        // Diagonally dominant SPD Gramian blocks: condition stays far below
        // any realistic cap, so the adaptive path must never escalate and
        // the factorization (hence the QP solution) must be bit-identical
        // to the fixed-Tikhonov path.
        let at = |k: usize| v[k % v.len()];
        let blocks: Vec<Mat> = (0..n_blocks)
            .map(|e| {
                let l = Mat::from_fn(n_block, n_block, |i, j| at(e * 31 + i * n_block + j));
                let mut g = l.matmul(&l.transpose()).unwrap();
                for i in 0..n_block {
                    g[(i, i)] += n_block as f64 + 1.0;
                }
                g
            })
            .collect();
        let n = n_blocks * n_block;
        let f = Mat::from_fn(m, n, |i, j| at(61 + i * n + j));
        // Mix of active (negative bound) and inactive constraints.
        let g: Vec<f64> = (0..m).map(|i| 0.5 * at(97 + i)).collect();
        let reg = if lambda_zero { 0.0 } else { 1e-10 };
        let options = QpOptions { regularization: reg, ..QpOptions::default() };

        let fixed = BlockQpFactors::new(&blocks, reg).unwrap();
        let adaptive = BlockQpFactors::new_adaptive(&blocks, reg, 1e13).unwrap();
        prop_assert!(adaptive.damped_blocks() == 0, "no block may be escalated");
        prop_assert!(adaptive.max_applied_regularization() == reg);

        let a = solve_block_qp_factored(&fixed, &f, &g, &options).unwrap();
        let b = solve_block_qp_factored(&adaptive, &f, &g, &options).unwrap();
        prop_assert!(a.iterations == b.iterations);
        prop_assert!(a.objective.to_bits() == b.objective.to_bits());
        for (k, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
            prop_assert!(
                xa.to_bits() == xb.to_bits(),
                "unknown {k} drifted: {xa} vs {xb} (lambda = {reg})"
            );
        }
        for (k, (la, lb)) in a.multipliers.iter().zip(&b.multipliers).enumerate() {
            prop_assert!(
                la.to_bits() == lb.to_bits(),
                "multiplier {k} drifted: {la} vs {lb}"
            );
        }
    }
}
