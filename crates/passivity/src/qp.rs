//! The convex quadratic program of the perturbation step (eq. 9 of the
//! paper): minimize a block-diagonal Gramian-weighted norm of the output
//! matrix perturbation under the linearized passivity constraints.
//!
//! The problem is
//!
//! ```text
//! minimize    Σ_e  δc_e · G_e · δc_eᵀ
//! subject to  F · x ≤ g
//! ```
//!
//! with `x` stacking the per-element rows `δc_e` and each `G_e` symmetric
//! positive definite (a controllability Gramian, plain or sensitivity
//! weighted). The dual of this strictly convex QP is a bound-constrained
//! quadratic maximization solved here by Hildreth's coordinate ascent, which
//! is simple, allocation-light and well suited to the modest constraint
//! counts produced by the enforcement loop.

use crate::{PassivityError, Result};
use pim_linalg::lu::Lu;
use pim_linalg::Mat;

/// Options of the dual coordinate-ascent solver.
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// Maximum number of dual sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the relative change of the dual variables.
    pub tolerance: f64,
    /// Relative Tikhonov regularization added to each Gramian block to keep
    /// the Hessian safely positive definite.
    pub regularization: f64,
    /// Condition cap for adaptive Tikhonov damping: Gramian blocks whose LU
    /// condition estimate exceeds this get their regularization escalated
    /// (×100 per step) until they comply, so a near-singular block damps the
    /// perturbation instead of blowing up the step. `f64::INFINITY` disables
    /// the adaptive path; well-conditioned blocks are factored bit-identically
    /// to the fixed-Tikhonov path either way.
    pub max_condition: f64,
    /// Relaxation factor for [`BlockQpFactors::decay`]: each accepted
    /// improving enforcement step divides the extra damping (above the base
    /// `regularization`) by this, so the bias vanishes as the loop converges.
    /// Values ≤ 1 disable decay.
    pub lambda_decay: f64,
}

impl Default for QpOptions {
    fn default() -> Self {
        QpOptions {
            max_iterations: 2000,
            tolerance: 1e-10,
            regularization: 1e-10,
            max_condition: 1e13,
            lambda_decay: 10.0,
        }
    }
}

/// Solution of the perturbation quadratic program.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// The optimal perturbation vector (stacked per-element rows).
    pub x: Vec<f64>,
    /// Lagrange multipliers of the constraints.
    pub multipliers: Vec<f64>,
    /// Number of dual sweeps performed.
    pub iterations: usize,
    /// Objective value `xᵀHx` at the solution.
    pub objective: f64,
}

/// Pre-factored Gramian blocks of the QP Hessian.
///
/// The Gramian weights are fixed across the outer iterations of the
/// enforcement loop (the norm depends only on the poles and the sensitivity
/// weight, neither of which the perturbation changes), so the per-block LU
/// factorizations can be computed once and reused by every
/// [`solve_block_qp_factored`] call instead of being rebuilt from scratch
/// each iteration.
#[derive(Debug, Clone)]
pub struct BlockQpFactors {
    blocks: Vec<Mat>,
    factors: Vec<Lu>,
    n_block: usize,
    base_regularization: f64,
    max_condition: f64,
    /// Relative Tikhonov λ actually baked into each block's factorization
    /// (`== base_regularization` for well-conditioned blocks).
    applied: Vec<f64>,
    /// LU condition estimate of each block after damping.
    conditions: Vec<f64>,
}

/// Factors one block with a relative Tikhonov term `lambda`.
fn factor_block(b: &Mat, n_block: usize, lambda: f64) -> crate::Result<Lu> {
    let scale = b.trace().abs().max(1e-300) / n_block as f64;
    let reg = &Mat::identity(n_block).scaled(lambda * scale);
    Ok(Lu::new(&(b + reg))?)
}

/// Escalates `lambda` (×100 per step) until the block factors with a
/// condition estimate at or below `max_condition`, returning the factor, the
/// λ used and the final estimate.
fn factor_block_capped(
    b: &Mat,
    n_block: usize,
    mut lambda: f64,
    max_condition: f64,
) -> crate::Result<(Lu, f64, f64)> {
    let mut attempt = factor_block(b, n_block, lambda);
    for _ in 0..24 {
        let cond = match &attempt {
            Ok(lu) => lu.condition_estimate(),
            Err(_) => f64::INFINITY,
        };
        if cond <= max_condition {
            break;
        }
        lambda = lambda.max(1e-16) * 100.0;
        attempt = factor_block(b, n_block, lambda);
    }
    let lu = attempt?;
    let cond = lu.condition_estimate();
    Ok((lu, lambda, cond))
}

impl BlockQpFactors {
    /// Factors the regularized Gramian blocks with the fixed Tikhonov term
    /// `regularization` of [`QpOptions::regularization`] — no adaptive
    /// damping (equivalent to [`BlockQpFactors::new_adaptive`] with an
    /// infinite condition cap).
    ///
    /// # Errors
    ///
    /// Returns [`PassivityError::InvalidInput`] on inconsistent block shapes
    /// and propagates factorization failures.
    pub fn new(blocks: &[Mat], regularization: f64) -> Result<Self> {
        Self::new_adaptive(blocks, regularization, f64::INFINITY)
    }

    /// Factors the Gramian blocks with adaptive Tikhonov damping: any block
    /// whose LU condition estimate exceeds `max_condition` gets its λ
    /// escalated until it complies. Well-conditioned blocks are factored
    /// bit-identically to [`BlockQpFactors::new`].
    ///
    /// # Errors
    ///
    /// See [`BlockQpFactors::new`].
    pub fn new_adaptive(blocks: &[Mat], regularization: f64, max_condition: f64) -> Result<Self> {
        if blocks.is_empty() {
            return Err(PassivityError::InvalidInput(
                "at least one Gramian block is required".into(),
            ));
        }
        let n_block = blocks[0].rows();
        if blocks.iter().any(|b| !b.is_square() || b.rows() != n_block) {
            return Err(PassivityError::InvalidInput(
                "all Gramian blocks must be square and of identical size".into(),
            ));
        }
        // The Hessian of the primal is H = 2·blkdiag(G_e), so H⁻¹
        // applications reduce to per-block solves.
        let mut factors = Vec::with_capacity(blocks.len());
        let mut applied = Vec::with_capacity(blocks.len());
        let mut conditions = Vec::with_capacity(blocks.len());
        for b in blocks {
            let (lu, lambda, cond) =
                factor_block_capped(b, n_block, regularization, max_condition)?;
            factors.push(lu);
            applied.push(lambda);
            conditions.push(cond);
        }
        Ok(BlockQpFactors {
            blocks: blocks.to_vec(),
            factors,
            n_block,
            base_regularization: regularization,
            max_condition,
            applied,
            conditions,
        })
    }

    /// Total number of unknowns (`blocks · block size`).
    pub fn unknowns(&self) -> usize {
        self.blocks.len() * self.n_block
    }

    /// Largest relative Tikhonov λ baked into any block.
    pub fn max_applied_regularization(&self) -> f64 {
        self.applied.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Largest post-damping condition estimate across the blocks.
    pub fn max_condition_estimate(&self) -> f64 {
        self.conditions.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Number of blocks whose damping was escalated above the base λ.
    pub fn damped_blocks(&self) -> usize {
        self.applied.iter().filter(|&&l| l > self.base_regularization).count()
    }

    /// Decays the extra damping (above the base λ) of every escalated block
    /// by `factor`, re-escalating where the condition cap would break, and
    /// refactors the changed blocks. Returns `true` if any block changed.
    /// No-op (and bit-identity-safe) when nothing was ever escalated.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures.
    pub fn decay(&mut self, factor: f64) -> Result<bool> {
        if factor <= 1.0 {
            return Ok(false);
        }
        let mut changed = false;
        for e in 0..self.blocks.len() {
            if self.applied[e] <= self.base_regularization {
                continue;
            }
            let target = (self.applied[e] / factor).max(self.base_regularization);
            let (lu, lambda, cond) =
                factor_block_capped(&self.blocks[e], self.n_block, target, self.max_condition)?;
            // Never escalate past the current λ from inside a decay — that
            // would oscillate between a too-light and a too-heavy damping.
            if lambda < self.applied[e] {
                self.factors[e] = lu;
                self.applied[e] = lambda;
                self.conditions[e] = cond;
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Solves the block-diagonal Gramian-weighted QP.
///
/// `blocks` holds one symmetric positive-definite matrix per element (all of
/// identical size); `f` and `g` define the inequality constraints
/// `F·x ≤ g`. The blocks are factored on every call — use
/// [`BlockQpFactors`] + [`solve_block_qp_factored`] to amortize the
/// factorization across repeated solves with the same Gramians.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] on dimension mismatches and
/// [`PassivityError::Linalg`] when a Gramian block is singular even after
/// regularization.
pub fn solve_block_qp(
    blocks: &[Mat],
    f: &Mat,
    g: &[f64],
    options: &QpOptions,
) -> Result<QpSolution> {
    let factors = BlockQpFactors::new(blocks, options.regularization)?;
    solve_block_qp_factored(&factors, f, g, options)
}

/// Solves the block-diagonal Gramian-weighted QP with pre-factored blocks.
///
/// `options.regularization` is **not** consulted here: the Tikhonov term is
/// baked into `factors` at [`BlockQpFactors::new`] time (that is the whole
/// point of pre-factoring); only the iteration/tolerance options apply.
///
/// # Errors
///
/// See [`solve_block_qp`].
pub fn solve_block_qp_factored(
    factors: &BlockQpFactors,
    f: &Mat,
    g: &[f64],
    options: &QpOptions,
) -> Result<QpSolution> {
    let n_block = factors.n_block;
    let n = factors.unknowns();
    if f.cols() != n {
        return Err(PassivityError::InvalidInput(format!(
            "constraint matrix has {} columns, expected {}",
            f.cols(),
            n
        )));
    }
    if f.rows() != g.len() {
        return Err(PassivityError::InvalidInput(format!(
            "constraint matrix has {} rows but g has {} entries",
            f.rows(),
            g.len()
        )));
    }
    let m = g.len();
    if m == 0 {
        return Ok(QpSolution {
            x: vec![0.0; n],
            multipliers: vec![],
            iterations: 0,
            objective: 0.0,
        });
    }

    // hinv_ft[:, r] = H^{-1} F^T e_r  (column per constraint), with H = 2G.
    let mut hinv_ft = Mat::zeros(n, m);
    let mut seg = vec![0.0; n_block];
    for r in 0..m {
        for (e, factor) in factors.factors.iter().enumerate() {
            for (k, s) in seg.iter_mut().enumerate() {
                *s = f[(r, e * n_block + k)];
            }
            let sol = factor.solve_vec(&seg)?;
            for k in 0..n_block {
                hinv_ft[(e * n_block + k, r)] = 0.5 * sol[k];
            }
        }
    }
    // Dual Hessian P = F H^{-1} F^T.
    let p = f.matmul(&hinv_ft)?;

    // Hildreth coordinate ascent on  max_{λ≥0} −½λᵀPλ − λᵀ(−g)  (with zero
    // primal linear term the dual linear coefficient is −g).
    let mut lambda = vec![0.0_f64; m];
    let mut iterations = 0;
    for sweep in 0..options.max_iterations {
        iterations = sweep + 1;
        let mut max_change = 0.0_f64;
        for i in 0..m {
            let pii = p[(i, i)];
            if pii <= 0.0 {
                continue;
            }
            // Stationarity of the dual in coordinate i: λ_i = −(g_i + Σ_{j≠i} P_ij λ_j)/P_ii.
            let mut acc = g[i];
            for j in 0..m {
                if j != i {
                    acc += p[(i, j)] * lambda[j];
                }
            }
            let new_l = (-acc / pii).max(0.0);
            max_change = max_change.max((new_l - lambda[i]).abs() * pii.sqrt());
            lambda[i] = new_l;
        }
        if max_change <= options.tolerance {
            break;
        }
    }

    // Primal recovery: x = −H⁻¹ Fᵀ λ.
    let mut x = vec![0.0_f64; n];
    for r in 0..m {
        // audit:allow(float-eq): multipliers are set to literal 0.0 when a constraint deactivates
        if lambda[r] == 0.0 {
            continue;
        }
        for k in 0..n {
            x[k] -= hinv_ft[(k, r)] * lambda[r];
        }
    }
    // Objective xᵀ (blkdiag G) x.
    let mut objective = 0.0;
    for (e, b) in factors.blocks.iter().enumerate() {
        let seg = &x[e * n_block..(e + 1) * n_block];
        let bs = b.matvec(seg)?;
        objective += seg.iter().zip(&bs).map(|(a, c)| a * c).sum::<f64>();
    }
    Ok(QpSolution { x, multipliers: lambda, iterations, objective })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_problem_returns_zero() {
        let blocks = vec![Mat::identity(2)];
        let f = Mat::zeros(0, 2);
        let sol = solve_block_qp(&blocks, &f, &[], &QpOptions::default()).unwrap();
        assert_eq!(sol.x, vec![0.0, 0.0]);
        assert_eq!((sol.objective).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn single_constraint_identity_hessian_matches_analytic_solution() {
        // min ||x||^2  s.t.  a·x <= -1  with a = [1, 1]: solution is the
        // projection x = -a/||a||^2 = [-0.5, -0.5].
        let blocks = vec![Mat::identity(1), Mat::identity(1)];
        let f = Mat::from_rows(&[&[1.0, 1.0]]);
        let sol = solve_block_qp(&blocks, &f, &[-1.0], &QpOptions::default()).unwrap();
        assert!((sol.x[0] + 0.5).abs() < 1e-8);
        assert!((sol.x[1] + 0.5).abs() < 1e-8);
        assert!((sol.objective - 0.5).abs() < 1e-7);
    }

    #[test]
    fn weighted_hessian_biases_solution_toward_cheap_directions() {
        // min x^T diag(10, 0.1) x  s.t.  x1 + x2 <= -1: most of the movement
        // must happen along the cheap coordinate x2.
        let blocks = vec![Mat::from_diag(&[10.0]), Mat::from_diag(&[0.1])];
        let f = Mat::from_rows(&[&[1.0, 1.0]]);
        let sol = solve_block_qp(&blocks, &f, &[-1.0], &QpOptions::default()).unwrap();
        assert!((sol.x[0] + sol.x[1] + 1.0).abs() < 1e-6, "constraint must be active");
        assert!(sol.x[1].abs() > 50.0 * sol.x[0].abs());
    }

    #[test]
    fn inactive_constraints_do_not_move_the_solution() {
        let blocks = vec![Mat::identity(2)];
        let f = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        // Both constraints are satisfied at x = 0 (g >= 0): optimum stays 0.
        let sol = solve_block_qp(&blocks, &f, &[1.0, 2.0], &QpOptions::default()).unwrap();
        assert!(sol.x.iter().all(|v| v.abs() < 1e-12));
        assert!(sol.multipliers.iter().all(|&l| l.to_bits() == 0.0f64.to_bits()));
    }

    #[test]
    fn multiple_active_constraints_are_satisfied() {
        let blocks = vec![Mat::identity(3)];
        let f = Mat::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0], &[1.0, 0.0, 1.0]]);
        let g = vec![-1.0, -0.5, -2.0];
        let sol = solve_block_qp(&blocks, &f, &g, &QpOptions::default()).unwrap();
        let fx = f.matvec(&sol.x).unwrap();
        for (lhs, rhs) in fx.iter().zip(&g) {
            assert!(*lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
        }
    }

    #[test]
    fn adaptive_damping_caps_near_singular_blocks_and_decays() {
        // One healthy block, one near-singular block (condition ~1e12).
        let blocks = vec![Mat::identity(2), Mat::from_diag(&[1.0, 1e-12])];
        let mut factors = BlockQpFactors::new_adaptive(&blocks, 1e-10, 1e6).unwrap();
        assert_eq!(factors.damped_blocks(), 1);
        assert!(factors.max_condition_estimate() <= 1e6);
        assert!(factors.max_applied_regularization() > 1e-10);
        // Decay relaxes the damping only while the cap still holds.
        let lambda_before = factors.max_applied_regularization();
        factors.decay(10.0).unwrap();
        assert!(factors.max_applied_regularization() <= lambda_before);
        assert!(factors.max_condition_estimate() <= 1e6);
        // Decay with factor <= 1 is a no-op.
        assert!(!factors.decay(1.0).unwrap());
    }

    #[test]
    fn adaptive_path_is_bit_identical_for_well_conditioned_blocks() {
        let blocks = vec![Mat::from_diag(&[2.0, 3.0]), Mat::identity(2)];
        let f = Mat::from_rows(&[&[1.0, 1.0, 0.5, -0.25]]);
        let g = [-1.0];
        let plain = BlockQpFactors::new(&blocks, 1e-10).unwrap();
        let adaptive = BlockQpFactors::new_adaptive(&blocks, 1e-10, 1e13).unwrap();
        assert_eq!(adaptive.damped_blocks(), 0);
        let opts = QpOptions::default();
        let a = solve_block_qp_factored(&plain, &f, &g, &opts).unwrap();
        let b = solve_block_qp_factored(&adaptive, &f, &g, &opts).unwrap();
        for (x, y) in a.x.iter().zip(&b.x) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn input_validation() {
        let blocks = vec![Mat::identity(2)];
        assert!(solve_block_qp(&[], &Mat::zeros(1, 2), &[0.0], &QpOptions::default()).is_err());
        assert!(solve_block_qp(&blocks, &Mat::zeros(1, 3), &[0.0], &QpOptions::default()).is_err());
        assert!(solve_block_qp(&blocks, &Mat::zeros(2, 2), &[0.0], &QpOptions::default()).is_err());
        let bad = vec![Mat::identity(2), Mat::identity(3)];
        assert!(solve_block_qp(&bad, &Mat::zeros(1, 5), &[0.0], &QpOptions::default()).is_err());
    }
}
