//! The convex quadratic program of the perturbation step (eq. 9 of the
//! paper): minimize a block-diagonal Gramian-weighted norm of the output
//! matrix perturbation under the linearized passivity constraints.
//!
//! The problem is
//!
//! ```text
//! minimize    Σ_e  δc_e · G_e · δc_eᵀ
//! subject to  F · x ≤ g
//! ```
//!
//! with `x` stacking the per-element rows `δc_e` and each `G_e` symmetric
//! positive definite (a controllability Gramian, plain or sensitivity
//! weighted). The dual of this strictly convex QP is a bound-constrained
//! quadratic maximization solved here by Hildreth's coordinate ascent, which
//! is simple, allocation-light and well suited to the modest constraint
//! counts produced by the enforcement loop.

use crate::{PassivityError, Result};
use pim_linalg::lu::Lu;
use pim_linalg::Mat;

/// Options of the dual coordinate-ascent solver.
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// Maximum number of dual sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the relative change of the dual variables.
    pub tolerance: f64,
    /// Relative Tikhonov regularization added to each Gramian block to keep
    /// the Hessian safely positive definite.
    pub regularization: f64,
}

impl Default for QpOptions {
    fn default() -> Self {
        QpOptions { max_iterations: 2000, tolerance: 1e-10, regularization: 1e-10 }
    }
}

/// Solution of the perturbation quadratic program.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// The optimal perturbation vector (stacked per-element rows).
    pub x: Vec<f64>,
    /// Lagrange multipliers of the constraints.
    pub multipliers: Vec<f64>,
    /// Number of dual sweeps performed.
    pub iterations: usize,
    /// Objective value `xᵀHx` at the solution.
    pub objective: f64,
}

/// Pre-factored Gramian blocks of the QP Hessian.
///
/// The Gramian weights are fixed across the outer iterations of the
/// enforcement loop (the norm depends only on the poles and the sensitivity
/// weight, neither of which the perturbation changes), so the per-block LU
/// factorizations can be computed once and reused by every
/// [`solve_block_qp_factored`] call instead of being rebuilt from scratch
/// each iteration.
#[derive(Debug, Clone)]
pub struct BlockQpFactors {
    blocks: Vec<Mat>,
    factors: Vec<Lu>,
    n_block: usize,
}

impl BlockQpFactors {
    /// Factors the regularized Gramian blocks. `regularization` is the
    /// relative Tikhonov term of [`QpOptions::regularization`].
    ///
    /// # Errors
    ///
    /// Returns [`PassivityError::InvalidInput`] on inconsistent block shapes
    /// and propagates factorization failures.
    pub fn new(blocks: &[Mat], regularization: f64) -> Result<Self> {
        if blocks.is_empty() {
            return Err(PassivityError::InvalidInput(
                "at least one Gramian block is required".into(),
            ));
        }
        let n_block = blocks[0].rows();
        if blocks.iter().any(|b| !b.is_square() || b.rows() != n_block) {
            return Err(PassivityError::InvalidInput(
                "all Gramian blocks must be square and of identical size".into(),
            ));
        }
        // The Hessian of the primal is H = 2·blkdiag(G_e), so H⁻¹
        // applications reduce to per-block solves.
        let mut factors = Vec::with_capacity(blocks.len());
        for b in blocks {
            let scale = b.trace().abs().max(1e-300) / n_block as f64;
            let reg = &Mat::identity(n_block).scaled(regularization * scale);
            factors.push(Lu::new(&(b + reg))?);
        }
        Ok(BlockQpFactors { blocks: blocks.to_vec(), factors, n_block })
    }

    /// Total number of unknowns (`blocks · block size`).
    pub fn unknowns(&self) -> usize {
        self.blocks.len() * self.n_block
    }
}

/// Solves the block-diagonal Gramian-weighted QP.
///
/// `blocks` holds one symmetric positive-definite matrix per element (all of
/// identical size); `f` and `g` define the inequality constraints
/// `F·x ≤ g`. The blocks are factored on every call — use
/// [`BlockQpFactors`] + [`solve_block_qp_factored`] to amortize the
/// factorization across repeated solves with the same Gramians.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] on dimension mismatches and
/// [`PassivityError::Linalg`] when a Gramian block is singular even after
/// regularization.
pub fn solve_block_qp(
    blocks: &[Mat],
    f: &Mat,
    g: &[f64],
    options: &QpOptions,
) -> Result<QpSolution> {
    let factors = BlockQpFactors::new(blocks, options.regularization)?;
    solve_block_qp_factored(&factors, f, g, options)
}

/// Solves the block-diagonal Gramian-weighted QP with pre-factored blocks.
///
/// `options.regularization` is **not** consulted here: the Tikhonov term is
/// baked into `factors` at [`BlockQpFactors::new`] time (that is the whole
/// point of pre-factoring); only the iteration/tolerance options apply.
///
/// # Errors
///
/// See [`solve_block_qp`].
pub fn solve_block_qp_factored(
    factors: &BlockQpFactors,
    f: &Mat,
    g: &[f64],
    options: &QpOptions,
) -> Result<QpSolution> {
    let n_block = factors.n_block;
    let n = factors.unknowns();
    if f.cols() != n {
        return Err(PassivityError::InvalidInput(format!(
            "constraint matrix has {} columns, expected {}",
            f.cols(),
            n
        )));
    }
    if f.rows() != g.len() {
        return Err(PassivityError::InvalidInput(format!(
            "constraint matrix has {} rows but g has {} entries",
            f.rows(),
            g.len()
        )));
    }
    let m = g.len();
    if m == 0 {
        return Ok(QpSolution {
            x: vec![0.0; n],
            multipliers: vec![],
            iterations: 0,
            objective: 0.0,
        });
    }

    // hinv_ft[:, r] = H^{-1} F^T e_r  (column per constraint), with H = 2G.
    let mut hinv_ft = Mat::zeros(n, m);
    let mut seg = vec![0.0; n_block];
    for r in 0..m {
        for (e, factor) in factors.factors.iter().enumerate() {
            for (k, s) in seg.iter_mut().enumerate() {
                *s = f[(r, e * n_block + k)];
            }
            let sol = factor.solve_vec(&seg)?;
            for k in 0..n_block {
                hinv_ft[(e * n_block + k, r)] = 0.5 * sol[k];
            }
        }
    }
    // Dual Hessian P = F H^{-1} F^T.
    let p = f.matmul(&hinv_ft)?;

    // Hildreth coordinate ascent on  max_{λ≥0} −½λᵀPλ − λᵀ(−g)  (with zero
    // primal linear term the dual linear coefficient is −g).
    let mut lambda = vec![0.0_f64; m];
    let mut iterations = 0;
    for sweep in 0..options.max_iterations {
        iterations = sweep + 1;
        let mut max_change = 0.0_f64;
        for i in 0..m {
            let pii = p[(i, i)];
            if pii <= 0.0 {
                continue;
            }
            // Stationarity of the dual in coordinate i: λ_i = −(g_i + Σ_{j≠i} P_ij λ_j)/P_ii.
            let mut acc = g[i];
            for j in 0..m {
                if j != i {
                    acc += p[(i, j)] * lambda[j];
                }
            }
            let new_l = (-acc / pii).max(0.0);
            max_change = max_change.max((new_l - lambda[i]).abs() * pii.sqrt());
            lambda[i] = new_l;
        }
        if max_change <= options.tolerance {
            break;
        }
    }

    // Primal recovery: x = −H⁻¹ Fᵀ λ.
    let mut x = vec![0.0_f64; n];
    for r in 0..m {
        if lambda[r] == 0.0 {
            continue;
        }
        for k in 0..n {
            x[k] -= hinv_ft[(k, r)] * lambda[r];
        }
    }
    // Objective xᵀ (blkdiag G) x.
    let mut objective = 0.0;
    for (e, b) in factors.blocks.iter().enumerate() {
        let seg = &x[e * n_block..(e + 1) * n_block];
        let bs = b.matvec(seg)?;
        objective += seg.iter().zip(&bs).map(|(a, c)| a * c).sum::<f64>();
    }
    Ok(QpSolution { x, multipliers: lambda, iterations, objective })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_problem_returns_zero() {
        let blocks = vec![Mat::identity(2)];
        let f = Mat::zeros(0, 2);
        let sol = solve_block_qp(&blocks, &f, &[], &QpOptions::default()).unwrap();
        assert_eq!(sol.x, vec![0.0, 0.0]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn single_constraint_identity_hessian_matches_analytic_solution() {
        // min ||x||^2  s.t.  a·x <= -1  with a = [1, 1]: solution is the
        // projection x = -a/||a||^2 = [-0.5, -0.5].
        let blocks = vec![Mat::identity(1), Mat::identity(1)];
        let f = Mat::from_rows(&[&[1.0, 1.0]]);
        let sol = solve_block_qp(&blocks, &f, &[-1.0], &QpOptions::default()).unwrap();
        assert!((sol.x[0] + 0.5).abs() < 1e-8);
        assert!((sol.x[1] + 0.5).abs() < 1e-8);
        assert!((sol.objective - 0.5).abs() < 1e-7);
    }

    #[test]
    fn weighted_hessian_biases_solution_toward_cheap_directions() {
        // min x^T diag(10, 0.1) x  s.t.  x1 + x2 <= -1: most of the movement
        // must happen along the cheap coordinate x2.
        let blocks = vec![Mat::from_diag(&[10.0]), Mat::from_diag(&[0.1])];
        let f = Mat::from_rows(&[&[1.0, 1.0]]);
        let sol = solve_block_qp(&blocks, &f, &[-1.0], &QpOptions::default()).unwrap();
        assert!((sol.x[0] + sol.x[1] + 1.0).abs() < 1e-6, "constraint must be active");
        assert!(sol.x[1].abs() > 50.0 * sol.x[0].abs());
    }

    #[test]
    fn inactive_constraints_do_not_move_the_solution() {
        let blocks = vec![Mat::identity(2)];
        let f = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        // Both constraints are satisfied at x = 0 (g >= 0): optimum stays 0.
        let sol = solve_block_qp(&blocks, &f, &[1.0, 2.0], &QpOptions::default()).unwrap();
        assert!(sol.x.iter().all(|v| v.abs() < 1e-12));
        assert!(sol.multipliers.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn multiple_active_constraints_are_satisfied() {
        let blocks = vec![Mat::identity(3)];
        let f = Mat::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0], &[1.0, 0.0, 1.0]]);
        let g = vec![-1.0, -0.5, -2.0];
        let sol = solve_block_qp(&blocks, &f, &g, &QpOptions::default()).unwrap();
        let fx = f.matvec(&sol.x).unwrap();
        for (lhs, rhs) in fx.iter().zip(&g) {
            assert!(*lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
        }
    }

    #[test]
    fn input_validation() {
        let blocks = vec![Mat::identity(2)];
        assert!(solve_block_qp(&[], &Mat::zeros(1, 2), &[0.0], &QpOptions::default()).is_err());
        assert!(solve_block_qp(&blocks, &Mat::zeros(1, 3), &[0.0], &QpOptions::default()).is_err());
        assert!(solve_block_qp(&blocks, &Mat::zeros(2, 2), &[0.0], &QpOptions::default()).is_err());
        let bad = vec![Mat::identity(2), Mat::identity(3)];
        assert!(solve_block_qp(&bad, &Mat::zeros(1, 5), &[0.0], &QpOptions::default()).is_err());
    }
}
