//! First-class frequency grids and pluggable sampling strategies.
//!
//! Passivity assessment and enforcement are only as trustworthy as the
//! frequency grid the singular values are sampled on: a violation band
//! narrower than the grid spacing is invisible, and the Fig. 5 anomaly of
//! the reproduction traced back to exactly that (a band near
//! ω ≈ 7.04·10⁹ rad/s hiding between working-grid points for 12
//! enforcement iterations). This module turns the grid into a first-class
//! artifact and the *choice of where to sample* into a pluggable policy:
//!
//! * [`FrequencyGrid`] — a sorted, deduplicated list of angular frequencies
//!   (rad/s), each tagged with its [`PointProvenance`] (seed point, crossing
//!   refinement, adaptive bisection);
//! * [`SamplingStrategy`] — the policy trait: how to build the enforcement
//!   working and verification grids, and how to refine a base grid for one
//!   assessment of a concrete model;
//! * [`FixedLog`] — no refinement: sweep exactly the base grid;
//! * [`CrossingRefined`] — the historical behavior, extracted verbatim:
//!   midpoints / geometric means between consecutive Hamiltonian crossings
//!   plus ±0.1 % neighborhoods (bit-identical to the pre-redesign
//!   hard-wired refinement);
//! * [`Adaptive`] — starts from the crossing refinement and then bisects
//!   intervals around Hamiltonian crossings and local `σ_max` maxima until
//!   the σ-interpolation error estimate falls below tolerance, evaluating
//!   the new points in parallel on a [`pim_runtime::ThreadPool`]. This is
//!   the strategy that exposes sub-grid violation bands (reported
//!   σ ≈ 1.36 where the fixed working sweep saw ≈ 1.006) and lets the
//!   enforcement constrain them away.
//!
//! This grid is a *sampling* artifact in rad/s; the tabulated-data grid in
//! hertz (with its DC bookkeeping) remains `pim_rfdata::FrequencyGrid`.
//!
//! ```
//! use pim_passivity::grid::{Adaptive, CrossingRefined, FrequencyGrid, SamplingStrategy};
//!
//! // The enforcement working grid of a 400-point sweep over a band that
//! // tops out at 1e10 rad/s: logarithmic plus the DC point.
//! let grid = CrossingRefined.working_grid(1e10, 400);
//! assert_eq!(grid.len(), 401);
//! assert_eq!(grid.points()[0], 0.0);
//! // The convergence double-check grid is 4x denser.
//! assert_eq!(CrossingRefined.verification_grid(1e10, 400).len(), 1601);
//! // Strategies are compared by name in diagnostics.
//! assert_eq!(Adaptive::default().name(), "adaptive");
//! // Grids canonicalize on construction: sorted, deduplicated.
//! let g = FrequencyGrid::from_omegas(&[3.0, 1.0, 2.0, 2.0]);
//! assert_eq!(g.points(), &[1.0, 2.0, 3.0]);
//! ```

use crate::check::sigma_max_at;
use crate::Result;
use pim_statespace::PoleResidueModel;
use std::fmt;

/// How a grid point came to be part of a [`FrequencyGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointProvenance {
    /// Part of the seed (baseline) grid the strategy started from — data
    /// samples or the logarithmic enforcement sweep, including DC.
    Seed,
    /// Inserted between or around Hamiltonian unit-singular-value crossings.
    Crossing,
    /// Inserted by adaptive bisection around a σ-interpolation-error hotspot
    /// or a local `σ_max` maximum.
    Bisection,
}

/// A sorted, deduplicated set of angular frequencies (rad/s), each tagged
/// with the [`PointProvenance`] that produced it.
///
/// Construction canonicalizes: non-finite and negative values are dropped,
/// points are sorted ascending, and near-duplicates (within
/// `ε·max(|ω|, 1)`) collapse to the first occurrence. The canonical form is
/// what the singular-value sweeps consume, so two strategies that produce
/// the same point set produce bit-identical sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyGrid {
    points: Vec<f64>,
    provenance: Vec<PointProvenance>,
}

impl FrequencyGrid {
    /// Builds a grid from raw angular frequencies, tagging every point as
    /// [`PointProvenance::Seed`].
    pub fn from_omegas(omegas: &[f64]) -> Self {
        FrequencyGrid::from_tagged(omegas.iter().map(|&w| (w, PointProvenance::Seed)).collect())
    }

    /// Builds a grid from provenance-tagged points, canonicalizing exactly
    /// like the historical assessment code did: retain finite non-negative
    /// values, stable-sort ascending, deduplicate within
    /// `ε·max(|ω|, 1)` keeping the first occurrence.
    pub fn from_tagged(mut tagged: Vec<(f64, PointProvenance)>) -> Self {
        tagged.retain(|(w, _)| w.is_finite() && *w >= 0.0);
        tagged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        tagged.dedup_by(|a, b| (a.0 - b.0).abs() <= f64::EPSILON * a.0.abs().max(1.0));
        let (points, provenance) = tagged.into_iter().unzip();
        FrequencyGrid { points, provenance }
    }

    /// The logarithmic baseline grid of the enforcement loop: `n` points
    /// from `band_max_omega · 10⁻⁸` to `band_max_omega · 2` (one octave
    /// above the band), plus the DC point — the exact floating-point values
    /// the pre-redesign loop hard-coded.
    ///
    /// # Panics
    ///
    /// Panics when `band_max_omega` is not a positive finite number or
    /// `n < 2` (the enforcement loop validates both beforehand).
    pub fn enforcement_log(band_max_omega: f64, n: usize) -> Self {
        assert!(
            band_max_omega > 0.0 && band_max_omega.is_finite(),
            "enforcement_log requires a positive finite band edge"
        );
        assert!(n >= 2, "enforcement_log requires at least two points");
        let top = band_max_omega * 2.0;
        let bottom = band_max_omega * 1e-8;
        let mut tagged: Vec<(f64, PointProvenance)> = (0..n)
            .map(|k| {
                let w = 10f64.powf(
                    bottom.log10() + (top.log10() - bottom.log10()) * k as f64 / (n - 1) as f64,
                );
                (w, PointProvenance::Seed)
            })
            .collect();
        tagged.insert(0, (0.0, PointProvenance::Seed));
        FrequencyGrid::from_tagged(tagged)
    }

    /// The angular frequencies, ascending.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// One provenance tag per point, parallel to [`FrequencyGrid::points`].
    pub fn provenance(&self) -> &[PointProvenance] {
        &self.provenance
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points carrying the given provenance tag.
    pub fn count_of(&self, provenance: PointProvenance) -> usize {
        self.provenance.iter().filter(|&&p| p == provenance).count()
    }

    /// Iterates over `(ω, provenance)` pairs, ascending in ω.
    pub fn iter_tagged(&self) -> impl Iterator<Item = (f64, PointProvenance)> + '_ {
        self.points.iter().copied().zip(self.provenance.iter().copied())
    }

    /// Merges additional tagged points into this grid, returning the
    /// canonicalized union. Existing points keep priority on near-duplicate
    /// collisions (they sort first at equal values).
    #[must_use]
    pub fn merged_with(&self, extra: Vec<(f64, PointProvenance)>) -> Self {
        let mut tagged: Vec<(f64, PointProvenance)> = self.iter_tagged().collect();
        tagged.extend(extra);
        FrequencyGrid::from_tagged(tagged)
    }
}

/// A policy for where to sample singular values: how the enforcement
/// working and verification grids are built, and how a base grid is
/// refined for one assessment of a concrete model.
///
/// Strategies must be [`Send`] + [`Sync`]: enforcement runs inside the
/// parallel preset sweeps of the pipeline, and the configuration (which
/// carries the strategy) is shared across workers.
pub trait SamplingStrategy: fmt::Debug + Send + Sync {
    /// Short stable identifier, used by diagnostics and reports.
    fn name(&self) -> &'static str;

    /// The enforcement working grid for the band `(0, band_max_omega]` with
    /// a budget of `sweep_points` baseline samples (plus DC). The default is
    /// the historical logarithmic grid.
    fn working_grid(&self, band_max_omega: f64, sweep_points: usize) -> FrequencyGrid {
        FrequencyGrid::enforcement_log(band_max_omega, sweep_points)
    }

    /// The convergence double-check / final verification grid. The default
    /// is the historical 4× dense logarithmic grid.
    fn verification_grid(&self, band_max_omega: f64, sweep_points: usize) -> FrequencyGrid {
        FrequencyGrid::enforcement_log(band_max_omega, sweep_points * 4)
    }

    /// Refines `base` for one assessment of `model`, given the model's
    /// Hamiltonian unit-singular-value crossings (rad/s, ascending). New
    /// points are evaluated on `pool` when the strategy needs σ samples.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation and SVD failures of strategies that
    /// sample σ while refining.
    fn refine(
        &self,
        pool: &pim_runtime::ThreadPool,
        model: &PoleResidueModel,
        base: &FrequencyGrid,
        crossings: &[f64],
    ) -> Result<FrequencyGrid>;

    /// [`SamplingStrategy::refine`], additionally handing back the
    /// `σ_max` samples the strategy computed while refining (one per grid
    /// point, in grid order) so the caller can skip re-sweeping the grid.
    /// The default returns `None` (strategies that refine without sampling);
    /// [`Adaptive`] overrides it — its bisection rounds have already
    /// evaluated every point.
    ///
    /// # Errors
    ///
    /// See [`SamplingStrategy::refine`].
    fn refine_with_sigma(
        &self,
        pool: &pim_runtime::ThreadPool,
        model: &PoleResidueModel,
        base: &FrequencyGrid,
        crossings: &[f64],
    ) -> Result<(FrequencyGrid, Option<Vec<f64>>)> {
        Ok((self.refine(pool, model, base, crossings)?, None))
    }
}

/// No refinement: assessments sweep exactly the base grid.
///
/// This is the cheapest strategy and the most honest about its blind spots:
/// whatever hides between base points stays hidden. Use it for quick scans
/// and as the baseline of grid-sensitivity experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedLog;

impl SamplingStrategy for FixedLog {
    fn name(&self) -> &'static str {
        "fixed-log"
    }

    fn refine(
        &self,
        _pool: &pim_runtime::ThreadPool,
        _model: &PoleResidueModel,
        base: &FrequencyGrid,
        _crossings: &[f64],
    ) -> Result<FrequencyGrid> {
        Ok(base.clone())
    }
}

/// The historical refinement, extracted verbatim: the base grid plus
/// midpoints and geometric means between consecutive Hamiltonian crossings,
/// ±0.1 % neighborhoods around each crossing, and ±5 % guards outside the
/// outermost crossings.
///
/// This is the default strategy; it reproduces the pre-redesign grids
/// bit for bit (the float expressions are the same, in the same order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossingRefined;

impl CrossingRefined {
    /// The crossing-derived extra points, in the exact historical insertion
    /// order (midpoint/geometric pairs, then ±0.1 % neighborhoods, then the
    /// outer ±5 % guards).
    fn crossing_points(crossings: &[f64]) -> Vec<(f64, PointProvenance)> {
        let mut extra = Vec::new();
        for pair in crossings.windows(2) {
            extra.push((0.5 * (pair[0] + pair[1]), PointProvenance::Crossing));
            extra.push(((pair[0] * pair[1]).max(0.0).sqrt(), PointProvenance::Crossing));
        }
        for &w in crossings {
            extra.push((w * 0.999, PointProvenance::Crossing));
            extra.push((w * 1.001, PointProvenance::Crossing));
        }
        if let Some(&last) = crossings.last() {
            extra.push((last * 1.05, PointProvenance::Crossing));
        }
        if let Some(&first) = crossings.first() {
            extra.push(((first * 0.95).max(0.0), PointProvenance::Crossing));
        }
        extra
    }
}

impl SamplingStrategy for CrossingRefined {
    fn name(&self) -> &'static str {
        "crossing-refined"
    }

    fn refine(
        &self,
        _pool: &pim_runtime::ThreadPool,
        _model: &PoleResidueModel,
        base: &FrequencyGrid,
        crossings: &[f64],
    ) -> Result<FrequencyGrid> {
        Ok(base.merged_with(CrossingRefined::crossing_points(crossings)))
    }
}

/// Adaptive bisection: crossing refinement first, then repeated bisection
/// around the Hamiltonian crossings and the under-resolved local `σ_max`
/// maxima until the σ-interpolation error estimate falls below
/// [`Adaptive::tolerance`].
///
/// Each round sweeps `σ_max` over the current grid on the given
/// [`pim_runtime::ThreadPool`] (one evaluate + SVD per new point), then for
/// every interior point estimates the interpolation error — the gap between
/// the sampled `σ_max` and its log-frequency linear interpolation from the
/// two neighbors (the estimate concentrates exactly at under-resolved
/// extrema and crossing neighborhoods). Intervals flanking a point whose
/// error exceeds the (relative) tolerance — and whose σ is within reach of
/// the passivity boundary, see [`Adaptive::sigma_floor`] — are bisected at
/// their geometric midpoint. Rounds stop when no interval qualifies, after
/// [`Adaptive::max_rounds`], or at the [`Adaptive::max_points`] hard cap.
///
/// The refinement is deterministic for every thread count: candidate
/// intervals are scanned in ascending frequency order and the midpoint
/// formulas depend only on the interval endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adaptive {
    /// Relative σ-interpolation error tolerance driving the bisection
    /// (`|σ − σ_interp| > tolerance · max(1, σ)` triggers refinement).
    pub tolerance: f64,
    /// Only chase features whose σ exceeds this floor; sub-unit ripple far
    /// from the passivity boundary is not worth resolving.
    pub sigma_floor: f64,
    /// Maximum number of bisection rounds per assessment.
    pub max_rounds: usize,
    /// Hard cap on the refined grid size.
    pub max_points: usize,
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive { tolerance: 1e-3, sigma_floor: 0.9, max_rounds: 24, max_points: 20_000 }
    }
}

impl Adaptive {
    /// An adaptive strategy with the given interpolation-error tolerance and
    /// the default floor/caps.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Adaptive { tolerance, ..Adaptive::default() }
    }

    /// Geometric midpoint of `(a, b)` (arithmetic when `a` is DC, where the
    /// geometric mean degenerates).
    fn midpoint(a: f64, b: f64) -> f64 {
        if a <= 0.0 {
            0.5 * b
        } else {
            (a * b).sqrt()
        }
    }

    /// `true` when the interval is still wide enough to split (relative
    /// resolution guard against refining forever at a smooth extremum).
    fn splittable(a: f64, b: f64) -> bool {
        b - a > 1e-9 * b.max(1.0)
    }
}

impl SamplingStrategy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn refine(
        &self,
        pool: &pim_runtime::ThreadPool,
        model: &PoleResidueModel,
        base: &FrequencyGrid,
        crossings: &[f64],
    ) -> Result<FrequencyGrid> {
        Ok(self.refine_with_sigma(pool, model, base, crossings)?.0)
    }

    fn refine_with_sigma(
        &self,
        pool: &pim_runtime::ThreadPool,
        model: &PoleResidueModel,
        base: &FrequencyGrid,
        crossings: &[f64],
    ) -> Result<(FrequencyGrid, Option<Vec<f64>>)> {
        // Seed with the historical crossing refinement, so the adaptive grid
        // is always at least as informative as the default strategy's.
        let mut grid = base.merged_with(CrossingRefined::crossing_points(crossings));
        let mut sigmas: Vec<f64> = pool
            .par_map(grid.points(), |_, &w| sigma_max_at(model, w))
            .into_iter()
            .collect::<Result<_>>()?;

        for _ in 0..self.max_rounds {
            if grid.len() >= self.max_points {
                break;
            }
            let w = grid.points();
            // Collect the intervals to bisect, ascending, deduplicated by
            // construction (each interval is pushed at most twice and the
            // grid merge collapses identical midpoints).
            let mut splits: Vec<(f64, f64)> = Vec::new();
            let mark = |a: f64, b: f64, splits: &mut Vec<(f64, f64)>| {
                if Adaptive::splittable(a, b) {
                    splits.push((a, b));
                }
            };
            for k in 1..w.len().saturating_sub(1) {
                let (s0, s1, s2) = (sigmas[k - 1], sigmas[k], sigmas[k + 1]);
                if s0.max(s1).max(s2) < self.sigma_floor {
                    continue;
                }
                // Log-frequency linear interpolation of σ at w[k] from the
                // neighbors (plain linear when the left neighbor is DC).
                let (x0, x1, x2) = if w[k - 1] > 0.0 {
                    (w[k - 1].ln(), w[k].ln(), w[k + 1].ln())
                } else {
                    (w[k - 1], w[k], w[k + 1])
                };
                let t = if x2 > x0 { (x1 - x0) / (x2 - x0) } else { 0.5 };
                let predicted = s0 + t * (s2 - s0);
                let interp_error = (s1 - predicted).abs();
                if interp_error > self.tolerance * s1.abs().max(1.0) {
                    mark(w[k - 1], w[k], &mut splits);
                    mark(w[k], w[k + 1], &mut splits);
                }
            }
            if splits.is_empty() {
                break;
            }
            // An interval flanked by two qualifying points is pushed twice,
            // back to back — drop the duplicates so the budget below is
            // spent on distinct intervals only.
            splits.dedup();
            let budget = self.max_points.saturating_sub(grid.len());
            splits.truncate(budget);
            let new_points: Vec<f64> =
                splits.iter().map(|&(a, b)| Adaptive::midpoint(a, b)).collect();
            let refined = grid
                .merged_with(new_points.iter().map(|&w| (w, PointProvenance::Bisection)).collect());
            if refined.len() == grid.len() {
                break;
            }
            // Evaluate σ only at the genuinely new points, then rebuild the
            // σ array in grid order (old points keep their sampled values).
            // Keyed by the f64 bit pattern: exact lookup, and BTreeMap so no
            // nondeterministic-order container sits in the sampling layer
            // (the lookups below are keyed, but the invariant is cheap).
            let old: std::collections::BTreeMap<u64, f64> =
                grid.points().iter().zip(&sigmas).map(|(&w, &s)| (w.to_bits(), s)).collect();
            let missing: Vec<f64> = refined
                .points()
                .iter()
                .copied()
                .filter(|w| !old.contains_key(&w.to_bits()))
                .collect();
            let fresh: Vec<f64> = pool
                .par_map(&missing, |_, &w| sigma_max_at(model, w))
                .into_iter()
                .collect::<Result<_>>()?;
            let fresh_map: std::collections::BTreeMap<u64, f64> =
                missing.iter().zip(&fresh).map(|(&w, &s)| (w.to_bits(), s)).collect();
            sigmas = refined
                .points()
                .iter()
                .map(|w| {
                    old.get(&w.to_bits())
                        .or_else(|| fresh_map.get(&w.to_bits()))
                        .copied()
                        .expect("every refined grid point is either inherited or freshly sampled")
                })
                .collect();
            grid = refined;
        }
        // The σ samples are exactly `σ_max` at every grid point, in grid
        // order — the assessment can consume them instead of re-sweeping.
        Ok((grid, Some(sigmas)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::{CMat, Complex64, Mat};
    use pim_runtime::ThreadPool;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A 1-port with a very sharp resonance: the σ peak is much narrower
    /// than any coarse log grid spacing.
    fn narrow_peak_model(omega0: f64, q_damping: f64) -> PoleResidueModel {
        let p = c(-q_damping, omega0);
        let r = c(0.9 * q_damping, 0.0);
        PoleResidueModel::new(
            vec![p, p.conj()],
            vec![CMat::from_diag(&[r]), CMat::from_diag(&[r.conj()])],
            Mat::from_diag(&[0.7]),
        )
        .unwrap()
    }

    #[test]
    fn canonicalization_sorts_dedups_and_drops_invalid() {
        let g = FrequencyGrid::from_tagged(vec![
            (3.0, PointProvenance::Seed),
            (f64::NAN, PointProvenance::Seed),
            (-1.0, PointProvenance::Seed),
            (1.0, PointProvenance::Seed),
            (1.0 + f64::EPSILON / 4.0, PointProvenance::Bisection),
            (2.0, PointProvenance::Crossing),
        ]);
        assert_eq!(g.points(), &[1.0, 2.0, 3.0]);
        // The near-duplicate collapsed to the first occurrence, keeping the
        // earlier point's provenance.
        assert_eq!(
            g.provenance(),
            &[PointProvenance::Seed, PointProvenance::Crossing, PointProvenance::Seed]
        );
        assert_eq!(g.count_of(PointProvenance::Crossing), 1);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn enforcement_log_matches_the_historical_formula() {
        // The exact float expressions of the pre-redesign enforcement loop.
        let (band, n) = (1.2e10_f64, 200_usize);
        let top = band * 2.0;
        let bottom = band * 1e-8;
        let mut expected: Vec<f64> = (0..n)
            .map(|k| {
                10f64.powf(
                    bottom.log10() + (top.log10() - bottom.log10()) * k as f64 / (n - 1) as f64,
                )
            })
            .collect();
        expected.insert(0, 0.0);
        let grid = FrequencyGrid::enforcement_log(band, n);
        assert_eq!(grid.len(), expected.len());
        for (a, b) in grid.points().iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn crossing_refined_reproduces_the_historical_assessment_grid() {
        // The exact pre-redesign refinement code, inlined as the oracle.
        let omegas: Vec<f64> = (0..50).map(|k| k as f64 * 37.0).collect();
        let crossings = [400.0, 1000.0, 1010.0, 1500.0];
        let mut oracle: Vec<f64> = omegas.clone();
        for pair in crossings.windows(2) {
            oracle.push(0.5 * (pair[0] + pair[1]));
            oracle.push((pair[0] * pair[1]).max(0.0).sqrt());
        }
        for &w in &crossings {
            oracle.push(w * 0.999);
            oracle.push(w * 1.001);
        }
        oracle.push(crossings.last().unwrap() * 1.05);
        oracle.push((crossings.first().unwrap() * 0.95).max(0.0));
        oracle.retain(|w| w.is_finite() && *w >= 0.0);
        oracle.sort_by(|a, b| a.partial_cmp(b).unwrap());
        oracle.dedup_by(|a, b| (*a - *b).abs() <= f64::EPSILON * a.abs().max(1.0));

        let pool = ThreadPool::new(1);
        let model = narrow_peak_model(1000.0, 50.0);
        let base = FrequencyGrid::from_omegas(&omegas);
        let refined = CrossingRefined.refine(&pool, &model, &base, &crossings).unwrap();
        assert_eq!(refined.len(), oracle.len());
        for (a, b) in refined.points().iter().zip(&oracle) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        // Provenance: seeds plus crossing-derived points, no bisection.
        assert_eq!(refined.count_of(PointProvenance::Bisection), 0);
        assert!(refined.count_of(PointProvenance::Crossing) > 0);
    }

    #[test]
    fn fixed_log_is_a_passthrough() {
        let pool = ThreadPool::new(1);
        let model = narrow_peak_model(1000.0, 50.0);
        let base = FrequencyGrid::from_omegas(&[0.0, 10.0, 100.0]);
        let refined = FixedLog.refine(&pool, &model, &base, &[9.0, 11.0]).unwrap();
        assert_eq!(refined, base);
        assert_eq!(FixedLog.name(), "fixed-log");
    }

    #[test]
    fn adaptive_resolves_a_sub_grid_violation_peak() {
        // Two nearby resonances: the σ>1 band is far narrower than the
        // 20-point log grid spacing and its peak sits away from crossing
        // midpoints, so only bisection can climb it.
        let p1 = c(-2e2, 1.0e6);
        let p2 = c(-6e2, 1.003e6);
        let (r1, r2) = (c(1.8e2, 0.0), c(2.4e2, 0.0));
        let model = PoleResidueModel::new(
            vec![p1, p1.conj(), p2, p2.conj()],
            vec![
                CMat::from_diag(&[r1]),
                CMat::from_diag(&[r1.conj()]),
                CMat::from_diag(&[r2]),
                CMat::from_diag(&[r2.conj()]),
            ],
            Mat::from_diag(&[0.7]),
        )
        .unwrap();
        let sys = pim_statespace::StateSpace::from_pole_residue(&model).unwrap();
        let crossings = crate::check::hamiltonian_crossings(&sys).unwrap();
        assert!(!crossings.is_empty(), "the violating band must produce crossings");
        let pool = ThreadPool::new(1);
        let base = FrequencyGrid::from_omegas(
            &(0..20).map(|k| 10f64.powf(4.0 + 4.0 * k as f64 / 19.0)).collect::<Vec<_>>(),
        );
        let sigma_on = |grid: &FrequencyGrid| {
            grid.points().iter().map(|&w| sigma_max_at(&model, w).unwrap()).fold(0.0_f64, f64::max)
        };
        let coarse_max = sigma_on(&base);
        let crossing_refined = CrossingRefined.refine(&pool, &model, &base, &crossings).unwrap();
        let crossing_max = sigma_on(&crossing_refined);
        let refined = Adaptive::default().refine(&pool, &model, &base, &crossings).unwrap();
        let refined_max = sigma_on(&refined);
        // The true peak, located by brute force on a very dense local grid.
        let true_peak = (0..20_000)
            .map(|k| 0.99e6 + 20.0 * k as f64)
            .map(|w| sigma_max_at(&model, w).unwrap())
            .fold(0.0_f64, f64::max);
        assert!(true_peak > 1.3, "the synthetic band must violate strongly ({true_peak})");
        assert!(coarse_max < 1.0, "the coarse grid must miss the band ({coarse_max})");
        assert!(
            refined_max > 0.995 * true_peak,
            "adaptive refinement must resolve the peak ({refined_max} vs {true_peak})"
        );
        assert!(
            refined_max >= crossing_max,
            "adaptive ({refined_max}) must not be worse than crossing refinement ({crossing_max})"
        );
        assert!(refined.count_of(PointProvenance::Bisection) > 0);
        // Deterministic across thread counts (bit-identical grid).
        let wide = ThreadPool::new(4);
        let again = Adaptive::default().refine(&wide, &model, &base, &crossings).unwrap();
        assert_eq!(again.len(), refined.len());
        for (a, b) in again.points().iter().zip(refined.points()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adaptive_respects_the_point_cap_and_converges_on_smooth_models() {
        let pool = ThreadPool::new(1);
        // A clearly passive, smooth 1-port: nothing above the sigma floor,
        // so no refinement at all.
        let smooth = PoleResidueModel::new(
            vec![c(-100.0, 0.0)],
            vec![CMat::from_diag(&[c(40.0, 0.0)])],
            Mat::from_diag(&[0.2]),
        )
        .unwrap();
        let base = FrequencyGrid::from_omegas(
            &(0..40).map(|k| 10.0 * (k as f64 + 1.0)).collect::<Vec<_>>(),
        );
        let refined = Adaptive::default().refine(&pool, &smooth, &base, &[]).unwrap();
        assert_eq!(refined.len(), base.len(), "smooth sub-floor model needs no refinement");
        // The cap is a hard ceiling even for a violating model.
        let capped = Adaptive { max_points: 25, ..Adaptive::default() };
        let model = narrow_peak_model(1e6, 2e2);
        let wide_base = FrequencyGrid::from_omegas(
            &(0..20).map(|k| 10f64.powf(4.0 + 4.0 * k as f64 / 19.0)).collect::<Vec<_>>(),
        );
        let refined = capped.refine(&pool, &model, &wide_base, &[]).unwrap();
        assert!(refined.len() <= 25 + 2, "cap exceeded: {}", refined.len());
    }

    #[test]
    fn merged_with_keeps_existing_points_on_collision() {
        let base = FrequencyGrid::from_omegas(&[1.0, 2.0]);
        let merged = base.merged_with(vec![
            (2.0, PointProvenance::Bisection),
            (3.0, PointProvenance::Bisection),
        ]);
        assert_eq!(merged.points(), &[1.0, 2.0, 3.0]);
        assert_eq!(
            merged.provenance(),
            &[PointProvenance::Seed, PointProvenance::Seed, PointProvenance::Bisection]
        );
    }
}
