//! Pluggable construction of perturbation norms.
//!
//! The enforcement loop of [`crate::enforce`] is parameterized by a
//! [`PerturbationNorm`] — the per-element Gramian blocks weighting the
//! residue perturbation. This module makes the *construction* of that norm a
//! first-class, pluggable step: [`NormBuilder`] abstracts "given a macromodel,
//! build its perturbation norm", [`NormKind`] names the families so that
//! diagnostics and observers can label which norm an enforcement run used,
//! and [`StandardNorm`] is the built-in builder of the plain L2 norm of
//! eq. (10)–(11) of the paper. The sensitivity-weighted builder of
//! eq. (19)–(21) lives in `pim-core` (it needs the rational weighting model
//! `Ξ̃(s)` from `pim-vectfit`), but it implements the same trait, so the
//! enforcement plumbing treats both — and any future hybrid — uniformly.

use crate::enforce::PerturbationNorm;
use crate::Result;
use pim_statespace::PoleResidueModel;
use std::fmt;

/// Identifies a perturbation-norm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NormKind {
    /// The standard (unweighted) L2 norm: plain controllability Gramians.
    Standard,
    /// The paper's sensitivity-weighted norm: cascade Gramians of
    /// `Ξ̃(s)·δS(s)`.
    SensitivityWeighted,
    /// A trace-normalized blend of the sensitivity-weighted and the
    /// standard Gramians — the middle rung of the recovery ladder: it keeps
    /// part of the accuracy weighting while restoring conditioning from the
    /// unweighted norm.
    Blended,
    /// An application-defined norm; the label identifies it in diagnostics.
    Custom(&'static str),
}

impl fmt::Display for NormKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormKind::Standard => f.write_str("standard"),
            NormKind::SensitivityWeighted => f.write_str("sensitivity-weighted"),
            NormKind::Blended => f.write_str("blended"),
            NormKind::Custom(name) => write!(f, "custom({name})"),
        }
    }
}

/// Builds a [`PerturbationNorm`] for a given macromodel.
///
/// Implementations capture whatever side information the norm family needs
/// (the standard norm needs none; the sensitivity-weighted norm carries the
/// weighting model `Ξ̃(s)`), and [`NormBuilder::build`] instantiates the
/// Gramian blocks for the concrete model about to be enforced.
pub trait NormBuilder {
    /// The family this builder belongs to (used for diagnostics and
    /// observer labeling).
    fn kind(&self) -> NormKind;

    /// Builds the per-element Gramian norm for `model`.
    ///
    /// # Errors
    ///
    /// Propagates realization and Lyapunov-solver failures.
    fn build(&self, model: &PoleResidueModel) -> Result<PerturbationNorm>;
}

/// Builder of the standard (unweighted) L2 perturbation norm.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNorm;

impl NormBuilder for StandardNorm {
    fn kind(&self) -> NormKind {
        NormKind::Standard
    }

    fn build(&self, model: &PoleResidueModel) -> Result<PerturbationNorm> {
        PerturbationNorm::standard(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::{CMat, Complex64, Mat};

    fn one_port() -> PoleResidueModel {
        let p = Complex64::new(-50.0, 1000.0);
        let r = Complex64::new(30.0, 12.0);
        PoleResidueModel::new(
            vec![p, p.conj()],
            vec![CMat::from_diag(&[r]), CMat::from_diag(&[r.conj()])],
            Mat::from_diag(&[0.85]),
        )
        .unwrap()
    }

    #[test]
    fn standard_builder_matches_the_direct_constructor() {
        let model = one_port();
        let built = StandardNorm.build(&model).unwrap();
        let direct = PerturbationNorm::standard(&model).unwrap();
        assert_eq!(StandardNorm.kind(), NormKind::Standard);
        assert_eq!(built.ports(), direct.ports());
        assert_eq!(built.states(), direct.states());
        for (a, b) in built.gramians().iter().zip(direct.gramians()) {
            assert_eq!((a.max_abs_diff(b)).to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn norm_kinds_display_distinctly() {
        let labels: Vec<String> = [
            NormKind::Standard,
            NormKind::SensitivityWeighted,
            NormKind::Blended,
            NormKind::Custom("hybrid-v2"),
        ]
        .iter()
        .map(|k| k.to_string())
        .collect();
        assert_eq!(labels[0], "standard");
        assert_eq!(labels[1], "sensitivity-weighted");
        assert_eq!(labels[2], "blended");
        assert_eq!(labels[3], "custom(hybrid-v2)");
        assert_ne!(NormKind::Custom("a"), NormKind::Custom("b"));
    }
}
