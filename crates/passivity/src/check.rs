//! Passivity assessment: Hamiltonian eigenvalue test and singular-value
//! sweeps.

use crate::grid::{CrossingRefined, FrequencyGrid, SamplingStrategy};
use crate::{PassivityError, Result};
use pim_linalg::eig::eigenvalues;
use pim_linalg::lu::inverse;
use pim_linalg::svd::{singular_values, svd};
use pim_linalg::Mat;
use pim_statespace::{PoleResidueModel, StateSpace};

/// A frequency band over which at least one singular value of the scattering
/// matrix exceeds one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationBand {
    /// Lower edge of the band (rad/s).
    pub omega_low: f64,
    /// Upper edge of the band (rad/s).
    pub omega_high: f64,
    /// Frequency of the worst violation inside the band (rad/s).
    pub omega_peak: f64,
    /// Largest singular value inside the band.
    pub sigma_peak: f64,
}

/// Summary of a passivity assessment.
#[derive(Debug, Clone)]
pub struct PassivityReport {
    /// `true` when no violation was found by either test.
    pub passive: bool,
    /// Worst singular value found over the sweep.
    pub sigma_max: f64,
    /// Frequency (rad/s) at which the worst singular value occurs.
    pub omega_at_sigma_max: f64,
    /// Violation bands identified by the sweep.
    pub bands: Vec<ViolationBand>,
    /// Frequencies (rad/s) of unit-singular-value crossings reported by the
    /// Hamiltonian eigenvalue test.
    pub hamiltonian_crossings: Vec<f64>,
    /// The frequency grid the sweep actually ran on, with per-point
    /// provenance (seed / crossing refinement / adaptive bisection).
    pub grid: FrequencyGrid,
}

/// Builds the Hamiltonian matrix associated with the scattering state-space
/// model (reference \[14\] of the paper). Its purely imaginary eigenvalues are
/// the frequencies at which a singular value of `S(jω)` crosses one.
///
/// The assembly exploits the 2×2 block structure of the Hamiltonian,
///
/// ```text
/// M = [ A11   A12 ]      A11 = A − B·R⁻¹·Dᵀ·C,   A12 = −B·R⁻¹·Bᵀ,
///     [ A21  −A11ᵀ]      A21 = Cᵀ·S⁻¹·C,
/// ```
///
/// with `R = DᵀD − I` and `S = DDᵀ − I` both symmetric: the lower-right
/// block is the negated transpose of the upper-left one and is filled by a
/// copy instead of a second `N×N` matrix-product chain, and the blocks are
/// written straight into the `2N×2N` result. The three `N×N`-output
/// products run on the [`pim_runtime::global`] pool's column-panel kernel
/// ([`Mat::par_matmul_into`]), which is bit-identical to the serial one.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] when `DᵀD − I` is singular (a
/// singular value of the feedthrough matrix equals one, a degenerate
/// boundary case).
pub fn hamiltonian_matrix(sys: &StateSpace) -> Result<Mat> {
    let p = sys.outputs();
    if sys.inputs() != p {
        return Err(PassivityError::InvalidInput(
            "the Hamiltonian passivity test requires a square (P x P) transfer matrix".into(),
        ));
    }
    let n = sys.order();
    let a = sys.a();
    let b = sys.b();
    let c = sys.c();
    let d = sys.d();
    let dt = d.transpose();
    let dtd = dt.matmul(d)?;
    let ddt = d.matmul(&dt)?;
    let r = &dtd - &Mat::identity(p);
    let s = &ddt - &Mat::identity(p);
    let r_inv = inverse(&r).map_err(|_| {
        PassivityError::InvalidInput(
            "DᵀD − I is singular: a feedthrough singular value equals one".into(),
        )
    })?;
    let s_inv = inverse(&s).map_err(|_| {
        PassivityError::InvalidInput(
            "DDᵀ − I is singular: a feedthrough singular value equals one".into(),
        )
    })?;

    // The products with a P-column output are too narrow to split; the
    // three with an N-column output go through the parallel panel kernel.
    let par_matmul = |lhs: &Mat, rhs: &Mat| -> Result<Mat> {
        let mut out = Mat::zeros(lhs.rows(), rhs.cols());
        lhs.par_matmul_into(rhs, &mut out, pim_runtime::global())?;
        Ok(out)
    };
    let br = b.matmul(&r_inv)?; // B (DᵀD − I)⁻¹
    let a11 = a - &par_matmul(&br.matmul(&dt)?, c)?;
    let mut a12 = par_matmul(&br, &b.transpose())?;
    a12.scale_in_place(-1.0);
    let a21 = par_matmul(&c.transpose().matmul(&s_inv)?, c)?;

    let mut m = Mat::zeros(2 * n, 2 * n);
    m.set_block(0, 0, &a11);
    m.set_block(0, n, &a12);
    m.set_block(n, 0, &a21);
    // A22 = −A11ᵀ (R symmetric ⇒ (B·R⁻¹·Dᵀ·C)ᵀ = Cᵀ·D·R⁻¹·Bᵀ).
    for i in 0..n {
        for j in 0..n {
            m[(n + i, n + j)] = -a11[(j, i)];
        }
    }
    Ok(m)
}

/// Frequencies (rad/s, positive, sorted) at which a singular value of the
/// model crosses one, obtained as the purely imaginary eigenvalues of the
/// Hamiltonian matrix.
///
/// # Errors
///
/// See [`hamiltonian_matrix`]; eigenvalue solver failures are propagated.
pub fn hamiltonian_crossings(sys: &StateSpace) -> Result<Vec<f64>> {
    let m = hamiltonian_matrix(sys)?;
    let evs = eigenvalues(&m)?;
    // An eigenvalue is treated as (numerically) purely imaginary when its
    // real part is small *relative to its own magnitude*. The tolerance is
    // deliberately loose: for large, highly non-normal Hamiltonian matrices
    // the computed eigenvalues carry noticeable roundoff, and it is safer to
    // report a few extra candidate frequencies (the singular-value sweep
    // verifies them) than to miss a genuine crossing.
    let mut crossings: Vec<f64> =
        evs.iter().filter(|e| e.im > 0.0 && e.re.abs() <= 1e-4 * e.abs()).map(|e| e.im).collect();
    crossings.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Merge near-duplicates produced by the eigenvalue solver.
    let mut merged: Vec<f64> = Vec::with_capacity(crossings.len());
    for w in crossings {
        if merged.last().is_none_or(|&last| (w - last).abs() > 1e-9 * w.max(1.0)) {
            merged.push(w);
        }
    }
    Ok(merged)
}

/// Returns `true` when the Hamiltonian test reports no unit-singular-value
/// crossing **and** the asymptotic feedthrough is contractive.
///
/// # Errors
///
/// See [`hamiltonian_crossings`].
pub fn is_passive(sys: &StateSpace) -> Result<bool> {
    let d_sv = singular_values(&sys.d().to_complex())?;
    if d_sv.first().copied().unwrap_or(0.0) >= 1.0 {
        return Ok(false);
    }
    Ok(hamiltonian_crossings(sys)?.is_empty())
}

/// Sweeps all singular values of `S(jω)` over the given angular frequencies.
/// Returns one vector of descending singular values per frequency.
///
/// The sweep runs on the [`pim_runtime::global`] pool (each frequency is an
/// independent evaluate + SVD); results are collected by frequency index, so
/// the output is bit-identical to the serial sweep for every `PIM_THREADS`.
///
/// # Errors
///
/// Propagates evaluation and SVD failures.
pub fn singular_value_sweep(model: &PoleResidueModel, omegas: &[f64]) -> Result<Vec<Vec<f64>>> {
    singular_value_sweep_with(pim_runtime::global(), model, omegas)
}

/// [`singular_value_sweep`] on an explicit [`pim_runtime::ThreadPool`] (the
/// determinism test suites compare pools of different sizes bit for bit).
///
/// # Errors
///
/// See [`singular_value_sweep`]; when several frequencies fail, the error of
/// the lowest frequency index is reported regardless of scheduling order.
pub fn singular_value_sweep_with(
    pool: &pim_runtime::ThreadPool,
    model: &PoleResidueModel,
    omegas: &[f64],
) -> Result<Vec<Vec<f64>>> {
    pool.par_map(omegas, |_, &omega| -> Result<Vec<f64>> {
        let s = model.evaluate_at_omega(omega).map_err(PassivityError::StateSpace)?;
        Ok(singular_values(&s)?)
    })
    .into_iter()
    .collect()
}

/// [`singular_value_sweep`] over the points of a [`FrequencyGrid`].
///
/// # Errors
///
/// See [`singular_value_sweep`].
pub fn singular_value_sweep_on(
    model: &PoleResidueModel,
    grid: &FrequencyGrid,
) -> Result<Vec<Vec<f64>>> {
    singular_value_sweep_with(pim_runtime::global(), model, grid.points())
}

/// Builds a complete passivity report for a pole–residue macromodel:
/// Hamiltonian crossings plus a singular-value sweep on `omegas` refined
/// around the crossing frequencies with the default
/// [`CrossingRefined`] strategy (the historical behavior, bit for bit).
///
/// The dense singular-value grid is evaluated on the [`pim_runtime::global`]
/// pool (see [`singular_value_sweep`]); the report is bit-identical for
/// every thread count.
///
/// # Errors
///
/// Propagates realization, eigenvalue and SVD failures.
pub fn assess(model: &PoleResidueModel, omegas: &[f64]) -> Result<PassivityReport> {
    assess_with(pim_runtime::global(), model, omegas)
}

/// [`assess`] with the singular-value grid evaluated on an explicit
/// [`pim_runtime::ThreadPool`].
///
/// # Errors
///
/// See [`assess`].
pub fn assess_with(
    pool: &pim_runtime::ThreadPool,
    model: &PoleResidueModel,
    omegas: &[f64],
) -> Result<PassivityReport> {
    assess_with_sampling(pool, model, &FrequencyGrid::from_omegas(omegas), &CrossingRefined)
}

/// Assesses `model` sweeping **exactly** the given grid: the Hamiltonian
/// crossings still feed the report, but no refinement points are added.
/// This is the verification-grid entry point ("does the model hold up on a
/// grid it was *not* constrained on?").
///
/// # Errors
///
/// See [`assess`].
pub fn assess_on(model: &PoleResidueModel, grid: &FrequencyGrid) -> Result<PassivityReport> {
    assess_with_sampling(pim_runtime::global(), model, grid, &crate::grid::FixedLog)
}

/// The strategy-driven assessment core: computes the Hamiltonian crossings,
/// lets `strategy` refine `base` for this model (see
/// [`SamplingStrategy::refine`]), sweeps the refined grid on `pool`, and
/// assembles the report. [`assess`]/[`assess_with`] delegate here with the
/// default [`CrossingRefined`] strategy; [`assess_on`] with the
/// pass-through [`crate::grid::FixedLog`].
///
/// # Errors
///
/// Propagates realization, eigenvalue, refinement and SVD failures.
pub fn assess_with_sampling(
    pool: &pim_runtime::ThreadPool,
    model: &PoleResidueModel,
    base: &FrequencyGrid,
    strategy: &dyn SamplingStrategy,
) -> Result<PassivityReport> {
    let sys = StateSpace::from_pole_residue(model)?;
    let crossings = hamiltonian_crossings(&sys)?;
    let (grid, cached_sigma) = strategy.refine_with_sigma(pool, model, base, &crossings)?;

    // The report only needs `σ_max` per point; a strategy that sampled the
    // grid while refining (the adaptive bisection) hands those samples back
    // so the grid is decomposed exactly once. `Svd::sigma_max` is the first
    // entry of `singular_values`, so both paths yield the same floats.
    let sigmas: Vec<f64> = match cached_sigma {
        Some(sigmas) => sigmas,
        None => singular_value_sweep_with(pool, model, grid.points())?
            .iter()
            .map(|sv| sv.first().copied().unwrap_or(0.0))
            .collect(),
    };
    let mut sigma_max = 0.0;
    let mut omega_at = 0.0;
    for (k, &s) in sigmas.iter().enumerate() {
        if s > sigma_max {
            sigma_max = s;
            omega_at = grid.points()[k];
        }
    }

    // Violation bands from the sweep.
    let mut bands = Vec::new();
    let mut current: Option<ViolationBand> = None;
    for (k, &s) in sigmas.iter().enumerate() {
        if s > 1.0 {
            let w = grid.points()[k];
            match &mut current {
                Some(band) => {
                    band.omega_high = w;
                    if s > band.sigma_peak {
                        band.sigma_peak = s;
                        band.omega_peak = w;
                    }
                }
                None => {
                    current = Some(ViolationBand {
                        omega_low: w,
                        omega_high: w,
                        omega_peak: w,
                        sigma_peak: s,
                    });
                }
            }
        } else if let Some(band) = current.take() {
            bands.push(band);
        }
    }
    if let Some(band) = current.take() {
        bands.push(band);
    }

    // The passivity verdict is based on the singular-value sweep (refined
    // around the Hamiltonian candidate frequencies): the Hamiltonian
    // eigenvalues locate candidate crossings very reliably, but deciding
    // passivity purely from their imaginary-axis classification is too
    // sensitive to eigenvalue roundoff for large models.
    let passive = bands.is_empty() && sigma_max <= 1.0;
    Ok(PassivityReport {
        passive,
        sigma_max,
        omega_at_sigma_max: omega_at,
        bands,
        hamiltonian_crossings: crossings,
        grid,
    })
}

/// Largest singular value of the model's scattering matrix at one frequency,
/// together with the corresponding singular vectors (used by the constraint
/// linearization).
///
/// # Errors
///
/// Propagates evaluation and SVD failures.
pub fn sigma_max_at(model: &PoleResidueModel, omega: f64) -> Result<f64> {
    let s = model.evaluate_at_omega(omega).map_err(PassivityError::StateSpace)?;
    Ok(svd(&s)?.sigma_max())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::{CMat, Complex64};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A clearly passive 1-port: S(s) = k/(s+a) with k < a and |D| < 1.
    fn passive_model() -> PoleResidueModel {
        PoleResidueModel::new(
            vec![c(-100.0, 0.0)],
            vec![CMat::from_diag(&[c(40.0, 0.0)])],
            Mat::from_diag(&[0.2]),
        )
        .unwrap()
    }

    /// A 1-port with a localized passivity violation: a resonant pair whose
    /// peak pushes the magnitude slightly above one.
    fn violating_model() -> PoleResidueModel {
        let p = c(-50.0, 1000.0);
        let r = c(30.0, 12.0);
        PoleResidueModel::new(
            vec![p, p.conj()],
            vec![CMat::from_diag(&[r]), CMat::from_diag(&[r.conj()])],
            Mat::from_diag(&[0.85]),
        )
        .unwrap()
    }

    #[test]
    fn passive_model_passes_all_tests() {
        let m = passive_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(is_passive(&sys).unwrap());
        assert!(hamiltonian_crossings(&sys).unwrap().is_empty());
        let omegas: Vec<f64> = (0..100).map(|k| k as f64 * 20.0).collect();
        let report = assess(&m, &omegas).unwrap();
        assert!(report.passive);
        assert!(report.sigma_max <= 1.0);
        assert!(report.bands.is_empty());
    }

    #[test]
    fn violating_model_is_flagged_with_band_location() {
        let m = violating_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(!is_passive(&sys).unwrap());
        let crossings = hamiltonian_crossings(&sys).unwrap();
        assert!(!crossings.is_empty());
        // The violation must be near the resonance at 1000 rad/s.
        assert!(crossings.iter().any(|&w| (w - 1000.0).abs() < 300.0));
        let omegas: Vec<f64> = (1..400).map(|k| k as f64 * 5.0).collect();
        let report = assess(&m, &omegas).unwrap();
        assert!(!report.passive);
        assert!(report.sigma_max > 1.0);
        assert!(!report.bands.is_empty());
        let band = report.bands[0];
        assert!(band.omega_peak > 500.0 && band.omega_peak < 1500.0);
        assert!(band.sigma_peak > 1.0);
        assert!(band.omega_low <= band.omega_peak && band.omega_peak <= band.omega_high);
    }

    #[test]
    fn sweep_matches_direct_evaluation() {
        let m = violating_model();
        let omegas = vec![0.0, 500.0, 1000.0, 2000.0];
        let sweep = singular_value_sweep(&m, &omegas).unwrap();
        assert_eq!(sweep.len(), 4);
        for (k, &w) in omegas.iter().enumerate() {
            let direct = sigma_max_at(&m, w).unwrap();
            assert!((sweep[k][0] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn hamiltonian_crossings_match_sweep_crossings() {
        // The singular value of the violating model crosses 1 exactly at the
        // Hamiltonian crossing frequencies.
        let m = violating_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        let crossings = hamiltonian_crossings(&sys).unwrap();
        for &w in &crossings {
            let s = sigma_max_at(&m, w).unwrap();
            assert!((s - 1.0).abs() < 1e-6, "sigma at crossing {w} is {s}");
        }
    }

    #[test]
    fn non_square_feedthrough_at_unit_singular_value_is_rejected() {
        // D with a singular value exactly 1 makes the Hamiltonian undefined.
        let m = PoleResidueModel::new(
            vec![c(-1.0, 0.0)],
            vec![CMat::from_diag(&[c(0.1, 0.0)])],
            Mat::from_diag(&[1.0]),
        )
        .unwrap();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(hamiltonian_matrix(&sys).is_err());
    }

    #[test]
    fn assess_on_sweeps_exactly_the_given_grid() {
        let m = violating_model();
        let omegas: Vec<f64> = (1..200).map(|k| k as f64 * 10.0).collect();
        let grid = FrequencyGrid::from_omegas(&omegas);
        let report = assess_on(&m, &grid).unwrap();
        // No refinement: the report grid is the input grid, point for point.
        assert_eq!(report.grid.points(), grid.points());
        assert!(!report.passive);
        // The default assess refines around crossings, so its grid is a
        // strict superset and its peak estimate at least as good.
        let refined = assess(&m, &omegas).unwrap();
        assert!(refined.grid.len() > grid.len());
        assert!(refined.sigma_max >= report.sigma_max);
        assert_eq!(refined.grid.count_of(crate::grid::PointProvenance::Seed), grid.len());
    }

    #[test]
    fn assess_with_sampling_crossing_refined_matches_assess_bit_for_bit() {
        let m = violating_model();
        let omegas: Vec<f64> = (0..150).map(|k| k as f64 * 13.0).collect();
        let direct = assess(&m, &omegas).unwrap();
        let sampled = assess_with_sampling(
            &pim_runtime::ThreadPool::new(1),
            &m,
            &FrequencyGrid::from_omegas(&omegas),
            &CrossingRefined,
        )
        .unwrap();
        assert_eq!(direct.passive, sampled.passive);
        assert_eq!(direct.sigma_max.to_bits(), sampled.sigma_max.to_bits());
        assert_eq!(direct.omega_at_sigma_max.to_bits(), sampled.omega_at_sigma_max.to_bits());
        assert_eq!(direct.bands.len(), sampled.bands.len());
        assert_eq!(direct.grid.len(), sampled.grid.len());
        for (a, b) in direct.grid.points().iter().zip(sampled.grid.points()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A passive model has no Hamiltonian crossings; every strategy must
    /// accept the empty crossing list.
    #[test]
    fn strategies_handle_a_model_without_crossings() {
        use crate::grid::{Adaptive, FixedLog, SamplingStrategy};
        let m = passive_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        let crossings = hamiltonian_crossings(&sys).unwrap();
        assert!(crossings.is_empty());
        let pool = pim_runtime::ThreadPool::new(1);
        let base =
            FrequencyGrid::from_omegas(&(0..60).map(|k| k as f64 * 20.0).collect::<Vec<_>>());
        for strategy in [&FixedLog as &dyn SamplingStrategy, &CrossingRefined, &Adaptive::default()]
        {
            let refined = strategy.refine(&pool, &m, &base, &crossings).unwrap();
            assert!(refined.len() >= base.len(), "{} shrank the grid", strategy.name());
            let report = assess_with_sampling(&pool, &m, &base, strategy).unwrap();
            assert!(report.passive, "{}: passive model misjudged", strategy.name());
        }
    }

    /// Near-degenerate (clustered) crossings: two resonant pairs whose
    /// violation bands nearly coincide produce crossings a fraction of a
    /// percent apart. The refinement must keep distinct points distinct,
    /// dedup the coincident ones, and the adaptive strategy must still
    /// resolve the merged peak.
    #[test]
    fn clustered_crossings_are_deduped_not_lost() {
        use crate::grid::{Adaptive, SamplingStrategy};
        let p1 = c(-8.0, 1000.0);
        let p2 = c(-8.0, 1004.0);
        let r = c(9.0, 0.0);
        let m = PoleResidueModel::new(
            vec![p1, p1.conj(), p2, p2.conj()],
            vec![
                CMat::from_diag(&[r]),
                CMat::from_diag(&[r.conj()]),
                CMat::from_diag(&[r]),
                CMat::from_diag(&[r.conj()]),
            ],
            Mat::from_diag(&[0.2]),
        )
        .unwrap();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        let crossings = hamiltonian_crossings(&sys).unwrap();
        assert!(crossings.len() >= 2, "expected a crossing cluster, got {crossings:?}");
        let spread = crossings.last().unwrap() - crossings.first().unwrap();
        assert!(spread < 0.1 * crossings[0], "crossings should be clustered, spread {spread}");
        let pool = pim_runtime::ThreadPool::new(1);
        // A coarse base that cannot see the cluster on its own.
        let base =
            FrequencyGrid::from_omegas(&(1..20).map(|k| k as f64 * 100.0).collect::<Vec<_>>());
        let refined = CrossingRefined.refine(&pool, &m, &base, &crossings).unwrap();
        for w in refined.points().windows(2) {
            assert!(w[1] > w[0], "grid must stay strictly increasing after dedup");
        }
        let report = assess_with_sampling(&pool, &m, &base, &Adaptive::default()).unwrap();
        assert!(!report.passive);
        assert!(report.sigma_max > 1.0);
        assert!(
            (report.omega_at_sigma_max - 1000.0).abs() < 100.0,
            "peak must be located inside the cluster, got {}",
            report.omega_at_sigma_max
        );
    }

    /// A crossing at (numerically near) ω = 0: a model whose DC gain sits
    /// just above one. The ±0.1 % neighborhood and the ±5 % guard collapse
    /// toward zero without producing negative frequencies, and the
    /// strategies must classify the DC violation.
    #[test]
    fn crossing_at_dc_is_handled() {
        use crate::grid::{Adaptive, SamplingStrategy};
        // S(0) = d + r/|p| = 0.6 + 0.45 > 1, decaying above ω ≈ |p|.
        let m = PoleResidueModel::new(
            vec![c(-50.0, 0.0)],
            vec![CMat::from_diag(&[c(22.5, 0.0)])],
            Mat::from_diag(&[0.6]),
        )
        .unwrap();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        let crossings = hamiltonian_crossings(&sys).unwrap();
        assert!(!crossings.is_empty(), "the DC violation must produce a crossing");
        let pool = pim_runtime::ThreadPool::new(1);
        let base = FrequencyGrid::from_omegas(
            &std::iter::once(0.0).chain((0..40).map(|k| 2.0 * 1.3f64.powi(k))).collect::<Vec<_>>(),
        );
        for strategy in [&CrossingRefined as &dyn SamplingStrategy, &Adaptive::default()] {
            let refined = strategy.refine(&pool, &m, &base, &crossings).unwrap();
            assert!(refined.points().iter().all(|&w| w >= 0.0), "{}", strategy.name());
            assert_eq!(
                refined.points()[0].to_bits(),
                0.0f64.to_bits(),
                "{}: DC point lost",
                strategy.name()
            );
            let report = assess_with_sampling(&pool, &m, &base, strategy).unwrap();
            assert!(!report.passive, "{}: DC violation missed", strategy.name());
            assert!(
                report.omega_at_sigma_max < crossings[0],
                "{}: the violation lives below the first crossing",
                strategy.name()
            );
        }
    }

    #[test]
    fn multiport_passive_model() {
        // A diagonal 2-port with two passive reflection coefficients.
        let m = PoleResidueModel::new(
            vec![c(-200.0, 0.0)],
            vec![CMat::from_diag(&[c(50.0, 0.0), c(30.0, 0.0)])],
            Mat::from_diag(&[0.3, -0.2]),
        )
        .unwrap();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(is_passive(&sys).unwrap());
        let omegas: Vec<f64> = (0..50).map(|k| k as f64 * 40.0).collect();
        let report = assess(&m, &omegas).unwrap();
        assert!(report.passive);
    }
}
