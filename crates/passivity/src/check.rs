//! Passivity assessment: Hamiltonian eigenvalue test and singular-value
//! sweeps.

use crate::{PassivityError, Result};
use pim_linalg::eig::eigenvalues;
use pim_linalg::lu::inverse;
use pim_linalg::svd::{singular_values, svd};
use pim_linalg::Mat;
use pim_statespace::{PoleResidueModel, StateSpace};

/// A frequency band over which at least one singular value of the scattering
/// matrix exceeds one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationBand {
    /// Lower edge of the band (rad/s).
    pub omega_low: f64,
    /// Upper edge of the band (rad/s).
    pub omega_high: f64,
    /// Frequency of the worst violation inside the band (rad/s).
    pub omega_peak: f64,
    /// Largest singular value inside the band.
    pub sigma_peak: f64,
}

/// Summary of a passivity assessment.
#[derive(Debug, Clone)]
pub struct PassivityReport {
    /// `true` when no violation was found by either test.
    pub passive: bool,
    /// Worst singular value found over the sweep.
    pub sigma_max: f64,
    /// Frequency (rad/s) at which the worst singular value occurs.
    pub omega_at_sigma_max: f64,
    /// Violation bands identified by the sweep.
    pub bands: Vec<ViolationBand>,
    /// Frequencies (rad/s) of unit-singular-value crossings reported by the
    /// Hamiltonian eigenvalue test.
    pub hamiltonian_crossings: Vec<f64>,
}

/// Builds the Hamiltonian matrix associated with the scattering state-space
/// model (reference \[14\] of the paper). Its purely imaginary eigenvalues are
/// the frequencies at which a singular value of `S(jω)` crosses one.
///
/// The assembly exploits the 2×2 block structure of the Hamiltonian,
///
/// ```text
/// M = [ A11   A12 ]      A11 = A − B·R⁻¹·Dᵀ·C,   A12 = −B·R⁻¹·Bᵀ,
///     [ A21  −A11ᵀ]      A21 = Cᵀ·S⁻¹·C,
/// ```
///
/// with `R = DᵀD − I` and `S = DDᵀ − I` both symmetric: the lower-right
/// block is the negated transpose of the upper-left one and is filled by a
/// copy instead of a second `N×N` matrix-product chain, and the blocks are
/// written straight into the `2N×2N` result. The three `N×N`-output
/// products run on the [`pim_runtime::global`] pool's column-panel kernel
/// ([`Mat::par_matmul_into`]), which is bit-identical to the serial one.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] when `DᵀD − I` is singular (a
/// singular value of the feedthrough matrix equals one, a degenerate
/// boundary case).
pub fn hamiltonian_matrix(sys: &StateSpace) -> Result<Mat> {
    let p = sys.outputs();
    if sys.inputs() != p {
        return Err(PassivityError::InvalidInput(
            "the Hamiltonian passivity test requires a square (P x P) transfer matrix".into(),
        ));
    }
    let n = sys.order();
    let a = sys.a();
    let b = sys.b();
    let c = sys.c();
    let d = sys.d();
    let dt = d.transpose();
    let dtd = dt.matmul(d)?;
    let ddt = d.matmul(&dt)?;
    let r = &dtd - &Mat::identity(p);
    let s = &ddt - &Mat::identity(p);
    let r_inv = inverse(&r).map_err(|_| {
        PassivityError::InvalidInput(
            "DᵀD − I is singular: a feedthrough singular value equals one".into(),
        )
    })?;
    let s_inv = inverse(&s).map_err(|_| {
        PassivityError::InvalidInput(
            "DDᵀ − I is singular: a feedthrough singular value equals one".into(),
        )
    })?;

    // The products with a P-column output are too narrow to split; the
    // three with an N-column output go through the parallel panel kernel.
    let par_matmul = |lhs: &Mat, rhs: &Mat| -> Result<Mat> {
        let mut out = Mat::zeros(lhs.rows(), rhs.cols());
        lhs.par_matmul_into(rhs, &mut out, pim_runtime::global())?;
        Ok(out)
    };
    let br = b.matmul(&r_inv)?; // B (DᵀD − I)⁻¹
    let a11 = a - &par_matmul(&br.matmul(&dt)?, c)?;
    let mut a12 = par_matmul(&br, &b.transpose())?;
    a12.scale_in_place(-1.0);
    let a21 = par_matmul(&c.transpose().matmul(&s_inv)?, c)?;

    let mut m = Mat::zeros(2 * n, 2 * n);
    m.set_block(0, 0, &a11);
    m.set_block(0, n, &a12);
    m.set_block(n, 0, &a21);
    // A22 = −A11ᵀ (R symmetric ⇒ (B·R⁻¹·Dᵀ·C)ᵀ = Cᵀ·D·R⁻¹·Bᵀ).
    for i in 0..n {
        for j in 0..n {
            m[(n + i, n + j)] = -a11[(j, i)];
        }
    }
    Ok(m)
}

/// Frequencies (rad/s, positive, sorted) at which a singular value of the
/// model crosses one, obtained as the purely imaginary eigenvalues of the
/// Hamiltonian matrix.
///
/// # Errors
///
/// See [`hamiltonian_matrix`]; eigenvalue solver failures are propagated.
pub fn hamiltonian_crossings(sys: &StateSpace) -> Result<Vec<f64>> {
    let m = hamiltonian_matrix(sys)?;
    let evs = eigenvalues(&m)?;
    // An eigenvalue is treated as (numerically) purely imaginary when its
    // real part is small *relative to its own magnitude*. The tolerance is
    // deliberately loose: for large, highly non-normal Hamiltonian matrices
    // the computed eigenvalues carry noticeable roundoff, and it is safer to
    // report a few extra candidate frequencies (the singular-value sweep
    // verifies them) than to miss a genuine crossing.
    let mut crossings: Vec<f64> =
        evs.iter().filter(|e| e.im > 0.0 && e.re.abs() <= 1e-4 * e.abs()).map(|e| e.im).collect();
    crossings.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Merge near-duplicates produced by the eigenvalue solver.
    let mut merged: Vec<f64> = Vec::with_capacity(crossings.len());
    for w in crossings {
        if merged.last().is_none_or(|&last| (w - last).abs() > 1e-9 * w.max(1.0)) {
            merged.push(w);
        }
    }
    Ok(merged)
}

/// Returns `true` when the Hamiltonian test reports no unit-singular-value
/// crossing **and** the asymptotic feedthrough is contractive.
///
/// # Errors
///
/// See [`hamiltonian_crossings`].
pub fn is_passive(sys: &StateSpace) -> Result<bool> {
    let d_sv = singular_values(&sys.d().to_complex())?;
    if d_sv.first().copied().unwrap_or(0.0) >= 1.0 {
        return Ok(false);
    }
    Ok(hamiltonian_crossings(sys)?.is_empty())
}

/// Sweeps all singular values of `S(jω)` over the given angular frequencies.
/// Returns one vector of descending singular values per frequency.
///
/// The sweep runs on the [`pim_runtime::global`] pool (each frequency is an
/// independent evaluate + SVD); results are collected by frequency index, so
/// the output is bit-identical to the serial sweep for every `PIM_THREADS`.
///
/// # Errors
///
/// Propagates evaluation and SVD failures.
pub fn singular_value_sweep(model: &PoleResidueModel, omegas: &[f64]) -> Result<Vec<Vec<f64>>> {
    singular_value_sweep_with(pim_runtime::global(), model, omegas)
}

/// [`singular_value_sweep`] on an explicit [`pim_runtime::ThreadPool`] (the
/// determinism test suites compare pools of different sizes bit for bit).
///
/// # Errors
///
/// See [`singular_value_sweep`]; when several frequencies fail, the error of
/// the lowest frequency index is reported regardless of scheduling order.
pub fn singular_value_sweep_with(
    pool: &pim_runtime::ThreadPool,
    model: &PoleResidueModel,
    omegas: &[f64],
) -> Result<Vec<Vec<f64>>> {
    pool.par_map(omegas, |_, &omega| -> Result<Vec<f64>> {
        let s = model.evaluate_at_omega(omega).map_err(PassivityError::StateSpace)?;
        Ok(singular_values(&s)?)
    })
    .into_iter()
    .collect()
}

/// Builds a complete passivity report for a pole–residue macromodel:
/// Hamiltonian crossings plus a singular-value sweep on `omegas` refined
/// around the crossing frequencies.
///
/// The dense singular-value grid is evaluated on the [`pim_runtime::global`]
/// pool (see [`singular_value_sweep`]); the report is bit-identical for
/// every thread count.
///
/// # Errors
///
/// Propagates realization, eigenvalue and SVD failures.
pub fn assess(model: &PoleResidueModel, omegas: &[f64]) -> Result<PassivityReport> {
    assess_with(pim_runtime::global(), model, omegas)
}

/// [`assess`] with the singular-value grid evaluated on an explicit
/// [`pim_runtime::ThreadPool`].
///
/// # Errors
///
/// See [`assess`].
pub fn assess_with(
    pool: &pim_runtime::ThreadPool,
    model: &PoleResidueModel,
    omegas: &[f64],
) -> Result<PassivityReport> {
    let sys = StateSpace::from_pole_residue(model)?;
    let crossings = hamiltonian_crossings(&sys)?;

    // Refine the sweep grid: original samples plus points between and around
    // consecutive crossings (violation extrema live between crossings).
    let mut grid: Vec<f64> = omegas.to_vec();
    for pair in crossings.windows(2) {
        grid.push(0.5 * (pair[0] + pair[1]));
        grid.push((pair[0] * pair[1]).max(0.0).sqrt());
    }
    for &w in &crossings {
        grid.push(w * 0.999);
        grid.push(w * 1.001);
    }
    if let Some(&last) = crossings.last() {
        grid.push(last * 1.05);
    }
    if let Some(&first) = crossings.first() {
        grid.push((first * 0.95).max(0.0));
    }
    grid.retain(|w| w.is_finite() && *w >= 0.0);
    grid.sort_by(|a, b| a.partial_cmp(b).unwrap());
    grid.dedup_by(|a, b| (*a - *b).abs() <= f64::EPSILON * a.abs().max(1.0));

    let sweep = singular_value_sweep_with(pool, model, &grid)?;
    let mut sigma_max = 0.0;
    let mut omega_at = 0.0;
    for (k, sv) in sweep.iter().enumerate() {
        let s = sv.first().copied().unwrap_or(0.0);
        if s > sigma_max {
            sigma_max = s;
            omega_at = grid[k];
        }
    }

    // Violation bands from the sweep.
    let mut bands = Vec::new();
    let mut current: Option<ViolationBand> = None;
    for (k, sv) in sweep.iter().enumerate() {
        let s = sv.first().copied().unwrap_or(0.0);
        if s > 1.0 {
            let w = grid[k];
            match &mut current {
                Some(band) => {
                    band.omega_high = w;
                    if s > band.sigma_peak {
                        band.sigma_peak = s;
                        band.omega_peak = w;
                    }
                }
                None => {
                    current = Some(ViolationBand {
                        omega_low: w,
                        omega_high: w,
                        omega_peak: w,
                        sigma_peak: s,
                    });
                }
            }
        } else if let Some(band) = current.take() {
            bands.push(band);
        }
    }
    if let Some(band) = current.take() {
        bands.push(band);
    }

    // The passivity verdict is based on the singular-value sweep (refined
    // around the Hamiltonian candidate frequencies): the Hamiltonian
    // eigenvalues locate candidate crossings very reliably, but deciding
    // passivity purely from their imaginary-axis classification is too
    // sensitive to eigenvalue roundoff for large models.
    let passive = bands.is_empty() && sigma_max <= 1.0;
    Ok(PassivityReport {
        passive,
        sigma_max,
        omega_at_sigma_max: omega_at,
        bands,
        hamiltonian_crossings: crossings,
    })
}

/// Largest singular value of the model's scattering matrix at one frequency,
/// together with the corresponding singular vectors (used by the constraint
/// linearization).
///
/// # Errors
///
/// Propagates evaluation and SVD failures.
pub fn sigma_max_at(model: &PoleResidueModel, omega: f64) -> Result<f64> {
    let s = model.evaluate_at_omega(omega).map_err(PassivityError::StateSpace)?;
    Ok(svd(&s)?.sigma_max())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::{CMat, Complex64};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A clearly passive 1-port: S(s) = k/(s+a) with k < a and |D| < 1.
    fn passive_model() -> PoleResidueModel {
        PoleResidueModel::new(
            vec![c(-100.0, 0.0)],
            vec![CMat::from_diag(&[c(40.0, 0.0)])],
            Mat::from_diag(&[0.2]),
        )
        .unwrap()
    }

    /// A 1-port with a localized passivity violation: a resonant pair whose
    /// peak pushes the magnitude slightly above one.
    fn violating_model() -> PoleResidueModel {
        let p = c(-50.0, 1000.0);
        let r = c(30.0, 12.0);
        PoleResidueModel::new(
            vec![p, p.conj()],
            vec![CMat::from_diag(&[r]), CMat::from_diag(&[r.conj()])],
            Mat::from_diag(&[0.85]),
        )
        .unwrap()
    }

    #[test]
    fn passive_model_passes_all_tests() {
        let m = passive_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(is_passive(&sys).unwrap());
        assert!(hamiltonian_crossings(&sys).unwrap().is_empty());
        let omegas: Vec<f64> = (0..100).map(|k| k as f64 * 20.0).collect();
        let report = assess(&m, &omegas).unwrap();
        assert!(report.passive);
        assert!(report.sigma_max <= 1.0);
        assert!(report.bands.is_empty());
    }

    #[test]
    fn violating_model_is_flagged_with_band_location() {
        let m = violating_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(!is_passive(&sys).unwrap());
        let crossings = hamiltonian_crossings(&sys).unwrap();
        assert!(!crossings.is_empty());
        // The violation must be near the resonance at 1000 rad/s.
        assert!(crossings.iter().any(|&w| (w - 1000.0).abs() < 300.0));
        let omegas: Vec<f64> = (1..400).map(|k| k as f64 * 5.0).collect();
        let report = assess(&m, &omegas).unwrap();
        assert!(!report.passive);
        assert!(report.sigma_max > 1.0);
        assert!(!report.bands.is_empty());
        let band = report.bands[0];
        assert!(band.omega_peak > 500.0 && band.omega_peak < 1500.0);
        assert!(band.sigma_peak > 1.0);
        assert!(band.omega_low <= band.omega_peak && band.omega_peak <= band.omega_high);
    }

    #[test]
    fn sweep_matches_direct_evaluation() {
        let m = violating_model();
        let omegas = vec![0.0, 500.0, 1000.0, 2000.0];
        let sweep = singular_value_sweep(&m, &omegas).unwrap();
        assert_eq!(sweep.len(), 4);
        for (k, &w) in omegas.iter().enumerate() {
            let direct = sigma_max_at(&m, w).unwrap();
            assert!((sweep[k][0] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn hamiltonian_crossings_match_sweep_crossings() {
        // The singular value of the violating model crosses 1 exactly at the
        // Hamiltonian crossing frequencies.
        let m = violating_model();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        let crossings = hamiltonian_crossings(&sys).unwrap();
        for &w in &crossings {
            let s = sigma_max_at(&m, w).unwrap();
            assert!((s - 1.0).abs() < 1e-6, "sigma at crossing {w} is {s}");
        }
    }

    #[test]
    fn non_square_feedthrough_at_unit_singular_value_is_rejected() {
        // D with a singular value exactly 1 makes the Hamiltonian undefined.
        let m = PoleResidueModel::new(
            vec![c(-1.0, 0.0)],
            vec![CMat::from_diag(&[c(0.1, 0.0)])],
            Mat::from_diag(&[1.0]),
        )
        .unwrap();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(hamiltonian_matrix(&sys).is_err());
    }

    #[test]
    fn multiport_passive_model() {
        // A diagonal 2-port with two passive reflection coefficients.
        let m = PoleResidueModel::new(
            vec![c(-200.0, 0.0)],
            vec![CMat::from_diag(&[c(50.0, 0.0), c(30.0, 0.0)])],
            Mat::from_diag(&[0.3, -0.2]),
        )
        .unwrap();
        let sys = StateSpace::from_pole_residue(&m).unwrap();
        assert!(is_passive(&sys).unwrap());
        let omegas: Vec<f64> = (0..50).map(|k| k as f64 * 40.0).collect();
        let report = assess(&m, &omegas).unwrap();
        assert!(report.passive);
    }
}
