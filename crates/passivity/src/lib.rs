//! # pim-passivity
//!
//! Passivity assessment and enforcement for scattering macromodels, as used
//! by the DATE 2014 sensitivity-weighted passivity enforcement reproduction:
//!
//! * [`check`] — Hamiltonian-matrix passivity test (imaginary eigenvalues
//!   locate the unit-singular-value crossings) and singular-value sweeps
//!   (`σ_i(jω)` versus frequency, Fig. 4 of the paper);
//! * [`constraints`] — linearization of the local constraints
//!   `σ_i(jω_ν) + δσ_i(jω_ν) ≤ 1` (eq. 8) with respect to a perturbation of
//!   the state-space output matrix `C`;
//! * [`qp`] — the convex quadratic program of eq. (9): minimize a
//!   Gramian-weighted norm of `δC` under the linear constraints, solved by a
//!   dual coordinate-ascent (Hildreth) method;
//! * [`enforce`] — the outer iterative perturbation loop. The loop is
//!   parameterized by the per-element Gramians that define the perturbation
//!   norm, so the *same* code runs both the standard L2 enforcement (eq. 10)
//!   and the sensitivity-weighted enforcement of the paper (eq. 20–21, built
//!   by `pim-core`), and it reports every outer iteration to an optional
//!   [`enforce::EnforcementObserver`];
//! * [`norm`] — the pluggable norm-construction layer: [`norm::NormKind`]
//!   names the norm families, [`norm::NormBuilder`] abstracts building a
//!   [`enforce::PerturbationNorm`] for a model, and [`norm::StandardNorm`]
//!   is the built-in unweighted builder;
//! * [`grid`] — the first-class sampling layer: [`grid::FrequencyGrid`]
//!   (sorted, deduplicated, provenance-tagged sweep points) and the
//!   pluggable [`grid::SamplingStrategy`] — [`grid::FixedLog`],
//!   [`grid::CrossingRefined`] (the historical refinement, bit for bit) and
//!   [`grid::Adaptive`] (bisection around Hamiltonian crossings and local
//!   σ maxima until the interpolation error falls below tolerance) — that
//!   drives every assessment and all three enforcement grids.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod constraints;
pub mod enforce;
pub mod grid;
pub mod norm;
pub mod qp;

pub use check::{
    assess, assess_on, assess_with_sampling, hamiltonian_crossings, is_passive,
    singular_value_sweep, singular_value_sweep_on, PassivityReport, ViolationBand,
};
pub use enforce::{
    enforce_passivity, enforce_passivity_observed, EnforcementConfig, EnforcementIteration,
    EnforcementObserver, EnforcementOutcome, PerturbationNorm, RobustnessInfo, TrustRegionConfig,
};
pub use grid::{
    Adaptive, CrossingRefined, FixedLog, FrequencyGrid, PointProvenance, SamplingStrategy,
};
pub use norm::{NormBuilder, NormKind, StandardNorm};

use std::error::Error;
use std::fmt;

/// Post-mortem of a failed enforcement run, carried by
/// [`PassivityError::NotConverged`] so failures are debuggable without a
/// rerun: what the guard saw, where the step control ended up, and how the
/// worst singular value was moving when the loop gave up.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NotConvergedDiagnostics {
    /// `true` when the divergence guard tripped; `false` when the iteration
    /// budget ran out.
    pub guard_triggered: bool,
    /// Consecutive bottomed-out-and-grew backtracking steps at exit (the
    /// guard's counter).
    pub bottomed_out: usize,
    /// Step fraction of the last accepted perturbation (1.0 = full step).
    pub last_step: f64,
    /// Tail of the per-iteration `σ_max` trajectory (up to the last 8
    /// entries, oldest first).
    pub sigma_tail: Vec<f64>,
    /// Whether the trust-region controller had engaged.
    pub trust_region_engaged: bool,
    /// Trust-region radius at exit, when engaged.
    pub trust_region_radius: Option<f64>,
    /// Largest relative Tikhonov λ the adaptive QP damping applied.
    pub qp_lambda_max: f64,
    /// Largest post-damping Gramian condition estimate.
    pub qp_condition_max: f64,
    /// Audit `σ_max` of the best-so-far model, filled in by callers that
    /// audit the `best` model once at failure-cache time (the pipeline does;
    /// the raw loop leaves it `None`).
    pub best_sigma_max: Option<f64>,
}

impl fmt::Display for NotConvergedDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cause = if self.guard_triggered { "divergence guard" } else { "iteration budget" };
        write!(f, "{cause}; bottomed-out x{}, last step {}", self.bottomed_out, self.last_step)?;
        if self.trust_region_engaged {
            write!(f, ", trust region engaged")?;
            if let Some(r) = self.trust_region_radius {
                write!(f, " (radius {r:.3e})")?;
            }
        }
        if self.qp_lambda_max > 0.0 {
            write!(f, ", qp lambda {:.1e}", self.qp_lambda_max)?;
        }
        if let Some(s) = self.best_sigma_max {
            write!(f, ", best audit sigma {s:.6}")?;
        }
        if !self.sigma_tail.is_empty() {
            write!(f, "; sigma tail [")?;
            for (k, s) in self.sigma_tail.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s:.6}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Errors produced by the passivity tooling.
#[derive(Debug)]
pub enum PassivityError {
    /// The underlying linear algebra kernel failed.
    Linalg(pim_linalg::LinalgError),
    /// Model manipulation failed.
    StateSpace(pim_statespace::StateSpaceError),
    /// The input model or configuration is invalid.
    InvalidInput(String),
    /// The enforcement loop exhausted its iteration budget — or tripped the
    /// divergence guard — without producing a passive model.
    NotConverged {
        /// Number of outer iterations performed.
        iterations: usize,
        /// Worst singular value at the end of the loop.
        sigma_max: f64,
        /// The most passive (lowest `σ_max`) model seen during the run, so
        /// a failed enforcement still yields its best iterate. Boxed to
        /// keep the error type small; `None` only when the loop failed
        /// before its first assessment.
        best: Option<Box<pim_statespace::PoleResidueModel>>,
        /// Post-mortem of the failed run (guard trigger, step control state,
        /// `σ_max` trajectory tail).
        diagnostics: Box<NotConvergedDiagnostics>,
    },
}

impl fmt::Display for PassivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassivityError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PassivityError::StateSpace(e) => write!(f, "model manipulation failure: {e}"),
            PassivityError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            PassivityError::NotConverged { iterations, sigma_max, diagnostics, .. } => write!(
                f,
                "passivity enforcement did not converge after {iterations} iterations (sigma_max = {sigma_max}; {diagnostics})"
            ),
        }
    }
}

impl Error for PassivityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PassivityError::Linalg(e) => Some(e),
            PassivityError::StateSpace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for PassivityError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        PassivityError::Linalg(e)
    }
}

impl From<pim_statespace::StateSpaceError> for PassivityError {
    fn from(e: pim_statespace::StateSpaceError) -> Self {
        PassivityError::StateSpace(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, PassivityError>;
