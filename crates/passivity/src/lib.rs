//! # pim-passivity
//!
//! Passivity assessment and enforcement for scattering macromodels, as used
//! by the DATE 2014 sensitivity-weighted passivity enforcement reproduction:
//!
//! * [`check`] — Hamiltonian-matrix passivity test (imaginary eigenvalues
//!   locate the unit-singular-value crossings) and singular-value sweeps
//!   (`σ_i(jω)` versus frequency, Fig. 4 of the paper);
//! * [`constraints`] — linearization of the local constraints
//!   `σ_i(jω_ν) + δσ_i(jω_ν) ≤ 1` (eq. 8) with respect to a perturbation of
//!   the state-space output matrix `C`;
//! * [`qp`] — the convex quadratic program of eq. (9): minimize a
//!   Gramian-weighted norm of `δC` under the linear constraints, solved by a
//!   dual coordinate-ascent (Hildreth) method;
//! * [`enforce`] — the outer iterative perturbation loop. The loop is
//!   parameterized by the per-element Gramians that define the perturbation
//!   norm, so the *same* code runs both the standard L2 enforcement (eq. 10)
//!   and the sensitivity-weighted enforcement of the paper (eq. 20–21, built
//!   by `pim-core`), and it reports every outer iteration to an optional
//!   [`enforce::EnforcementObserver`];
//! * [`norm`] — the pluggable norm-construction layer: [`norm::NormKind`]
//!   names the norm families, [`norm::NormBuilder`] abstracts building a
//!   [`enforce::PerturbationNorm`] for a model, and [`norm::StandardNorm`]
//!   is the built-in unweighted builder;
//! * [`grid`] — the first-class sampling layer: [`grid::FrequencyGrid`]
//!   (sorted, deduplicated, provenance-tagged sweep points) and the
//!   pluggable [`grid::SamplingStrategy`] — [`grid::FixedLog`],
//!   [`grid::CrossingRefined`] (the historical refinement, bit for bit) and
//!   [`grid::Adaptive`] (bisection around Hamiltonian crossings and local
//!   σ maxima until the interpolation error falls below tolerance) — that
//!   drives every assessment and all three enforcement grids.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod constraints;
pub mod enforce;
pub mod grid;
pub mod norm;
pub mod qp;

pub use check::{
    assess, assess_on, assess_with_sampling, hamiltonian_crossings, is_passive,
    singular_value_sweep, singular_value_sweep_on, PassivityReport, ViolationBand,
};
pub use enforce::{
    enforce_passivity, enforce_passivity_observed, EnforcementConfig, EnforcementIteration,
    EnforcementObserver, EnforcementOutcome, PerturbationNorm,
};
pub use grid::{
    Adaptive, CrossingRefined, FixedLog, FrequencyGrid, PointProvenance, SamplingStrategy,
};
pub use norm::{NormBuilder, NormKind, StandardNorm};

use std::error::Error;
use std::fmt;

/// Errors produced by the passivity tooling.
#[derive(Debug)]
pub enum PassivityError {
    /// The underlying linear algebra kernel failed.
    Linalg(pim_linalg::LinalgError),
    /// Model manipulation failed.
    StateSpace(pim_statespace::StateSpaceError),
    /// The input model or configuration is invalid.
    InvalidInput(String),
    /// The enforcement loop exhausted its iteration budget — or tripped the
    /// divergence guard — without producing a passive model.
    NotConverged {
        /// Number of outer iterations performed.
        iterations: usize,
        /// Worst singular value at the end of the loop.
        sigma_max: f64,
        /// The most passive (lowest `σ_max`) model seen during the run, so
        /// a failed enforcement still yields its best iterate. Boxed to
        /// keep the error type small; `None` only when the loop failed
        /// before its first assessment.
        best: Option<Box<pim_statespace::PoleResidueModel>>,
    },
}

impl fmt::Display for PassivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassivityError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PassivityError::StateSpace(e) => write!(f, "model manipulation failure: {e}"),
            PassivityError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            PassivityError::NotConverged { iterations, sigma_max, .. } => write!(
                f,
                "passivity enforcement did not converge after {iterations} iterations (sigma_max = {sigma_max})"
            ),
        }
    }
}

impl Error for PassivityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PassivityError::Linalg(e) => Some(e),
            PassivityError::StateSpace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pim_linalg::LinalgError> for PassivityError {
    fn from(e: pim_linalg::LinalgError) -> Self {
        PassivityError::Linalg(e)
    }
}

impl From<pim_statespace::StateSpaceError> for PassivityError {
    fn from(e: pim_statespace::StateSpaceError) -> Self {
        PassivityError::StateSpace(e)
    }
}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, PassivityError>;
