//! The iterative passivity enforcement loop (eq. 9 of the paper).
//!
//! Each iteration locates the passivity violations of the current model
//! (Hamiltonian test + singular-value sweep), linearizes the local
//! constraints at the violation frequencies, solves the Gramian-weighted
//! quadratic program for the smallest perturbation of the output matrix that
//! removes the violations to first order, and applies it. The loop repeats
//! until the model is passive or the iteration budget is exhausted.
//!
//! The perturbation norm is supplied by the caller through
//! [`PerturbationNorm`]: the plain controllability Gramians give the standard
//! L2 enforcement of eq. (10)–(11), while the sensitivity-weighted Gramians of
//! eq. (19)–(21) (built by `pim-core`) give the paper's method.

use crate::check::{assess_with_sampling, PassivityReport};
use crate::constraints::{apply_perturbation, build_constraints, ConstraintSystem};
use crate::grid::{CrossingRefined, SamplingStrategy};
use crate::qp::{solve_block_qp_factored, BlockQpFactors, QpOptions};
use crate::{NotConvergedDiagnostics, PassivityError, Result};
use pim_linalg::svd::svd;
use pim_linalg::{Complex64, Mat};
use pim_statespace::gramian::element_gramian;
use pim_statespace::{PoleResidueModel, StateSpace};
use std::sync::Arc;

/// The per-element quadratic forms defining the perturbation norm
/// `‖δS‖² = Σ_e δc_e G_e δc_eᵀ`.
#[derive(Debug, Clone)]
pub struct PerturbationNorm {
    /// One Gramian per matrix element, in row-major element order
    /// (`(i, j) → i·P + j`), each `N × N`.
    gramians: Vec<Mat>,
    ports: usize,
    states: usize,
}

impl PerturbationNorm {
    /// Builds a norm from explicit per-element Gramians (row-major element
    /// order, each `N × N` where `N` is the model order).
    ///
    /// # Errors
    ///
    /// Returns [`PassivityError::InvalidInput`] when the number or the size
    /// of the blocks is inconsistent.
    pub fn from_gramians(gramians: Vec<Mat>, ports: usize, states: usize) -> Result<Self> {
        if gramians.len() != ports * ports {
            return Err(PassivityError::InvalidInput(format!(
                "expected {} Gramian blocks, got {}",
                ports * ports,
                gramians.len()
            )));
        }
        if gramians.iter().any(|g| g.shape() != (states, states)) {
            return Err(PassivityError::InvalidInput(format!(
                "every Gramian block must be {states}x{states}"
            )));
        }
        Ok(PerturbationNorm { gramians, ports, states })
    }

    /// The standard (unweighted) L2 norm of eq. (10): every element is
    /// weighted by the plain controllability Gramian of the shared
    /// per-element realization.
    ///
    /// # Errors
    ///
    /// Propagates realization and Lyapunov failures.
    pub fn standard(model: &PoleResidueModel) -> Result<Self> {
        let ports = model.ports();
        let element = StateSpace::from_pole_residue_element(model, 0, 0)?;
        let p = element_gramian(&element).map_err(PassivityError::StateSpace)?;
        let states = element.order();
        Ok(PerturbationNorm { gramians: vec![p; ports * ports], ports, states })
    }

    /// The Gramian blocks (row-major element order).
    pub fn gramians(&self) -> &[Mat] {
        &self.gramians
    }

    /// Number of ports the norm was built for.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// States per element.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Evaluates the norm `Σ_e δc_e G_e δc_eᵀ` of a stacked perturbation
    /// vector (diagnostic helper).
    ///
    /// # Errors
    ///
    /// Returns [`PassivityError::InvalidInput`] on a length mismatch.
    pub fn evaluate(&self, delta: &[f64]) -> Result<f64> {
        if delta.len() != self.ports * self.ports * self.states {
            return Err(PassivityError::InvalidInput(format!(
                "perturbation vector has {} entries, expected {}",
                delta.len(),
                self.ports * self.ports * self.states
            )));
        }
        let mut total = 0.0;
        for (e, g) in self.gramians.iter().enumerate() {
            let seg = &delta[e * self.states..(e + 1) * self.states];
            let gs = g.matvec(seg)?;
            total += seg.iter().zip(&gs).map(|(a, b)| a * b).sum::<f64>();
        }
        Ok(total)
    }
}

/// The trust-region step controller of the enforcement loop.
///
/// The linearized QP can produce wildly overshooting `δC` steps on
/// ill-conditioned norms (the corpus divergence family). Once
/// `activate_after` *consecutive* backtracking steps have bottomed out at the
/// minimum fraction while `σ_max` still grew, the controller engages: it
/// bounds `‖δC‖` by a radius, then grows or shrinks the radius from the
/// ratio of the actual to the linearly predicted `σ_max` reduction. Healthy
/// runs — where at most isolated bottomed-out steps occur — never activate
/// it and stay bit-identical to the uncontrolled loop; backtracking remains
/// the inner fallback either way.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustRegionConfig {
    /// Master switch.
    pub enabled: bool,
    /// Consecutive bottomed-out-and-grew steps before the controller
    /// engages. Must stay below [`EnforcementConfig::divergence_guard`] for
    /// the controller to pre-empt the guard.
    pub activate_after: usize,
    /// Reduction ratios at or above this grow the radius (when the step was
    /// radius-limited and taken in full).
    pub eta_good: f64,
    /// Reduction ratios below this shrink the radius.
    pub eta_bad: f64,
    /// Radius growth factor on good steps.
    pub grow: f64,
    /// Radius shrink factor on bad steps (also scales the engagement radius
    /// from the last bottomed-out step).
    pub shrink: f64,
    /// Radius floor, as a fraction of the engagement radius. At the floor
    /// the divergence guard regains authority.
    pub min_radius_scale: f64,
}

impl Default for TrustRegionConfig {
    fn default() -> Self {
        TrustRegionConfig {
            enabled: true,
            activate_after: 2,
            eta_good: 0.75,
            eta_bad: 0.25,
            grow: 2.0,
            shrink: 0.25,
            min_radius_scale: 1e-6,
        }
    }
}

/// Configuration of the enforcement loop.
#[derive(Debug, Clone)]
pub struct EnforcementConfig {
    /// Maximum number of outer perturbation iterations.
    pub max_iterations: usize,
    /// Safety margin below one imposed on the constrained singular values
    /// (the constraints read `σ + δσ ≤ 1 − margin`).
    pub sigma_margin: f64,
    /// Singular values above this threshold are constrained at every
    /// violation frequency (keeping slightly sub-unit singular values under
    /// control improves convergence).
    pub sigma_threshold: f64,
    /// Number of points of the baseline singular-value sweep.
    pub sweep_points: usize,
    /// Additional constraint frequencies per violation band beyond the peak
    /// (band edges and midpoints).
    pub band_edge_constraints: bool,
    /// Enforce residue-matrix symmetry after every perturbation (reciprocal
    /// structures).
    pub preserve_symmetry: bool,
    /// Halve the perturbation step when it makes the worst singular value
    /// larger (the linearized constraints can overshoot for strong
    /// violations or strongly skewed norms).
    pub backtracking: bool,
    /// The sampling strategy that builds the working sweep, the convergence
    /// double-check grid and the final verification grid, and refines every
    /// per-iteration assessment (see [`crate::grid`]). The default
    /// [`CrossingRefined`] reproduces the historical hard-wired grids bit
    /// for bit; [`crate::grid::Adaptive`] chases sub-grid violation bands.
    pub sampling: Arc<dyn SamplingStrategy>,
    /// Give up after this many *consecutive* iterations in which
    /// backtracking bottomed out at the minimum step **and** the worst
    /// singular value still grew — the signature of a diverging enforcement
    /// (the dense-decap boards of the ROADMAP note). `0` disables the
    /// guard. On trigger the loop returns
    /// [`PassivityError::NotConverged`] carrying the best model seen so
    /// far.
    pub divergence_guard: usize,
    /// Options of the inner quadratic program.
    pub qp: QpOptions,
    /// The trust-region step controller (see [`TrustRegionConfig`]).
    pub trust_region: TrustRegionConfig,
}

impl Default for EnforcementConfig {
    fn default() -> Self {
        EnforcementConfig {
            max_iterations: 30,
            sigma_margin: 1e-4,
            sigma_threshold: 0.999,
            sweep_points: 400,
            band_edge_constraints: true,
            preserve_symmetry: false,
            backtracking: true,
            sampling: Arc::new(CrossingRefined),
            divergence_guard: 3,
            qp: QpOptions::default(),
            trust_region: TrustRegionConfig::default(),
        }
    }
}

impl EnforcementConfig {
    /// Builder: replaces the sampling strategy (working, double-check and
    /// verification grids plus per-assessment refinement all follow it).
    #[must_use]
    pub fn sampling(mut self, strategy: impl SamplingStrategy + 'static) -> Self {
        self.sampling = Arc::new(strategy);
        self
    }
}

/// Snapshot of one outer enforcement iteration, delivered to an
/// [`EnforcementObserver`] right after the iteration's perturbation is
/// accepted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnforcementIteration {
    /// 1-based index of the iteration within the loop.
    pub iteration: usize,
    /// Worst singular value that triggered this iteration (before the
    /// perturbation).
    pub sigma_before: f64,
    /// Worst singular value of the accepted perturbed model, measured on the
    /// working sweep grid.
    pub sigma_after: f64,
    /// Backtracking step fraction actually taken (1.0 = full step).
    pub step: f64,
    /// Perturbation norm `‖δS‖²` added by this iteration.
    pub norm_increment: f64,
    /// Number of linearized singular-value constraints in the QP.
    pub constraints: usize,
    /// Number of points of the refined working grid this iteration's
    /// assessment swept. Under [`CrossingRefined`] it hovers near the
    /// baseline (plus a handful of points derived from the iterate's
    /// Hamiltonian crossings, which shift as violations shrink); under
    /// [`crate::grid::Adaptive`] it grows substantially as the bisection
    /// chases sub-grid features.
    pub grid_points: usize,
}

/// Per-iteration observer hook of the enforcement loop.
///
/// Implementations receive one [`EnforcementIteration`] per outer iteration;
/// the hook is purely observational — it cannot alter the loop, and running
/// with or without an observer produces bit-identical models.
pub trait EnforcementObserver {
    /// Called once per outer iteration, after the perturbation is applied.
    fn on_enforcement_iteration(&mut self, event: &EnforcementIteration);

    /// Called once per outer iteration, right after
    /// [`EnforcementObserver::on_enforcement_iteration`], with the accepted
    /// perturbed model itself. Default no-op; implement it to snapshot
    /// intermediate models (the Fig. 5 anomaly diagnostic re-assesses them
    /// on denser grids than the working sweep).
    fn on_iteration_model(&mut self, iteration: usize, model: &PoleResidueModel) {
        let _ = (iteration, model);
    }
}

/// What the robustness machinery did during a run: whether the trust region
/// engaged and how often it clipped, plus the adaptive QP damping state.
/// All-zero / disengaged on healthy runs — which is exactly the bit-identity
/// guarantee of the fixtures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RobustnessInfo {
    /// Whether the trust-region controller engaged at any point.
    pub trust_region_engaged: bool,
    /// Number of iterations whose `δC` was clipped to the radius.
    pub trust_region_clips: usize,
    /// Radius at the end of the run, when engaged.
    pub final_radius: Option<f64>,
    /// Largest relative Tikhonov λ the adaptive QP damping applied.
    pub qp_lambda_max: f64,
    /// Largest post-damping Gramian condition estimate.
    pub qp_condition_max: f64,
    /// Number of Gramian blocks whose damping was escalated above the base.
    pub qp_damped_blocks: usize,
}

/// Result of a passivity enforcement run.
#[derive(Debug, Clone)]
pub struct EnforcementOutcome {
    /// The final (passive, unless the loop gave up) macromodel.
    pub model: PoleResidueModel,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Worst singular value after each iteration (starting with the initial
    /// model).
    pub sigma_max_history: Vec<f64>,
    /// Accumulated perturbation norm `Σ ‖δS‖²` over all iterations.
    pub accumulated_norm: f64,
    /// Final passivity report.
    pub report: PassivityReport,
    /// Trust-region / adaptive-damping activity of the run.
    pub robustness: RobustnessInfo,
}

/// Enforces asymptotic passivity by clipping the singular values of the
/// constant (feedthrough) term `D` to `limit`.
///
/// The perturbation loop only adjusts the output matrix `C`, which cannot
/// change the `ω → ∞` behaviour; if the fitted `D` is even marginally
/// non-contractive the loop could never terminate. This step removes such
/// violations up front with a minimal (spectral-norm optimal) correction of
/// `D`.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] for a non-positive limit and
/// propagates SVD failures.
pub fn enforce_asymptotic_passivity(
    model: &PoleResidueModel,
    limit: f64,
) -> Result<PoleResidueModel> {
    if !(limit > 0.0) {
        return Err(PassivityError::InvalidInput("the feedthrough limit must be positive".into()));
    }
    let decomposition = svd(&model.d().to_complex())?;
    if decomposition.sigma_max() <= limit {
        return Ok(model.clone());
    }
    let p = model.ports();
    let mut clipped = pim_linalg::CMat::zeros(p, p);
    for (idx, &sigma) in decomposition.singular_values.iter().enumerate() {
        let s = sigma.min(limit);
        // audit:allow(float-eq): exact-zero shift means the eigenvalue is already on the boundary
        if s == 0.0 {
            continue;
        }
        let u = &decomposition.u;
        let v = &decomposition.v;
        for i in 0..p {
            for j in 0..p {
                clipped[(i, j)] += u[(i, idx)] * v[(j, idx)].conj() * Complex64::from_real(s);
            }
        }
    }
    let d_new = clipped.real();
    Ok(PoleResidueModel::new(model.poles().to_vec(), model.residues().to_vec(), d_new)?)
}

/// Runs the iterative perturbation loop until the model is passive.
///
/// The asymptotic term is clipped first (see
/// [`enforce_asymptotic_passivity`]); the loop then perturbs only the
/// residues / output matrix as in the paper.
///
/// # Errors
///
/// Returns [`PassivityError::NotConverged`] when the iteration budget is
/// exhausted, and propagates numerical failures of the inner steps.
pub fn enforce_passivity(
    model: &PoleResidueModel,
    norm: &PerturbationNorm,
    band_max_omega: f64,
    config: &EnforcementConfig,
) -> Result<EnforcementOutcome> {
    enforce_passivity_impl(model, norm, band_max_omega, config, None)
}

/// [`enforce_passivity`] with a per-iteration observer.
///
/// The observer receives one [`EnforcementIteration`] after each outer
/// iteration; numerics are identical to the unobserved loop.
///
/// # Errors
///
/// See [`enforce_passivity`].
pub fn enforce_passivity_observed(
    model: &PoleResidueModel,
    norm: &PerturbationNorm,
    band_max_omega: f64,
    config: &EnforcementConfig,
    observer: &mut dyn EnforcementObserver,
) -> Result<EnforcementOutcome> {
    enforce_passivity_impl(model, norm, band_max_omega, config, Some(observer))
}

fn enforce_passivity_impl(
    model: &PoleResidueModel,
    norm: &PerturbationNorm,
    band_max_omega: f64,
    config: &EnforcementConfig,
    mut observer: Option<&mut dyn EnforcementObserver>,
) -> Result<EnforcementOutcome> {
    if norm.ports() != model.ports() || norm.states() != model.order() {
        return Err(PassivityError::InvalidInput(format!(
            "norm was built for a {}-port order-{} model, got {}-port order-{}",
            norm.ports(),
            norm.states(),
            model.ports(),
            model.order()
        )));
    }
    if !(band_max_omega > 0.0) {
        return Err(PassivityError::InvalidInput("band_max_omega must be positive".into()));
    }
    if config.sweep_points < 10 {
        return Err(PassivityError::InvalidInput("sweep_points must be at least 10".into()));
    }

    // All three grids of the loop come from the one sampling strategy: the
    // per-iteration working sweep, and the denser double-check grid that
    // also serves as the final verification sweep (narrow violation bands
    // can slip between the points of the working sweep).
    let strategy = config.sampling.as_ref();
    let pool = pim_runtime::global();
    let sweep = strategy.working_grid(band_max_omega, config.sweep_points);
    let verify_sweep = strategy.verification_grid(band_max_omega, config.sweep_points);

    let mut current = enforce_asymptotic_passivity(model, 1.0 - config.sigma_margin)?;
    let mut history = Vec::new();
    let mut accumulated_norm = 0.0;
    let mut iterations = 0;
    // Best-so-far (lowest worst singular value) model, handed back inside
    // `NotConverged` so a failed run still yields its most passive iterate.
    let mut best: Option<(f64, PoleResidueModel)> = None;
    // Consecutive bottomed-out-and-grew backtracking steps (the divergence
    // guard's trigger, and the trust-region engagement trigger).
    let mut bottomed_growth = 0usize;
    let tr = &config.trust_region;
    // Trust-region state: inactive (`None`) until `activate_after`
    // consecutive bottomed-out-and-grew steps; every float the loop produces
    // before activation is identical to the uncontrolled loop.
    let mut radius: Option<f64> = None;
    let mut radius_floor = 0.0_f64;
    let mut robustness = RobustnessInfo::default();
    let mut last_step = 1.0_f64;

    // Quantities that are invariant across the outer iterations: the
    // perturbation only moves residues, never poles, so the shared
    // per-element realization `(A_e, b_e)` used by the constraint
    // linearization is fixed, and so are the Gramian weights — factor them
    // once instead of re-running LU per iteration. Near-singular blocks get
    // adaptive Tikhonov damping (decayed as the iterate improves);
    // well-conditioned blocks factor bit-identically to the fixed path.
    let element = StateSpace::from_pole_residue_element(&current, 0, 0)?;
    let mut qp_factors = BlockQpFactors::new_adaptive(
        norm.gramians(),
        config.qp.regularization,
        config.qp.max_condition,
    )?;
    record_qp_state(&mut robustness, &qp_factors);

    macro_rules! not_converged {
        ($sigma:expr, $guard:expr, $tail_extra:expr) => {{
            let mut tail: Vec<f64> = history[history.len().saturating_sub(8)..].to_vec();
            if let Some(extra) = $tail_extra {
                tail.push(extra);
                if tail.len() > 8 {
                    tail.remove(0);
                }
            }
            PassivityError::NotConverged {
                iterations,
                sigma_max: $sigma,
                best: best.map(|(_, m)| Box::new(m)),
                diagnostics: Box::new(NotConvergedDiagnostics {
                    guard_triggered: $guard,
                    bottomed_out: bottomed_growth,
                    last_step,
                    sigma_tail: tail,
                    trust_region_engaged: robustness.trust_region_engaged,
                    trust_region_radius: radius,
                    qp_lambda_max: robustness.qp_lambda_max,
                    qp_condition_max: robustness.qp_condition_max,
                    best_sigma_max: None,
                }),
            }
        }};
    }

    loop {
        let mut report = assess_with_sampling(pool, &current, &sweep, strategy)?;
        if report.passive {
            // Verify on the dense grid before declaring success; fall back to
            // the dense report (with its violation bands) otherwise.
            let verification = assess_with_sampling(pool, &current, &verify_sweep, strategy)?;
            if verification.passive {
                history.push(verification.sigma_max);
                robustness.final_radius = radius;
                return Ok(EnforcementOutcome {
                    model: current,
                    iterations,
                    sigma_max_history: history,
                    accumulated_norm,
                    report: verification,
                    robustness,
                });
            }
            report = verification;
        }
        history.push(report.sigma_max);
        if best.as_ref().is_none_or(|(s, _)| report.sigma_max < *s) {
            best = Some((report.sigma_max, current.clone()));
        }
        if iterations >= config.max_iterations {
            return Err(not_converged!(report.sigma_max, false, None));
        }
        iterations += 1;

        // Constraint frequencies: violation-band peaks (and optionally edges
        // and midpoints), plus the Hamiltonian crossings themselves.
        let mut freqs: Vec<f64> = Vec::new();
        for band in &report.bands {
            freqs.push(band.omega_peak);
            if config.band_edge_constraints {
                freqs.push(band.omega_low);
                freqs.push(band.omega_high);
                freqs.push(0.5 * (band.omega_low + band.omega_high));
            }
        }
        for &w in &report.hamiltonian_crossings {
            freqs.push(w);
        }
        if freqs.is_empty() {
            // σ_max > 1 can also happen strictly at DC or at the asymptote.
            freqs.push(report.omega_at_sigma_max);
        }
        freqs.retain(|w| w.is_finite() && *w >= 0.0);
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        freqs.dedup_by(|a, b| (*a - *b).abs() <= 1e-9 * a.abs().max(1.0));

        let cons = build_constraints(
            &current,
            &element,
            &freqs,
            config.sigma_threshold,
            config.sigma_margin,
        )?;
        if cons.rows() == 0 {
            return Err(PassivityError::InvalidInput(
                "violations were detected but no constraint could be formed; \
                 lower sigma_threshold"
                    .into(),
            ));
        }
        let qp = solve_block_qp_factored(&qp_factors, &cons.f, &cons.g, &config.qp)?;

        let mut delta = qp.x;
        if config.preserve_symmetry {
            symmetrize_delta(&mut delta, current.ports(), current.order());
        }

        // Trust region (primary step control once engaged): bound ‖δC‖ by
        // the radius before the backtracking fallback sees the step.
        let delta_norm = delta.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut clipped = false;
        if let Some(r) = radius {
            if delta_norm > r && delta_norm > 0.0 {
                let scale = r / delta_norm;
                for v in &mut delta {
                    *v *= scale;
                }
                clipped = true;
                robustness.trust_region_clips += 1;
            }
        }
        let bounded_norm = if clipped { radius.unwrap_or(delta_norm) } else { delta_norm };

        // Backtracking safeguard: the constraints are linearized, so a full
        // step can overshoot and make the worst singular value larger. Halve
        // the step until it no longer degrades the violation (or give up and
        // take the smallest step, letting the next iteration re-linearize).
        let mut step = 1.0_f64;
        loop {
            let scaled: Vec<f64> = delta.iter().map(|v| v * step).collect();
            let candidate = apply_perturbation(&current, &scaled)?;
            let candidate_report = assess_with_sampling(pool, &candidate, &sweep, strategy)?;
            let candidate_sigma = candidate_report.sigma_max;
            if !config.backtracking
                || candidate_sigma <= report.sigma_max * (1.0 + 1e-9)
                || step <= 1.0 / 16.0
            {
                let norm_increment = norm.evaluate(&scaled)?;
                accumulated_norm += norm_increment;
                if let Some(obs) = observer.as_deref_mut() {
                    obs.on_enforcement_iteration(&EnforcementIteration {
                        iteration: iterations,
                        sigma_before: report.sigma_max,
                        sigma_after: candidate_sigma,
                        step,
                        norm_increment,
                        constraints: cons.rows(),
                        grid_points: candidate_report.grid.len(),
                    });
                    obs.on_iteration_model(iterations, &candidate);
                }
                // Divergence guard counter: backtracking bottomed out at the
                // minimum step and the violation still grew. One such step
                // happens in healthy runs (the next re-linearization
                // recovers); several in a row mean the linearized QP is
                // pushing the model the wrong way and iterating further
                // only inflates the perturbation.
                let grew = candidate_sigma > report.sigma_max * (1.0 + 1e-9);
                if config.backtracking && step <= 1.0 / 16.0 && grew {
                    bottomed_growth += 1;
                } else {
                    bottomed_growth = 0;
                }
                last_step = step;
                let taken_norm = step * bounded_norm;

                // Radius update from the predicted-vs-actual σ_max
                // reduction of the accepted step.
                if let Some(r) = radius {
                    let predicted = predicted_sigma_max(&cons, &scaled, config.sigma_margin)?;
                    let actual_reduction = report.sigma_max - candidate_sigma;
                    let predicted_reduction = report.sigma_max - predicted;
                    let rho = if predicted_reduction > f64::EPSILON {
                        actual_reduction / predicted_reduction
                    } else if actual_reduction > 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                    // audit:allow(float-eq): step is assigned the literal 1.0 on the unclipped path
                    let full_step = step == 1.0;
                    if rho < tr.eta_bad {
                        radius = Some((taken_norm * tr.shrink).max(radius_floor));
                    } else if rho >= tr.eta_good && clipped && full_step {
                        radius = Some(r * tr.grow);
                    }
                    robustness.final_radius = radius;
                }

                // Engagement: enough consecutive bottomed-out-and-grew
                // steps mean backtracking alone is not controlling the
                // overshoot — bound the next steps below the one that just
                // failed.
                if tr.enabled
                    && tr.activate_after > 0
                    && radius.is_none()
                    && bottomed_growth >= tr.activate_after
                {
                    let engage = (taken_norm * tr.shrink).max(1e-300);
                    radius = Some(engage);
                    radius_floor = engage * tr.min_radius_scale;
                    robustness.trust_region_engaged = true;
                    robustness.final_radius = radius;
                }

                // Adaptive damping decays once the iterate improves again,
                // so the converged perturbation is not biased by λ.
                if !grew && qp_factors.damped_blocks() > 0 {
                    qp_factors.decay(config.qp.lambda_decay)?;
                }
                record_qp_state(&mut robustness, &qp_factors);

                current = candidate;
                // The guard keeps final authority, but only once the trust
                // region is out of room (or was never engaged): at the
                // radius floor with σ_max still growing, more iterations
                // only inflate the perturbation.
                let at_floor = radius.is_none_or(|r| r <= radius_floor * (1.0 + 1e-12));
                if config.divergence_guard > 0
                    && bottomed_growth >= config.divergence_guard
                    && at_floor
                {
                    return Err(not_converged!(candidate_sigma, true, Some(candidate_sigma)));
                }
                break;
            }
            step *= 0.5;
        }
    }
}

/// Linear prediction of the worst constrained singular value after the step
/// `x`: `max_i (σ_i + (F·x)_i)` with `σ_i = 1 − margin − g_i` recovered from
/// the constraint right-hand side.
fn predicted_sigma_max(cons: &ConstraintSystem, x: &[f64], margin: f64) -> Result<f64> {
    let fx = cons.f.matvec(x)?;
    let mut worst = f64::NEG_INFINITY;
    for (gi, fxi) in cons.g.iter().zip(&fx) {
        worst = worst.max(1.0 - margin - gi + fxi);
    }
    Ok(worst)
}

/// Folds the current QP damping state into the run's [`RobustnessInfo`]
/// (maxima over the run; λ counts only when escalated above the base).
fn record_qp_state(robustness: &mut RobustnessInfo, factors: &BlockQpFactors) {
    robustness.qp_condition_max = robustness.qp_condition_max.max(factors.max_condition_estimate());
    robustness.qp_damped_blocks = robustness.qp_damped_blocks.max(factors.damped_blocks());
    if factors.damped_blocks() > 0 {
        robustness.qp_lambda_max =
            robustness.qp_lambda_max.max(factors.max_applied_regularization());
    }
}

/// Averages the perturbations of elements `(i, j)` and `(j, i)` so a
/// symmetric model stays symmetric.
fn symmetrize_delta(delta: &mut [f64], ports: usize, states: usize) {
    for i in 0..ports {
        for j in (i + 1)..ports {
            for m in 0..states {
                let a = (i * ports + j) * states + m;
                let b = (j * ports + i) * states + m;
                let avg = 0.5 * (delta[a] + delta[b]);
                delta[a] = avg;
                delta[b] = avg;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{assess, sigma_max_at};
    use pim_linalg::{CMat, Complex64};
    use pim_rfdata::metrics::relative_rms_error;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// A 1-port with a mild localized violation near 1000 rad/s.
    fn violating_one_port() -> PoleResidueModel {
        let p = c(-50.0, 1000.0);
        let r = c(30.0, 12.0);
        PoleResidueModel::new(
            vec![p, p.conj()],
            vec![CMat::from_diag(&[r]), CMat::from_diag(&[r.conj()])],
            Mat::from_diag(&[0.85]),
        )
        .unwrap()
    }

    /// A symmetric 2-port with violations.
    fn violating_two_port() -> PoleResidueModel {
        let p = c(-60.0, 900.0);
        let r =
            CMat::from_fn(2, 2, |i, j| c(22.0 + 5.0 * (i + j) as f64, 8.0 - 2.0 * (i + j) as f64));
        PoleResidueModel::new(
            vec![p, p.conj(), c(-3000.0, 0.0)],
            vec![r.clone(), r.conj(), CMat::from_diag(&[c(120.0, 0.0), c(100.0, 0.0)])],
            Mat::from_fn(2, 2, |i, j| if i == j { 0.8 } else { 0.05 }),
        )
        .unwrap()
    }

    #[test]
    fn enforcement_produces_a_passive_one_port() {
        let model = violating_one_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let cfg = EnforcementConfig { sweep_points: 200, ..Default::default() };
        let out = enforce_passivity(&model, &norm, 5000.0, &cfg).unwrap();
        assert!(out.report.passive);
        assert!(out.iterations >= 1 && out.iterations <= cfg.max_iterations);
        assert!(out.report.sigma_max <= 1.0 + 1e-9);
        // The perturbed model keeps the original poles.
        for (a, b) in model.poles().iter().zip(out.model.poles()) {
            assert_eq!(a, b);
        }
        // sigma_max history is non-increasing in its last step and starts >1.
        assert!(out.sigma_max_history[0] > 1.0);
        assert!(*out.sigma_max_history.last().unwrap() <= 1.0 + 1e-9);
        assert!(out.accumulated_norm > 0.0);
    }

    #[test]
    fn enforcement_changes_the_response_only_mildly() {
        let model = violating_one_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let cfg = EnforcementConfig { sweep_points: 200, ..Default::default() };
        let out = enforce_passivity(&model, &norm, 5000.0, &cfg).unwrap();
        // Compare responses far from the violation: they must stay close.
        let omegas: Vec<f64> = (1..60).map(|k| k as f64 * 10.0).collect();
        let before: Vec<Complex64> =
            omegas.iter().map(|&w| model.evaluate_at_omega(w).unwrap()[(0, 0)]).collect();
        let after: Vec<Complex64> =
            omegas.iter().map(|&w| out.model.evaluate_at_omega(w).unwrap()[(0, 0)]).collect();
        let err = relative_rms_error(&before, &after).unwrap();
        assert!(err < 0.1, "relative deviation {err} too large");
    }

    #[test]
    fn enforcement_handles_two_port_and_preserves_symmetry() {
        let model = violating_two_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let cfg =
            EnforcementConfig { sweep_points: 200, preserve_symmetry: true, ..Default::default() };
        let out = enforce_passivity(&model, &norm, 6000.0, &cfg).unwrap();
        assert!(out.report.passive);
        for r in out.model.residues() {
            assert!((r[(0, 1)] - r[(1, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn already_passive_model_is_returned_unchanged() {
        let model = PoleResidueModel::new(
            vec![c(-100.0, 0.0)],
            vec![CMat::from_diag(&[c(40.0, 0.0)])],
            Mat::from_diag(&[0.2]),
        )
        .unwrap();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let out = enforce_passivity(&model, &norm, 1000.0, &EnforcementConfig::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.report.passive);
        assert_eq!((out.accumulated_norm).to_bits(), 0.0f64.to_bits());
        for (a, b) in model.residues().iter().zip(out.model.residues()) {
            assert!(a.max_abs_diff(b) < 1e-15);
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let model = violating_one_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let cfg = EnforcementConfig { max_iterations: 0, sweep_points: 100, ..Default::default() };
        match enforce_passivity(&model, &norm, 5000.0, &cfg) {
            Err(PassivityError::NotConverged { iterations, sigma_max, best, diagnostics }) => {
                assert_eq!(iterations, 0);
                assert!(sigma_max > 1.0);
                // Even a zero-budget failure hands back its best iterate
                // (here the asymptotically clipped input model).
                let best = best.expect("best-so-far model present");
                assert_eq!(best.poles().len(), model.poles().len());
                // Budget exhaustion, not a guard trip — and the trajectory
                // tail carries the final sigma.
                assert!(!diagnostics.guard_triggered);
                assert_eq!(diagnostics.bottomed_out, 0);
                assert_eq!(*diagnostics.sigma_tail.last().unwrap(), sigma_max);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn observed_enforcement_is_bit_identical_and_reports_every_iteration() {
        struct Collect(Vec<EnforcementIteration>);
        impl EnforcementObserver for Collect {
            fn on_enforcement_iteration(&mut self, event: &EnforcementIteration) {
                self.0.push(*event);
            }
        }
        let model = violating_one_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let cfg = EnforcementConfig { sweep_points: 200, ..Default::default() };
        let plain = enforce_passivity(&model, &norm, 5000.0, &cfg).unwrap();
        let mut obs = Collect(Vec::new());
        let observed = enforce_passivity_observed(&model, &norm, 5000.0, &cfg, &mut obs).unwrap();
        // Bit-identical outcome.
        assert_eq!(plain.iterations, observed.iterations);
        assert_eq!(plain.accumulated_norm.to_bits(), observed.accumulated_norm.to_bits());
        for (a, b) in plain.sigma_max_history.iter().zip(&observed.sigma_max_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in plain.model.residues().iter().zip(observed.model.residues()) {
            assert_eq!((a.max_abs_diff(b)).to_bits(), 0.0f64.to_bits());
        }
        // One event per outer iteration, consistent with the outcome.
        assert_eq!(obs.0.len(), observed.iterations);
        let total: f64 = obs.0.iter().map(|e| e.norm_increment).sum();
        assert!((total - observed.accumulated_norm).abs() <= 1e-12 * observed.accumulated_norm);
        for (k, ev) in obs.0.iter().enumerate() {
            assert_eq!(ev.iteration, k + 1);
            assert_eq!(ev.sigma_before.to_bits(), observed.sigma_max_history[k].to_bits());
            assert!(ev.step > 0.0 && ev.step <= 1.0);
            assert!(ev.constraints >= 1);
        }
    }

    #[test]
    fn divergence_guard_returns_not_converged_with_the_best_model() {
        // A pathologically skewed norm: one residue direction is almost free
        // (Gramian eigenvalue ~1e-12), so the QP pushes enormous
        // perturbations along it, the linearization overshoots at every
        // step, and backtracking bottoms out while sigma_max keeps growing —
        // the divergence signature of the dense-decap boards.
        let model = violating_one_port();
        let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1e-12]]);
        let norm = PerturbationNorm::from_gramians(vec![g], 1, 2).unwrap();
        // Trust region and adaptive damping off: this test pins the legacy
        // guard semantics (the rescue paths get their own tests below).
        let cfg = EnforcementConfig {
            sweep_points: 100,
            max_iterations: 40,
            trust_region: TrustRegionConfig { enabled: false, ..Default::default() },
            qp: QpOptions { max_condition: f64::INFINITY, ..Default::default() },
            ..Default::default()
        };
        struct Steps(Vec<EnforcementIteration>);
        impl EnforcementObserver for Steps {
            fn on_enforcement_iteration(&mut self, ev: &EnforcementIteration) {
                self.0.push(*ev);
            }
        }
        let mut steps = Steps(Vec::new());
        match enforce_passivity_observed(&model, &norm, 5000.0, &cfg, &mut steps) {
            Err(PassivityError::NotConverged { iterations, sigma_max, best, diagnostics }) => {
                assert!(
                    iterations < cfg.max_iterations,
                    "the guard must trip before the budget ({iterations})"
                );
                assert!(sigma_max > 1.0);
                // The last `divergence_guard` accepted steps all bottomed
                // out and grew.
                let tail = &steps.0[steps.0.len() - cfg.divergence_guard..];
                for ev in tail {
                    assert!(ev.step <= 1.0 / 16.0, "guard step {}", ev.step);
                    assert!(ev.sigma_after > ev.sigma_before, "guard growth");
                }
                // The best-so-far model, re-assessed exactly as the loop
                // assessed its iterates (working grid + crossing
                // refinement), is no worse than either the start or the
                // diverged end state.
                let best = best.expect("best model");
                let working = crate::grid::FrequencyGrid::enforcement_log(5000.0, cfg.sweep_points);
                let best_sigma = assess_with_sampling(
                    pim_runtime::global(),
                    &best,
                    &working,
                    cfg.sampling.as_ref(),
                )
                .unwrap()
                .sigma_max;
                let start_sigma = steps.0[0].sigma_before;
                assert!(
                    best_sigma <= sigma_max && best_sigma <= start_sigma,
                    "best-so-far ({best_sigma}) must be no worse than the start \
                     ({start_sigma}) or the diverged end state ({sigma_max})"
                );
                // The post-mortem names the guard, the bottomed-out streak
                // and the trajectory tail — and renders them in Display.
                assert!(diagnostics.guard_triggered);
                assert_eq!(diagnostics.bottomed_out, cfg.divergence_guard);
                assert!(diagnostics.last_step <= 1.0 / 16.0);
                assert!(!diagnostics.trust_region_engaged, "trust region was disabled");
                assert!(!diagnostics.sigma_tail.is_empty());
                assert_eq!(*diagnostics.sigma_tail.last().unwrap(), sigma_max);
                let rendered = diagnostics.to_string();
                assert!(rendered.contains("divergence guard"), "{rendered}");
                assert!(rendered.contains("sigma tail"), "{rendered}");
            }
            Ok(out) => panic!(
                "the skewed norm should diverge, but converged in {} iterations",
                out.iterations
            ),
            Err(e) => panic!("expected NotConverged, got {e}"),
        }
        // With the guard disabled, the same loop burns the whole budget.
        let unguarded = EnforcementConfig { divergence_guard: 0, ..cfg.clone() };
        match enforce_passivity(&model, &norm, 5000.0, &unguarded) {
            Err(PassivityError::NotConverged { iterations, .. }) => {
                assert_eq!(iterations, unguarded.max_iterations);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn trust_region_and_damping_rescue_the_skewed_norm() {
        // The exact divergence regime of the guard test above — but with the
        // robustness machinery on (trust region + adaptive damping, the
        // defaults with a condition cap tight enough for this 1e12-condition
        // Gramian): the loop must now deliver a passive model instead of
        // tripping the guard.
        let model = violating_one_port();
        let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1e-12]]);
        let norm = PerturbationNorm::from_gramians(vec![g], 1, 2).unwrap();
        let cfg = EnforcementConfig {
            sweep_points: 100,
            max_iterations: 60,
            qp: QpOptions { max_condition: 1e6, ..Default::default() },
            ..Default::default()
        };
        let out = enforce_passivity(&model, &norm, 5000.0, &cfg)
            .expect("robust loop must converge where the legacy loop diverged");
        assert!(out.report.passive);
        assert!(out.report.sigma_max <= 1.0 + 1e-9);
        // The rescue actually exercised the new machinery.
        assert_eq!(out.robustness.qp_damped_blocks, 1);
        assert!(out.robustness.qp_lambda_max > cfg.qp.regularization);
        assert!(out.robustness.qp_condition_max <= 1e6 * (1.0 + 1e-9));
    }

    #[test]
    fn inactive_trust_region_is_bit_identical_to_the_legacy_loop() {
        // On a healthy run the trust region never engages and the adaptive
        // damping never escalates, so the robust loop must reproduce the
        // legacy loop bit for bit — the guarantee that pins the committed
        // fixtures.
        let model = violating_one_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        let robust = EnforcementConfig { sweep_points: 200, ..Default::default() };
        let legacy = EnforcementConfig {
            sweep_points: 200,
            trust_region: TrustRegionConfig { enabled: false, ..Default::default() },
            qp: QpOptions { max_condition: f64::INFINITY, ..Default::default() },
            ..Default::default()
        };
        let a = enforce_passivity(&model, &norm, 5000.0, &robust).unwrap();
        let b = enforce_passivity(&model, &norm, 5000.0, &legacy).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.accumulated_norm.to_bits(), b.accumulated_norm.to_bits());
        for (x, y) in a.sigma_max_history.iter().zip(&b.sigma_max_history) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.model.residues().iter().zip(b.model.residues()) {
            assert_eq!((x.max_abs_diff(y)).to_bits(), 0.0f64.to_bits());
        }
        assert!(!a.robustness.trust_region_engaged);
        assert_eq!(a.robustness.trust_region_clips, 0);
        assert_eq!(a.robustness.qp_damped_blocks, 0);
    }

    #[test]
    fn norm_validation_and_evaluation() {
        let model = violating_one_port();
        let norm = PerturbationNorm::standard(&model).unwrap();
        assert_eq!(norm.ports(), 1);
        assert_eq!(norm.states(), 2);
        assert_eq!(norm.gramians().len(), 1);
        let v = norm.evaluate(&[1.0, 0.0]).unwrap();
        assert!(v > 0.0);
        assert!(norm.evaluate(&[1.0]).is_err());
        assert!(PerturbationNorm::from_gramians(vec![Mat::identity(2)], 2, 2).is_err());
        assert!(PerturbationNorm::from_gramians(vec![Mat::identity(3)], 1, 2).is_err());
        // Mismatched norm vs model is rejected by the loop.
        let other = violating_two_port();
        assert!(enforce_passivity(&other, &norm, 100.0, &EnforcementConfig::default()).is_err());
        assert!(enforce_passivity(&model, &norm, -1.0, &EnforcementConfig::default()).is_err());
        let bad_cfg = EnforcementConfig { sweep_points: 3, ..Default::default() };
        assert!(enforce_passivity(&model, &norm, 100.0, &bad_cfg).is_err());
    }

    #[test]
    fn weighted_norm_changes_where_the_perturbation_lands() {
        // Weight element (0,0) enormously: the enforcement should prefer to
        // perturb it less than with the standard norm. We verify through the
        // low-frequency response deviation of the two passive models.
        let model = violating_two_port();
        let standard = PerturbationNorm::standard(&model).unwrap();
        let heavy = {
            let mut blocks = standard.gramians().to_vec();
            blocks[0] = blocks[0].scaled(100.0);
            PerturbationNorm::from_gramians(blocks, 2, 3).unwrap()
        };
        let cfg = EnforcementConfig { sweep_points: 150, max_iterations: 60, ..Default::default() };
        let out_std = enforce_passivity(&model, &standard, 6000.0, &cfg).unwrap();
        let out_w = enforce_passivity(&model, &heavy, 6000.0, &cfg).unwrap();
        assert!(out_std.report.passive && out_w.report.passive);
        let dev = |m: &PoleResidueModel| -> f64 {
            let mut acc: f64 = 0.0;
            for k in 1..40 {
                let w = k as f64 * 20.0;
                let a = m.evaluate_at_omega(w).unwrap()[(0, 0)];
                let b = model.evaluate_at_omega(w).unwrap()[(0, 0)];
                acc = acc.max((a - b).abs());
            }
            acc
        };
        assert!(
            dev(&out_w.model) <= dev(&out_std.model) + 1e-12,
            "heavily weighting element (0,0) must not increase its deviation"
        );
        let _ = sigma_max_at(&out_w.model, 900.0).unwrap();
        let _ = assess(&out_w.model, &[0.0, 900.0]).unwrap();
    }
}

#[cfg(test)]
mod asymptotic_tests {
    use super::*;
    use pim_linalg::svd::sigma_max;
    use pim_linalg::{CMat, Complex64};

    #[test]
    fn clipping_reduces_feedthrough_singular_values() {
        let model = PoleResidueModel::new(
            vec![Complex64::new(-100.0, 0.0)],
            vec![CMat::from_diag(&[Complex64::new(10.0, 0.0), Complex64::new(5.0, 0.0)])],
            Mat::from_rows(&[&[1.05, 0.2], &[0.2, 0.7]]),
        )
        .unwrap();
        let before = sigma_max(&model.d().to_complex()).unwrap();
        assert!(before > 1.0);
        let clipped = enforce_asymptotic_passivity(&model, 0.999).unwrap();
        let after = sigma_max(&clipped.d().to_complex()).unwrap();
        assert!(after <= 0.999 + 1e-9, "after {after}");
        // The smaller singular value and the residues are untouched.
        assert!(clipped.residues()[0].max_abs_diff(&model.residues()[0]) < 1e-15);
        // An already-contractive D passes through unchanged.
        let same = enforce_asymptotic_passivity(&clipped, 0.999).unwrap();
        assert!(same.d().max_abs_diff(clipped.d()) < 1e-12);
        assert!(enforce_asymptotic_passivity(&model, 0.0).is_err());
    }
}
