//! Linearization of the local passivity constraints (eq. 8 of the paper).
//!
//! At a frequency `ω_ν` where a singular value `σ_i(jω_ν)` of the scattering
//! matrix exceeds (or approaches) one, a first-order expansion with respect
//! to a perturbation `δC` of the state-space output matrix gives
//!
//! ```text
//! δσ_i ≈ Re( u_iᴴ · δS(jω_ν) · v_i ),   δS_ij(jω) = δc_ij · φ(jω),
//! φ(jω) = (jωI − A_e)⁻¹ b_e,
//! ```
//!
//! where `(u_i, v_i)` are the singular vectors and `(A_e, b_e)` the common
//! per-element realization of the macromodel. Stacking the coefficients over
//! all matrix elements yields one row of the constraint system
//! `F·vec(δC) ≤ g` used by the quadratic program of eq. (9).

use crate::{PassivityError, Result};
use pim_linalg::lu::CLu;
use pim_linalg::svd::svd;
use pim_linalg::{Complex64, Mat};
use pim_statespace::{PoleResidueModel, StateSpace};

/// The linearized passivity constraint system `F·x ≤ g`, where the unknown
/// vector `x` stacks the per-element output-row perturbations `δc_ij`
/// (element `(i, j)` occupies the slice `[(i·P + j)·N, (i·P + j + 1)·N)`).
#[derive(Debug, Clone)]
pub struct ConstraintSystem {
    /// Constraint coefficient matrix (one row per constrained singular value
    /// and frequency).
    pub f: Mat,
    /// Right-hand side: the available singular-value headroom `1 − δ − σ_i`.
    pub g: Vec<f64>,
    /// Number of matrix elements (`P²`).
    pub elements: usize,
    /// States per element (`N`).
    pub states_per_element: usize,
}

impl ConstraintSystem {
    /// Total number of unknowns `P²·N`.
    pub fn unknowns(&self) -> usize {
        self.elements * self.states_per_element
    }

    /// Number of constraint rows.
    pub fn rows(&self) -> usize {
        self.g.len()
    }
}

/// Builds the linearized constraint system for the given macromodel at the
/// listed frequencies.
///
/// For every frequency, all singular values larger than `sigma_threshold`
/// contribute one constraint forcing the perturbed singular value below
/// `1 − margin`.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] for an empty frequency list and
/// propagates numerical failures.
pub fn build_constraints(
    model: &PoleResidueModel,
    element_realization: &StateSpace,
    omegas: &[f64],
    sigma_threshold: f64,
    margin: f64,
) -> Result<ConstraintSystem> {
    if omegas.is_empty() {
        return Err(PassivityError::InvalidInput(
            "constraint construction requires at least one frequency".into(),
        ));
    }
    if !(margin >= 0.0) || margin >= 1.0 {
        return Err(PassivityError::InvalidInput(format!(
            "margin must lie in [0, 1), got {margin}"
        )));
    }
    let ports = model.ports();
    let n_states = element_realization.order();
    let elements = ports * ports;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut g: Vec<f64> = Vec::new();

    // The shifted matrix jωI − A_e differs between frequencies only on the
    // diagonal: build the negated A once and patch the diagonal per ω.
    let neg_a = element_realization.a().to_complex().scaled_real(-1.0);
    let b_cplx = element_realization.b().to_complex();
    for &omega in omegas {
        // φ(jω) = (jωI − A_e)⁻¹ b_e  (shared by every matrix element).
        let s = Complex64::from_imag(omega);
        let n = element_realization.order();
        let mut si_a = neg_a.clone();
        for i in 0..n {
            si_a[(i, i)] += s;
        }
        let phi = CLu::new(&si_a)?.solve(&b_cplx)?;

        let s_matrix = model.evaluate_at_omega(omega).map_err(PassivityError::StateSpace)?;
        let decomposition = svd(&s_matrix)?;
        for (idx, &sigma) in decomposition.singular_values.iter().enumerate() {
            if sigma <= sigma_threshold {
                continue;
            }
            let u = &decomposition.u;
            let v = &decomposition.v;
            let mut row = vec![0.0; elements * n_states];
            for i in 0..ports {
                for j in 0..ports {
                    let scale = u[(i, idx)].conj() * v[(j, idx)];
                    let base = (i * ports + j) * n_states;
                    for m in 0..n_states {
                        row[base + m] += (scale * phi[(m, 0)]).re;
                    }
                }
            }
            rows.push(row);
            g.push(1.0 - margin - sigma);
        }
    }

    let f = Mat::from_fn(rows.len(), elements * n_states, |r, c| rows[r][c]);
    Ok(ConstraintSystem { f, g, elements, states_per_element: n_states })
}

/// Applies a stacked perturbation vector (as produced by the quadratic
/// program) to a pole–residue model, returning the perturbed model.
///
/// The mapping follows the per-element realization convention of
/// [`StateSpace::from_pole_residue_element`]: for a real pole the residue
/// perturbation equals the corresponding `δc` entry, for a complex pair the
/// two entries are `2·Re(δR)` and `2·Im(δR)`.
///
/// # Errors
///
/// Returns [`PassivityError::InvalidInput`] on a length mismatch and
/// propagates model reconstruction failures.
pub fn apply_perturbation(model: &PoleResidueModel, delta: &[f64]) -> Result<PoleResidueModel> {
    let ports = model.ports();
    let n = model.order();
    if delta.len() != ports * ports * n {
        return Err(PassivityError::InvalidInput(format!(
            "perturbation vector has {} entries, expected {}",
            delta.len(),
            ports * ports * n
        )));
    }
    let mut residues = model.residues().to_vec();
    for i in 0..ports {
        for j in 0..ports {
            let base = (i * ports + j) * n;
            let mut m = 0usize;
            while m < n {
                if model.is_real_pole(m) {
                    residues[m][(i, j)] += Complex64::from_real(delta[base + m]);
                    m += 1;
                } else {
                    let dr = Complex64::new(0.5 * delta[base + m], 0.5 * delta[base + m + 1]);
                    residues[m][(i, j)] += dr;
                    residues[m + 1][(i, j)] += dr.conj();
                    m += 2;
                }
            }
        }
    }
    Ok(PoleResidueModel::new(model.poles().to_vec(), residues, model.d().clone())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::CMat;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn violating_two_port() -> PoleResidueModel {
        let p = c(-60.0, 900.0);
        let r =
            CMat::from_fn(2, 2, |i, j| c(20.0 + 5.0 * (i + j) as f64, 8.0 - 2.0 * (i + j) as f64));
        PoleResidueModel::new(
            vec![p, p.conj(), c(-2000.0, 0.0)],
            vec![r.clone(), r.conj(), CMat::from_diag(&[c(100.0, 0.0), c(80.0, 0.0)])],
            Mat::from_fn(2, 2, |i, j| if i == j { 0.8 } else { 0.05 }),
        )
        .unwrap()
    }

    #[test]
    fn constraint_rows_predict_sigma_change() {
        let model = violating_two_port();
        let element = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let omega = 900.0;
        let cons = build_constraints(&model, &element, &[omega], 0.0, 0.0).unwrap();
        assert!(cons.rows() >= 1);
        assert_eq!(cons.unknowns(), 4 * 3);
        // Take a small random-ish perturbation and verify the first-order
        // prediction of the largest singular value change.
        let delta: Vec<f64> = (0..cons.unknowns()).map(|k| 1e-5 * ((k % 7) as f64 - 3.0)).collect();
        let predicted_change: f64 = (0..cons.unknowns()).map(|k| cons.f[(0, k)] * delta[k]).sum();
        let sigma_before = crate::check::sigma_max_at(&model, omega).unwrap();
        let perturbed = apply_perturbation(&model, &delta).unwrap();
        let sigma_after = crate::check::sigma_max_at(&perturbed, omega).unwrap();
        let actual_change = sigma_after - sigma_before;
        assert!(
            (predicted_change - actual_change).abs() < 0.05 * actual_change.abs().max(1e-9),
            "prediction {predicted_change} vs actual {actual_change}"
        );
    }

    #[test]
    fn headroom_is_negative_for_violations() {
        let model = violating_two_port();
        let element = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let cons = build_constraints(&model, &element, &[900.0], 1.0, 0.0).unwrap();
        // Only violated singular values are constrained with threshold 1.0,
        // and their headroom 1 - sigma is negative.
        assert!(cons.g.iter().all(|&x| x < 0.0));
    }

    #[test]
    fn threshold_filters_constraints() {
        let model = violating_two_port();
        let element = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let all = build_constraints(&model, &element, &[900.0], 0.0, 0.0).unwrap();
        let only_big = build_constraints(&model, &element, &[900.0], 1.0, 0.0).unwrap();
        assert!(all.rows() >= only_big.rows());
        assert!(build_constraints(&model, &element, &[], 0.0, 0.0).is_err());
        assert!(build_constraints(&model, &element, &[900.0], 0.0, 1.5).is_err());
    }

    #[test]
    fn apply_perturbation_round_trip_on_zero() {
        let model = violating_two_port();
        let zero = vec![0.0; 4 * 3];
        let same = apply_perturbation(&model, &zero).unwrap();
        for (a, b) in model.residues().iter().zip(same.residues()) {
            assert!(a.max_abs_diff(b) < 1e-15);
        }
        assert!(apply_perturbation(&model, &[0.0; 5]).is_err());
    }

    #[test]
    fn perturbation_preserves_conjugate_residue_structure() {
        let model = violating_two_port();
        let delta: Vec<f64> = (0..12).map(|k| (k as f64) * 1e-3).collect();
        let perturbed = apply_perturbation(&model, &delta).unwrap();
        // The model constructor validates conjugate pairing, so reaching this
        // point means the structure was preserved; also check stability and
        // that something actually changed.
        assert!(perturbed.is_stable());
        let changed = model.residues()[0].max_abs_diff(&perturbed.residues()[0]);
        assert!(changed > 0.0);
    }
}
