//! Dense complex matrices stored in row-major order.

use crate::{Complex64, LinalgError, Mat, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of [`Complex64`] values.
///
/// ```
/// use pim_linalg::{CMat, Complex64};
///
/// let s = CMat::identity(2).scaled(Complex64::new(0.0, 1.0));
/// assert_eq!(s[(0, 0)], Complex64::new(0.0, 1.0));
/// assert_eq!(s.hermitian()[(0, 0)], Complex64::new(0.0, -1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat { rows, cols, data: vec![Complex64::ZERO; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut m = CMat::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "inconsistent row length in from_rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let mut m = CMat::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector (`n × 1`) from a slice.
    pub fn col_vector(v: &[Complex64]) -> Self {
        CMat { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Read-only access to the underlying row-major storage.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[Complex64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable access to two distinct rows at once (used by the Givens
    /// rotation kernels of the Hessenberg/Schur iterations).
    ///
    /// # Panics
    ///
    /// Panics if `i == k` or either index is out of bounds.
    pub fn two_rows_mut(&mut self, i: usize, k: usize) -> (&mut [Complex64], &mut [Complex64]) {
        assert!(i != k && i < self.rows && k < self.rows, "two_rows_mut invalid row pair");
        let cols = self.cols;
        let (lo, hi) = if i < k { (i, k) } else { (k, i) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let row_lo = &mut head[lo * cols..(lo + 1) * cols];
        let row_hi = &mut tail[..cols];
        if i < k {
            (row_lo, row_hi)
        } else {
            (row_hi, row_lo)
        }
    }

    /// Returns column `j` as an owned `Vec`.
    ///
    /// Prefer [`CMat::col_iter`] in hot paths: it visits the same entries
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<Complex64> {
        self.col_iter(j).collect()
    }

    /// Strided, allocation-free iterator over column `j` (top to bottom).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_iter(&self, j: usize) -> impl ExactSizeIterator<Item = Complex64> + '_ {
        assert!(j < self.cols, "column index out of bounds");
        // `get` keeps the zero-row case (empty backing storage) a valid,
        // empty iterator instead of an out-of-range slice panic.
        self.data.get(j..).unwrap_or(&[]).iter().step_by(self.cols).copied()
    }

    /// Transpose (without conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate (Hermitian) transpose.
    pub fn hermitian(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> CMat {
        CMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)].conj())
    }

    /// Matrix product `self · rhs`.
    ///
    /// Computed by the same cache-blocked `axpy` kernel as
    /// [`Mat::matmul_into`](crate::Mat::matmul_into); use [`CMat::matmul_into`]
    /// to reuse an output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &CMat) -> Result<CMat> {
        let mut out = CMat::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhs` written into a caller-provided output
    /// matrix (overwritten), avoiding the allocation of [`CMat::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &CMat, out: &mut CMat) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "CMat::matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::DimensionMismatch {
                context: "CMat::matmul_into output",
                left: (self.rows, rhs.cols),
                right: out.shape(),
            });
        }
        out.data.fill(Complex64::ZERO);
        let (k_dim, n) = rhs.shape();
        if n == 0 || k_dim == 0 {
            return Ok(());
        }
        const KC: usize = 32;
        for kb in (0..k_dim).step_by(KC) {
            let k_end = (kb + KC).min(k_dim);
            for (a_row, out_row) in
                self.data.chunks_exact(self.cols).zip(out.data.chunks_exact_mut(n))
            {
                for (k, &aik) in a_row[kb..k_end].iter().enumerate() {
                    if aik == Complex64::ZERO {
                        continue;
                    }
                    let b_row = &rhs.data[(kb + k) * n..(kb + k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += aik * b;
                    }
                }
            }
        }
        Ok(())
    }

    /// Reference (naive triple-loop) product used as the oracle for the
    /// blocked kernel in tests.
    #[cfg(test)]
    pub(crate) fn matmul_naive(&self, rhs: &CMat) -> Result<CMat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "CMat::matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[Complex64]) -> Result<Vec<Complex64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "CMat::matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Scales every entry by `k`, returning a new matrix.
    pub fn scaled(&self, k: Complex64) -> CMat {
        let mut out = self.clone();
        out.scale_in_place(k);
        out
    }

    /// Scales every entry by `k` in place (no allocation).
    pub fn scale_in_place(&mut self, k: Complex64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Scales every entry by a real factor, returning a new matrix.
    pub fn scaled_real(&self, k: f64) -> CMat {
        self.scaled(Complex64::from_real(k))
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v.abs_sq()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Extracts the block with top-left corner `(row, col)` and size `(nrows, ncols)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> CMat {
        assert!(row + nrows <= self.rows && col + ncols <= self.cols, "block out of bounds");
        CMat::from_fn(nrows, ncols, |i, j| self[(row + i, col + j)])
    }

    /// Writes `block` into this matrix with top-left corner `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, row: usize, col: usize, block: &CMat) {
        assert!(
            row + block.rows <= self.rows && col + block.cols <= self.cols,
            "set_block out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(row + i, col + j)] = block[(i, j)];
            }
        }
    }

    /// Real part as a real matrix.
    pub fn real(&self) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }

    /// Imaginary part as a real matrix.
    pub fn imag(&self) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| self[(i, j)].im)
    }

    /// Builds a complex matrix from separate real and imaginary parts.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn from_parts(re: &Mat, im: &Mat) -> CMat {
        assert_eq!(re.shape(), im.shape(), "from_parts shape mismatch");
        CMat::from_fn(re.rows(), re.cols(), |i, j| Complex64::new(re[(i, j)], im[(i, j)]))
    }

    /// Inverse via LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a zero pivot is encountered.
    pub fn inverse(&self) -> Result<CMat> {
        crate::lu::cinverse(self)
    }

    /// Solves `self · X = B` via LU factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::DimensionMismatch`],
    /// or [`LinalgError::Singular`] as appropriate.
    pub fn solve(&self, b: &CMat) -> Result<CMat> {
        crate::lu::csolve(self, b)
    }

    /// Maximum absolute difference with another matrix of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &CMat) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(other.data.iter()).fold(0.0_f64, |m, (a, b)| m.max((*a - *b).abs()))
    }

    /// Returns `true` if the matrix is Hermitian to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            if self[(i, i)].im.abs() > tol {
                return false;
            }
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(self.shape(), rhs.shape(), "CMat add shape mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += *r;
        }
        out
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(self.shape(), rhs.shape(), "CMat sub shape mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= *r;
        }
        out
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scaled_real(-1.0)
    }
}

impl AddAssign<&CMat> for CMat {
    fn add_assign(&mut self, rhs: &CMat) {
        assert_eq!(self.shape(), rhs.shape(), "CMat add_assign shape mismatch");
        for (o, r) in self.data.iter_mut().zip(rhs.data.iter()) {
            *o += *r;
        }
    }
}

impl SubAssign<&CMat> for CMat {
    fn sub_assign(&mut self, rhs: &CMat) {
        assert_eq!(self.shape(), rhs.shape(), "CMat sub_assign shape mismatch");
        for (o, r) in self.data.iter_mut().zip(rhs.data.iter()) {
            *o -= *r;
        }
    }
}

impl Mul<Complex64> for &CMat {
    type Output = CMat;
    fn mul(self, k: Complex64) -> CMat {
        self.scaled(k)
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            let row: Vec<String> = (0..self.cols.min(8))
                .map(|j| format!("{:.3e}{:+.3e}i", self[(i, j)].re, self[(i, j)].im))
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn constructors_and_indexing() {
        let a = CMat::from_rows(&[&[c(1.0, 1.0), c(2.0, 0.0)], &[c(0.0, -1.0), c(3.0, 0.5)]]);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a[(1, 0)], c(0.0, -1.0));
        assert_eq!(a.col(1), vec![c(2.0, 0.0), c(3.0, 0.5)]);
        let i = CMat::identity(3);
        assert_eq!(i.trace(), c(3.0, 0.0));
        let d = CMat::from_diag(&[c(1.0, 2.0)]);
        assert_eq!(d[(0, 0)], c(1.0, 2.0));
    }

    #[test]
    fn hermitian_transpose_and_conj() {
        let a = CMat::from_rows(&[&[c(1.0, 1.0), c(2.0, -3.0)], &[c(0.0, 4.0), c(5.0, 0.0)]]);
        let h = a.hermitian();
        assert_eq!(h[(0, 1)], c(0.0, -4.0));
        assert_eq!(h[(1, 0)], c(2.0, 3.0));
        assert_eq!(a.transpose()[(0, 1)], c(0.0, 4.0));
        assert_eq!(a.conj()[(0, 0)], c(1.0, -1.0));
    }

    #[test]
    fn matmul_identity_and_products() {
        let a = CMat::from_rows(&[&[c(1.0, 1.0), c(2.0, 0.0)], &[c(0.0, -1.0), c(3.0, 0.5)]]);
        let i = CMat::identity(2);
        assert!(a.matmul(&i).unwrap().max_abs_diff(&a) < 1e-15);
        // (A A^H) must be Hermitian
        let aah = a.matmul(&a.hermitian()).unwrap();
        assert!(aah.is_hermitian(1e-14));
        assert!(a.matmul(&CMat::zeros(3, 3)).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_oracle() {
        for &(m, k, n) in &[(1, 1, 1), (2, 33, 5), (9, 40, 9), (7, 65, 3)] {
            let a = CMat::from_fn(m, k, |i, j| {
                c(((i * 31 + j * 17) % 13) as f64 - 6.0, ((i + 2 * j) % 5) as f64)
            });
            let b = CMat::from_fn(k, n, |i, j| {
                c(((i * 7 + j * 29) % 11) as f64 - 5.0, ((3 * i + j) % 7) as f64 - 3.0)
            });
            let fast = a.matmul(&b).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            assert!(fast.max_abs_diff(&slow) < 1e-12, "mismatch for {m}x{k}x{n}");
        }
        // Degenerate shapes produce empty results, not a panic.
        let empty = CMat::zeros(2, 3).matmul(&CMat::zeros(3, 0)).unwrap();
        assert_eq!(empty.shape(), (2, 0));
        let zero_k = CMat::zeros(2, 0).matmul(&CMat::zeros(0, 3)).unwrap();
        assert_eq!(zero_k.shape(), (2, 3));
        assert_eq!((zero_k.max_abs()).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn col_iter_two_rows_mut_and_scale_in_place() {
        let a = CMat::from_rows(&[&[c(1.0, 0.0), c(2.0, 1.0)], &[c(3.0, -1.0), c(4.0, 0.0)]]);
        let col: Vec<Complex64> = a.col_iter(1).collect();
        assert_eq!(col, vec![c(2.0, 1.0), c(4.0, 0.0)]);
        assert_eq!(a.row(1), &[c(3.0, -1.0), c(4.0, 0.0)]);
        let mut b = a.clone();
        {
            let (r1, r0) = b.two_rows_mut(1, 0);
            assert_eq!(r0[0], c(1.0, 0.0));
            assert_eq!(r1[0], c(3.0, -1.0));
            r1[0] = c(9.0, 9.0);
        }
        assert_eq!(b[(1, 0)], c(9.0, 9.0));
        let mut s = a.clone();
        s.scale_in_place(c(0.0, 1.0));
        assert!(s.max_abs_diff(&a.scaled(c(0.0, 1.0))) < 1e-15);
        // Zero-row matrices yield empty columns, not a slice panic.
        let empty = CMat::zeros(0, 2);
        assert_eq!(empty.col_iter(1).len(), 0);
        assert!(empty.col(1).is_empty());
    }

    #[test]
    fn matvec_and_scaling() {
        let a = CMat::identity(2).scaled(c(0.0, 2.0));
        let v = a.matvec(&[c(1.0, 0.0), c(0.0, 1.0)]).unwrap();
        assert_eq!(v[0], c(0.0, 2.0));
        assert_eq!(v[1], c(-2.0, 0.0));
        assert!(a.matvec(&[c(1.0, 0.0)]).is_err());
        assert_eq!(a.scaled_real(0.5)[(0, 0)], c(0.0, 1.0));
    }

    #[test]
    fn parts_roundtrip_and_norms() {
        let re = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let im = Mat::from_rows(&[&[-1.0, 0.0], &[0.5, 2.0]]);
        let a = CMat::from_parts(&re, &im);
        assert!(a.real().max_abs_diff(&re) < 1e-15);
        assert!(a.imag().max_abs_diff(&im) < 1e-15);
        assert!(a.frobenius_norm() > 0.0);
        assert!(a.max_abs() >= 4.0);
    }

    #[test]
    fn blocks_and_elementwise() {
        let a = CMat::identity(3);
        let b = a.block(1, 1, 2, 2);
        assert_eq!(b, CMat::identity(2));
        let mut m = CMat::zeros(3, 3);
        m.set_block(0, 1, &CMat::identity(2));
        assert_eq!(m[(1, 2)], Complex64::ONE);
        let s = &a + &a;
        assert_eq!(s[(0, 0)], c(2.0, 0.0));
        let d = &s - &a;
        assert!(d.max_abs_diff(&a) < 1e-15);
        assert_eq!((-&a)[(2, 2)], c(-1.0, 0.0));
        let mut t = a.clone();
        t += &a;
        t -= &a;
        assert!(t.max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn hermitian_check() {
        let h = CMat::from_rows(&[&[c(2.0, 0.0), c(1.0, 1.0)], &[c(1.0, -1.0), c(3.0, 0.0)]]);
        assert!(h.is_hermitian(1e-14));
        let nh = CMat::from_rows(&[&[c(2.0, 0.1), c(1.0, 1.0)], &[c(1.0, -1.0), c(3.0, 0.0)]]);
        assert!(!nh.is_hermitian(1e-14));
        assert!(!CMat::zeros(1, 2).is_hermitian(1e-14));
    }

    #[test]
    fn display_does_not_panic() {
        let s = format!("{}", CMat::identity(2));
        assert!(s.contains("CMat 2x2"));
    }
}
