//! Complex Schur decomposition `A = U·T·Uᴴ` via the single-shift (Wilkinson)
//! QR iteration on the Hessenberg form.
//!
//! The Schur form is the workhorse behind every spectral computation in the
//! workspace: eigenvalues of pole-relocation matrices in Vector Fitting,
//! imaginary eigenvalues of Hamiltonian matrices for the passivity test, and
//! the Bartels–Stewart solution of Lyapunov equations for Gramian-weighted
//! perturbation norms.

use crate::hessenberg::{hessenberg, Givens};
use crate::{CMat, Complex64, LinalgError, Mat, Result};

/// Complex Schur decomposition of a square matrix.
#[derive(Debug, Clone)]
pub struct Schur {
    /// Upper-triangular Schur factor; its diagonal carries the eigenvalues.
    pub t: CMat,
    /// Unitary Schur vectors, `A = U·T·Uᴴ`.
    pub u: CMat,
}

impl Schur {
    /// Eigenvalues read off the diagonal of `T`.
    pub fn eigenvalues(&self) -> Vec<Complex64> {
        (0..self.t.rows()).map(|i| self.t[(i, i)]).collect()
    }
}

/// Maximum QR iterations allowed per eigenvalue before declaring failure.
const MAX_ITER_PER_EIGENVALUE: usize = 60;

/// Computes the complex Schur decomposition of a complex square matrix.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NonConvergence`] if the QR iteration stalls (which, with
/// Wilkinson shifts plus exceptional shifts, indicates pathological input
/// such as NaNs).
///
/// ```
/// use pim_linalg::{CMat, Complex64, schur::complex_schur};
///
/// # fn main() -> Result<(), pim_linalg::LinalgError> {
/// let a = CMat::from_rows(&[
///     &[Complex64::new(0.0, 0.0), Complex64::new(-1.0, 0.0)],
///     &[Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)],
/// ]);
/// let s = complex_schur(&a)?;
/// let mut ev = s.eigenvalues();
/// ev.sort_by(|a, b| a.im.partial_cmp(&b.im).unwrap());
/// assert!((ev[0].im + 1.0).abs() < 1e-12 && (ev[1].im - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn complex_schur(a: &CMat) -> Result<Schur> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "complex_schur", dims: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Schur { t: CMat::zeros(0, 0), u: CMat::zeros(0, 0) });
    }
    let hes = hessenberg(a)?;
    let mut t = hes.h;
    let mut u = hes.q;
    qr_iterate(&mut t, Some(&mut u))?;
    // Clean the strictly lower triangle (roundoff only).
    for i in 0..n {
        for j in 0..i {
            t[(i, j)] = Complex64::ZERO;
        }
    }
    Ok(Schur { t, u })
}

/// Eigenvalues of a complex square matrix via the Schur iteration **without**
/// accumulating the unitary factor.
///
/// This is the fast path behind [`crate::eig::eigenvalues`]: skipping the `U`
/// updates and restricting every rotation to the active diagonal block
/// roughly halves the work per QR sweep while producing bit-identical
/// eigenvalues (entries outside the active block never feed back into it,
/// and the spectrum of a block-triangular matrix is the union of its
/// diagonal blocks' spectra).
///
/// # Errors
///
/// See [`complex_schur`].
pub fn complex_schur_eigenvalues(a: &CMat) -> Result<Vec<Complex64>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "complex_schur", dims: a.shape() });
    }
    let t = crate::hessenberg::hessenberg_h_only(a)?;
    hessenberg_eigenvalues(t)
}

/// Eigenvalues of a matrix that is **already** upper Hessenberg, skipping
/// the redundant reduction pass of [`complex_schur_eigenvalues`] (used by
/// [`crate::eig::eigenvalues`] after its real-arithmetic reduction).
pub(crate) fn hessenberg_eigenvalues(mut t: CMat) -> Result<Vec<Complex64>> {
    qr_iterate(&mut t, None)?;
    Ok((0..t.rows()).map(|i| t[(i, i)]).collect())
}

/// Single-shift QR iteration driving a Hessenberg matrix to triangular form.
///
/// With `u = Some(..)` the rotations are applied over the full row/column
/// range and accumulated into `u`, yielding a true Schur decomposition. With
/// `u = None` only the active block is updated — sufficient (and exact) when
/// only the eigenvalues are required.
fn qr_iterate(t: &mut CMat, mut u: Option<&mut CMat>) -> Result<()> {
    let n = t.rows();
    if n <= 1 {
        return Ok(());
    }
    let norm_scale = t.max_abs().max(f64::MIN_POSITIVE);
    let eps = f64::EPSILON;
    let mut hi = n - 1;
    let mut iter_this_eig = 0usize;
    let mut total_iter = 0usize;
    let total_budget = MAX_ITER_PER_EIGENVALUE * n.max(4);
    let mut rotations: Vec<(usize, Givens)> = Vec::with_capacity(n);

    loop {
        // Deflate negligible subdiagonal entries.
        for i in 1..=hi {
            let threshold = eps * (t[(i - 1, i - 1)].abs() + t[(i, i)].abs()).max(norm_scale * eps);
            if t[(i, i - 1)].abs() <= threshold {
                t[(i, i - 1)] = Complex64::ZERO;
            }
        }
        // Shrink the active block from the bottom while subdiagonals are zero.
        // audit:allow(float-eq): deflation requires a bitwise-zero subdiagonal, set by the iteration
        while hi > 0 && t[(hi, hi - 1)].abs() == 0.0 {
            hi -= 1;
            iter_this_eig = 0;
        }
        if hi == 0 {
            break;
        }
        // Find the top of the active (unreduced) block.
        let mut lo = hi;
        // audit:allow(float-eq): active block ends at the bitwise-zero subdiagonal
        while lo > 0 && t[(lo, lo - 1)].abs() != 0.0 {
            lo -= 1;
        }

        iter_this_eig += 1;
        total_iter += 1;
        if total_iter > total_budget {
            return Err(LinalgError::NonConvergence {
                context: "complex_schur QR iteration",
                iterations: total_iter,
            });
        }

        // Wilkinson shift from the trailing 2x2 block, replaced by ad-hoc
        // exceptional shifts after a stall — LAPACK (`zlahqr`) style, at
        // stalled-iteration counts 10 and 20 (mod 30). Two *different*
        // exceptional shifts are used so a cycle that survives one of them
        // is broken by the other: the dat1-damped shift keeps the iteration
        // near the trailing eigenvalue (effective when eigenvalues cluster
        // on a circle, e.g. Hamiltonian spectra hugging the imaginary
        // axis), while the magnitude shift jumps far from the cluster.
        let stall = iter_this_eig % 30;
        let shift = if stall == 10 {
            // zlahqr's exceptional shift: dat1·|subdiag| + trailing entry.
            t[(hi, hi)] + Complex64::from_real(0.75 * t[(hi, hi - 1)].abs())
        } else if stall == 20 {
            Complex64::from_real(t[(hi, hi - 1)].abs() + t[(hi, hi)].abs())
        } else {
            wilkinson_shift(t[(hi - 1, hi - 1)], t[(hi - 1, hi)], t[(hi, hi - 1)], t[(hi, hi)])
        };

        // Explicit single-shift QR sweep on the active block [lo, hi]. For
        // the eigenvalue-only path the row updates stop at column `hi` and
        // the column updates start at row `lo`: entries outside the block
        // are never read again by shifts, deflation checks or rotations.
        let (col_to, row_from) = if u.is_some() { (n, 0) } else { (hi + 1, lo) };
        for i in lo..=hi {
            t[(i, i)] -= shift;
        }
        rotations.clear();
        for k in lo..hi {
            let g = Givens::compute(t[(k, k)], t[(k + 1, k)]);
            g.apply_left(t, k, k + 1, k, col_to);
            t[(k + 1, k)] = Complex64::ZERO;
            rotations.push((k, g));
        }
        for &(k, g) in &rotations {
            g.apply_right(t, k, k + 1, row_from, (k + 2).min(hi + 1));
            if let Some(u) = u.as_deref_mut() {
                g.apply_right(u, k, k + 1, 0, n);
            }
        }
        for i in lo..=hi {
            t[(i, i)] += shift;
        }
    }
    Ok(())
}

/// Computes the complex Schur decomposition of a real matrix.
///
/// # Errors
///
/// See [`complex_schur`].
pub fn real_to_complex_schur(a: &Mat) -> Result<Schur> {
    complex_schur(&a.to_complex())
}

/// Wilkinson shift: the eigenvalue of the 2×2 matrix `[[a, b], [c, d]]`
/// closest to `d`.
fn wilkinson_shift(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Complex64 {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = (tr * tr - det.scale(4.0)).sqrt();
    let l1 = (tr + disc).scale(0.5);
    let l2 = (tr - disc).scale(0.5);
    if (l1 - d).abs() < (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_cmat(n: usize, seed: u64) -> CMat {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        CMat::from_fn(n, n, |_, _| Complex64::new(next(), next()))
    }

    fn check_schur(a: &CMat, s: &Schur, tol: f64) {
        let n = a.rows();
        // T upper triangular
        for i in 0..n {
            for j in 0..i {
                assert!(s.t[(i, j)].abs() < tol, "T not triangular at ({i},{j})");
            }
        }
        // U unitary
        let uu = s.u.hermitian().matmul(&s.u).unwrap();
        assert!(uu.max_abs_diff(&CMat::identity(n)) < tol, "U not unitary");
        // A = U T U^H
        let back = s.u.matmul(&s.t).unwrap().matmul(&s.u.hermitian()).unwrap();
        assert!(
            back.max_abs_diff(a) < tol * 10.0,
            "reconstruction failed: {}",
            back.max_abs_diff(a)
        );
    }

    #[test]
    fn schur_of_random_complex_matrices() {
        for n in [1usize, 2, 3, 4, 6, 10, 16] {
            let a = random_cmat(n, 7 + n as u64);
            let s = complex_schur(&a).unwrap();
            check_schur(&a, &s, 1e-9);
        }
    }

    #[test]
    fn schur_of_real_matrix_with_known_spectrum() {
        // Block diagonal with eigenvalues {2, -3, 1±2i}
        let a = Mat::from_rows(&[
            &[2.0, 0.0, 0.0, 0.0],
            &[0.0, -3.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 2.0],
            &[0.0, 0.0, -2.0, 1.0],
        ]);
        let s = real_to_complex_schur(&a).unwrap();
        let mut re: Vec<f64> = s.eigenvalues().iter().map(|e| e.re).collect();
        re.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((re[0] + 3.0).abs() < 1e-10);
        assert!((re[1] - 1.0).abs() < 1e-10 && (re[2] - 1.0).abs() < 1e-10);
        assert!((re[3] - 2.0).abs() < 1e-10);
        let mut im: Vec<f64> = s.eigenvalues().iter().map(|e| e.im).collect();
        im.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((im[0] + 2.0).abs() < 1e-10 && (im[3] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalue_only_path_matches_full_schur() {
        for n in [1usize, 2, 5, 12, 24] {
            let a = random_cmat(n, 31 + n as u64);
            let full = complex_schur(&a).unwrap().eigenvalues();
            let fast = complex_schur_eigenvalues(&a).unwrap();
            assert_eq!(fast.len(), n);
            // The restricted-update iteration performs identical arithmetic
            // inside the active block, so the eigenvalues agree bit for bit.
            for (x, y) in fast.iter().zip(&full) {
                assert_eq!(x, y, "eigenvalue drift for n={n}");
            }
        }
        assert!(complex_schur_eigenvalues(&CMat::zeros(2, 3)).is_err());
        assert!(complex_schur_eigenvalues(&CMat::zeros(0, 0)).unwrap().is_empty());
    }

    #[test]
    fn schur_preserves_trace_and_determinant() {
        let a = random_cmat(8, 99);
        let s = complex_schur(&a).unwrap();
        let tr_t: Complex64 = s.eigenvalues().into_iter().sum();
        assert!((tr_t - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn schur_of_defective_matrix() {
        // Jordan block: eigenvalue 1 with multiplicity 3 (defective).
        let a = Mat::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0], &[0.0, 0.0, 1.0]]);
        let s = real_to_complex_schur(&a).unwrap();
        for ev in s.eigenvalues() {
            assert!((ev.re - 1.0).abs() < 1e-6 && ev.im.abs() < 1e-6);
        }
        check_schur(&a.to_complex(), &s, 1e-8);
    }

    #[test]
    fn schur_of_rotation_like_matrix_finds_imaginary_pair() {
        // Skew-symmetric: eigenvalues ±5i.
        let a = Mat::from_rows(&[&[0.0, 5.0], &[-5.0, 0.0]]);
        let s = real_to_complex_schur(&a).unwrap();
        let mut im: Vec<f64> = s.eigenvalues().iter().map(|e| e.im).collect();
        im.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((im[0] + 5.0).abs() < 1e-10 && (im[1] - 5.0).abs() < 1e-10);
        for ev in s.eigenvalues() {
            assert!(ev.re.abs() < 1e-10);
        }
    }

    #[test]
    fn cyclic_permutation_matrices_converge_via_exceptional_shifts() {
        // Regression for the stalled-QR class behind the 3×3-board /
        // order-18 Hamiltonian failure (ROADMAP PR 3 note): eigenvalues
        // uniformly spread on a circle. The Wilkinson shift of the trailing
        // 2×2 of a cyclic permutation matrix is identically zero, so the
        // plain single-shift iteration cycles without deflating — only the
        // LAPACK-style ad-hoc shifts at stalled-iteration counts 10/20
        // break the symmetry. The eigenvalues are the n-th roots of unity.
        for n in [4usize, 8, 12, 16, 24] {
            let mut c = CMat::zeros(n, n);
            for i in 0..n {
                c[(i, (i + 1) % n)] = Complex64::from_real(1.0);
            }
            let s = complex_schur(&c).unwrap_or_else(|e| panic!("n={n}: {e}"));
            for ev in s.eigenvalues() {
                assert!((ev.abs() - 1.0).abs() < 1e-9, "n={n}: |{ev:?}| off the unit circle");
            }
            check_schur(&c, &s, 1e-9);
            let fast = complex_schur_eigenvalues(&c).unwrap();
            for (x, y) in fast.iter().zip(&s.eigenvalues()) {
                assert_eq!(x, y, "eigenvalue-only path drifted for n={n}");
            }
        }
    }

    #[test]
    fn rejects_non_square_and_handles_empty() {
        assert!(complex_schur(&CMat::zeros(2, 3)).is_err());
        let s = complex_schur(&CMat::zeros(0, 0)).unwrap();
        assert_eq!(s.eigenvalues().len(), 0);
    }

    #[test]
    fn larger_matrix_eigenvalue_sum_matches_trace() {
        let n = 30;
        let a = random_cmat(n, 1234);
        let s = complex_schur(&a).unwrap();
        check_schur(&a, &s, 1e-8);
        let sum: Complex64 = s.eigenvalues().into_iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8);
    }
}
