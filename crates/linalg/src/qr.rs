//! Householder QR factorization and linear least squares.
//!
//! Vector Fitting assembles (possibly large and moderately ill-conditioned)
//! overdetermined real linear systems; they are solved here through a
//! Householder QR factorization without explicit formation of `Q`, which is
//! both faster and more accurate than normal equations.

use crate::{LinalgError, Mat, Result};

/// Householder QR factorization of an `m × n` real matrix with `m ≥ n`.
///
/// The factor `R` (upper triangular `n × n`) and the Householder reflectors
/// are stored compactly; [`QrFactor::solve_least_squares`] applies the
/// reflectors to a right-hand side and back-substitutes.
///
/// The packed factorization is stored **column-major**: the Householder
/// elimination and the reflector applications walk whole columns, so this
/// layout makes every inner loop a contiguous slice operation (the dominant
/// cost of the Vector Fitting regression solves).
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Packed factorization, column-major (`column j` at `j*rows..(j+1)*rows`):
    /// R in the upper triangle, reflector vectors below.
    qr: Vec<f64>,
    /// Scalar coefficients of the Householder reflectors.
    tau: Vec<f64>,
    rows: usize,
    cols: usize,
}

/// Dot product with four independent accumulators, so the reduction
/// vectorizes despite strict floating-point evaluation order per lane.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0_f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let (x, y) = (&a[4 * i..4 * i + 4], &b[4 * i..4 * i + 4]);
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut tail = 0.0;
    for i in 4 * chunks..a.len() {
        tail += a[i] * b[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Euclidean norm via a vectorized sum of squares, falling back to a scaled
/// accumulation when the plain sum over- or underflows. `hypot` per element
/// would be robust too, but costs a slow libm call per entry and dominated
/// the factorization profile.
#[inline]
fn nrm2(v: &[f64]) -> f64 {
    let sumsq = dot4(v, v);
    if sumsq.is_finite() && sumsq > f64::MIN_POSITIVE {
        sumsq.sqrt()
    } else {
        let max = v.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        // audit:allow(float-eq): exact-zero column norm means a zero Householder vector
        if max == 0.0 {
            return 0.0;
        }
        let inv = 1.0 / max;
        let s: f64 = v
            .iter()
            .map(|x| {
                let y = x * inv;
                y * y
            })
            .sum();
        max * s.sqrt()
    }
}

impl QrFactor {
    /// Factorizes `a` (which must have at least as many rows as columns).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] when `m < n` or the matrix is
    /// empty.
    pub fn new(a: &Mat) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument { context: "QrFactor::new: empty matrix" });
        }
        if m < n {
            return Err(LinalgError::InvalidArgument {
                context: "QrFactor::new: system must have at least as many rows as columns",
            });
        }
        // Transpose into column-major working storage.
        let mut qr = vec![0.0; m * n];
        for (j, col) in qr.chunks_exact_mut(m).enumerate() {
            for (dst, src) in col.iter_mut().zip(a.col_iter(j)) {
                *dst = src;
            }
        }
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Columns k (the pivot) and k+1.. (the remainder) as disjoint
            // contiguous slices.
            let (head, rest) = qr.split_at_mut((k + 1) * m);
            let colk = &mut head[k * m..];
            // Householder vector for column k, rows k..m.
            let norm = nrm2(&colk[k..]);
            // audit:allow(float-eq): exact-zero column norm leaves the reflector identity
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if colk[k] >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, stored normalized so v[k] = 1.
            let v0 = colk[k] - alpha;
            for v in &mut colk[(k + 1)..] {
                *v /= v0;
            }
            tau[k] = -v0 / alpha;
            colk[k] = alpha;
            // Apply reflector to remaining columns: A <- (I - tau v v^T) A.
            let v_tail = &colk[(k + 1)..];
            for colj in rest.chunks_exact_mut(m) {
                let mut dot = colj[k] + dot4(v_tail, &colj[(k + 1)..]);
                dot *= tau[k];
                colj[k] -= dot;
                for (cj, &vi) in colj[(k + 1)..].iter_mut().zip(v_tail) {
                    *cj -= dot * vi;
                }
            }
        }
        Ok(QrFactor { qr, tau, rows: m, cols: n })
    }

    /// Entry `(i, j)` of the packed factorization.
    #[inline]
    fn packed(&self, i: usize, j: usize) -> f64 {
        self.qr[j * self.rows + i]
    }

    /// Returns the upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Mat {
        Mat::from_fn(self.cols, self.cols, |i, j| if j >= i { self.packed(i, j) } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.apply_qt_in_place(&mut y);
        y
    }

    /// Applies `Qᵀ` to a vector of length `m`, in place.
    ///
    /// This exposes the Householder reflectors for callers that factor a
    /// shared column block once and transform many additional columns
    /// against it (the Vector Fitting pole-relocation compression).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the factored row count.
    pub fn apply_qt_in_place(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "apply_qt_in_place length mismatch");
        for k in 0..self.cols {
            // audit:allow(float-eq): tau is stored as literal 0.0 for identity reflectors
            if self.tau[k] == 0.0 {
                continue;
            }
            let v_tail = &self.qr[k * self.rows + k + 1..(k + 1) * self.rows];
            let mut dot = y[k] + dot4(v_tail, &y[(k + 1)..]);
            dot *= self.tau[k];
            y[k] -= dot;
            for (yi, &vi) in y[(k + 1)..].iter_mut().zip(v_tail) {
                *yi -= dot * vi;
            }
        }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Solves the least squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != m` and
    /// [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal
    /// entry, indicating rank deficiency.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "QrFactor::solve_least_squares",
                left: (self.rows, self.cols),
                right: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        let mut x = vec![0.0; self.cols];
        let max_abs = self.qr.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let tol = f64::EPSILON * self.rows as f64 * max_abs;
        for i in (0..self.cols).rev() {
            let mut acc = y[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.packed(i, j) * xj;
            }
            let d = self.packed(i, i);
            if d.abs() <= tol {
                return Err(LinalgError::Singular { context: "QrFactor::solve_least_squares" });
            }
            x[i] = acc / d;
        }
        Ok(x)
    }

    /// Residual norm `‖A·x − b‖₂` of a candidate solution (helper mostly for
    /// tests and diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on inconsistent lengths.
    pub fn residual_norm(a: &Mat, x: &[f64], b: &[f64]) -> Result<f64> {
        let ax = a.matvec(x)?;
        if ax.len() != b.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "QrFactor::residual_norm",
                left: (ax.len(), 1),
                right: (b.len(), 1),
            });
        }
        Ok(ax.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt())
    }
}

/// One-shot least squares solve `min ‖A·x − b‖₂` via Householder QR.
///
/// # Errors
///
/// See [`QrFactor::new`] and [`QrFactor::solve_least_squares`].
pub fn lstsq(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    QrFactor::new(a)?.solve_least_squares(b)
}

/// Least squares with column equilibration and (optional) Tikhonov
/// regularization: solves `min ‖A·x − b‖² + λ²‖Dx‖²` where `D` rescales every
/// column of `A` to unit norm and `λ = lambda_rel · ‖A‖`.
///
/// Column scaling makes the solve robust to the extreme dynamic ranges of
/// frequency-domain regression matrices (kHz–GHz bases), and the
/// regularization returns a small-norm solution when the problem is rank
/// deficient (e.g. an over-parameterized Vector Fitting scaling function)
/// instead of failing.
///
/// # Errors
///
/// See [`QrFactor::new`]; with `lambda_rel > 0` the solve itself cannot be
/// rank deficient.
pub fn lstsq_scaled(a: &Mat, b: &[f64], lambda_rel: f64) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument { context: "lstsq_scaled: empty matrix" });
    }
    if b.len() != m {
        return Err(LinalgError::DimensionMismatch {
            context: "lstsq_scaled",
            left: (m, n),
            right: (b.len(), 1),
        });
    }
    // Column norms via row-wise sum-of-squares accumulation (unit fallback
    // for identically zero columns). Columns whose plain sum of squares
    // over- or underflows are recomputed through the scaled `nrm2` path.
    let mut norms = vec![0.0_f64; n];
    for row in a.as_slice().chunks_exact(n) {
        for (s, &v) in norms.iter_mut().zip(row) {
            *s += v * v;
        }
    }
    let mut colbuf = Vec::new();
    for (j, nj) in norms.iter_mut().enumerate() {
        if nj.is_finite() && *nj > f64::MIN_POSITIVE {
            *nj = nj.sqrt();
        } else {
            colbuf.clear();
            colbuf.extend(a.col_iter(j));
            let norm = nrm2(&colbuf);
            *nj = if norm == 0.0 { 1.0 } else { norm }; // audit:allow(float-eq): exact-zero column norm falls back to unit scaling
        }
    }
    let extra = if lambda_rel > 0.0 { n } else { 0 };
    let lambda = lambda_rel;
    let mut scaled = Mat::zeros(m + extra, n);
    for i in 0..m {
        for j in 0..n {
            scaled[(i, j)] = a[(i, j)] / norms[j];
        }
    }
    let mut rhs = vec![0.0; m + extra];
    rhs[..m].copy_from_slice(b);
    if extra > 0 {
        for j in 0..n {
            scaled[(m + j, j)] = lambda;
        }
    }
    let y = QrFactor::new(&scaled)?.solve_least_squares(&rhs)?;
    Ok(y.iter().zip(&norms).map(|(v, nj)| v / nj).collect())
}

/// Solves a least squares problem with multiple right-hand sides, returning
/// the `n × k` solution matrix.
///
/// # Errors
///
/// See [`QrFactor::new`] and [`QrFactor::solve_least_squares`].
pub fn lstsq_multi(a: &Mat, b: &Mat) -> Result<Mat> {
    if b.rows() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "lstsq_multi",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let f = QrFactor::new(a)?;
    let mut x = Mat::zeros(a.cols(), b.cols());
    let mut rhs = vec![0.0; b.rows()];
    for j in 0..b.cols() {
        b.copy_col_into(j, &mut rhs);
        let col = f.solve_least_squares(&rhs)?;
        for i in 0..a.cols() {
            x[(i, j)] = col[i];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_system_exact_solution() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = vec![1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_consistent_system() {
        // Fit y = 2 + 3 t exactly through points that lie on the line.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Mat::from_fn(ts.len(), 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 2.0 + 3.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_inconsistent_minimizes_residual() {
        // Classic regression: the QR solution must match the normal equations.
        let a = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = vec![0.1, 0.9, 2.2, 2.9];
        let x = lstsq(&a, &b).unwrap();
        // Normal equations solution computed analytically.
        let ata = a.transpose().matmul(&a).unwrap();
        let atb = a.transpose().matvec(&b).unwrap();
        let x_ne = crate::lu::solve(&ata, &Mat::col_vector(&atb)).unwrap();
        assert!((x[0] - x_ne[(0, 0)]).abs() < 1e-10);
        assert!((x[1] - x_ne[(1, 0)]).abs() < 1e-10);
        // Perturbing the solution must not reduce the residual.
        let r0 = QrFactor::residual_norm(&a, &x, &b).unwrap();
        let xp = vec![x[0] + 1e-3, x[1]];
        assert!(QrFactor::residual_norm(&a, &xp, &b).unwrap() >= r0);
    }

    #[test]
    fn r_factor_is_upper_triangular_and_consistent() {
        let a = Mat::from_fn(6, 3, |i, j| ((i * 7 + j * 3 + 1) % 11) as f64 - 5.0);
        let f = QrFactor::new(&a).unwrap();
        let r = f.r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!((r[(i, j)]).to_bits(), 0.0f64.to_bits());
            }
        }
        // |det(R)| = sqrt(det(A^T A))
        let ata = a.transpose().matmul(&a).unwrap();
        let det_ata = crate::lu::det(&ata).unwrap();
        let det_r: f64 = (0..3).map(|i| r[(i, i)]).product();
        assert!((det_r.abs() - det_ata.sqrt()).abs() < 1e-8 * det_ata.sqrt().max(1.0));
    }

    #[test]
    fn rank_deficient_is_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let r = lstsq(&a, &[1.0, 2.0, 3.0]);
        assert!(matches!(r, Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn argument_validation() {
        assert!(QrFactor::new(&Mat::zeros(2, 3)).is_err());
        let f = QrFactor::new(&Mat::identity(3)).unwrap();
        assert!(f.solve_least_squares(&[1.0]).is_err());
        assert!(lstsq_multi(&Mat::identity(3), &Mat::zeros(2, 2)).is_err());
    }

    #[test]
    fn multi_rhs_matches_single_rhs() {
        let a = Mat::from_fn(5, 2, |i, j| (i + 1) as f64 * (j + 1) as f64 + (i as f64).sin());
        let b = Mat::from_fn(5, 2, |i, j| (i as f64 - j as f64).cos());
        let x = lstsq_multi(&a, &b).unwrap();
        for j in 0..2 {
            let xj = lstsq(&a, &b.col(j)).unwrap();
            for i in 0..2 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn moderately_large_wellconditioned_problem() {
        let m = 120;
        let n = 20;
        let a = Mat::from_fn(m, n, |i, j| {
            ((i as f64 + 1.0) * 0.05).powi(j as i32 % 4) + if i % n == j { 2.0 } else { 0.0 }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        let err: f64 = x.iter().zip(&x_true).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "max error {err}");
    }
}
#[cfg(test)]
mod scaled_tests {
    use super::*;

    #[test]
    fn scaled_solve_matches_plain_solve_when_well_posed() {
        let a = Mat::from_rows(&[&[1.0, 1e8], &[1.0, 2e8], &[1.0, 3e8], &[1.0, 4e8]]);
        let x_true = [2.0, 3e-8];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq_scaled(&a, &b, 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 3e-8).abs() < 1e-16);
    }

    #[test]
    fn regularized_solve_handles_rank_deficiency() {
        // Two identical columns: plain QR solve fails, regularized succeeds
        // and splits the coefficient between the columns.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = vec![2.0, 4.0, 6.0];
        assert!(lstsq(&a, &b).is_err());
        let x = lstsq_scaled(&a, &b, 1e-8).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn scaled_solve_survives_extreme_column_magnitudes() {
        // A column whose squared entries overflow f64: the equilibration must
        // fall back to the scaled norm instead of producing inf/NaN scaling.
        let big = 1e160;
        let a = Mat::from_rows(&[&[1.0, big], &[1.0, 2.0 * big], &[1.0, 3.0 * big]]);
        let x_true = [2.0, 1.0 / big];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq_scaled(&a, &b, 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9, "x0 {}", x[0]);
        assert!((x[1] - 1.0 / big).abs() < 1e-9 / big, "x1 {}", x[1]);
        // And a column far below the underflow threshold of the plain sum.
        let tiny = 1e-170;
        let a = Mat::from_rows(&[&[1.0, tiny], &[1.0, 2.0 * tiny], &[1.0, 3.0 * tiny]]);
        let x_true = [0.5, 1.0 / tiny];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq_scaled(&a, &b, 0.0).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-9, "x0 {}", x[0]);
        assert!((x[1] * tiny - 1.0).abs() < 1e-9, "x1 {}", x[1]);
    }

    #[test]
    fn scaled_solve_argument_validation() {
        assert!(lstsq_scaled(&Mat::zeros(0, 0), &[], 0.0).is_err());
        assert!(lstsq_scaled(&Mat::identity(2), &[1.0], 0.0).is_err());
        // Zero column with regularization gives a zero coefficient.
        let a = Mat::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[1.0, 0.0]]);
        let x = lstsq_scaled(&a, &[1.0, 2.0, 1.0], 1e-10).unwrap();
        assert!(x[1].abs() < 1e-8);
    }
}
