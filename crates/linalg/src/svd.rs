//! Singular value decomposition of complex matrices by the one-sided Jacobi
//! method.
//!
//! The passivity characterization of a scattering macromodel is a sweep of
//! `σ_max(S(jω))` over frequency, and the linearized passivity constraints of
//! the enforcement loop need both the singular values and the associated
//! left/right singular vectors. The matrices involved are small (P×P with P
//! the port count), so the simple and very accurate one-sided Jacobi
//! iteration is a good fit.

use crate::{CMat, Complex64, LinalgError, Result};

/// Singular value decomposition `A = U·Σ·Vᴴ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m × r`, orthonormal columns), `r = min(m, n)`.
    pub u: CMat,
    /// Singular values in descending order (`r` entries, non-negative).
    pub singular_values: Vec<f64>,
    /// Right singular vectors (`n × r`, orthonormal columns).
    pub v: CMat,
}

impl Svd {
    /// Largest singular value (`0.0` for an empty decomposition).
    pub fn sigma_max(&self) -> f64 {
        self.singular_values.first().copied().unwrap_or(0.0)
    }

    /// Reconstructs `U·Σ·Vᴴ` (diagnostic helper).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the matrix products.
    pub fn reconstruct(&self) -> Result<CMat> {
        let r = self.singular_values.len();
        let sigma = CMat::from_fn(r, r, |i, j| {
            if i == j {
                Complex64::from_real(self.singular_values[i])
            } else {
                Complex64::ZERO
            }
        });
        self.u.matmul(&sigma)?.matmul(&self.v.hermitian())
    }
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;

/// Computes the singular value decomposition of a complex matrix by one-sided
/// Jacobi rotations applied to the columns.
///
/// Works for any shape; when `m < n` the decomposition of `Aᴴ` is computed
/// internally and the factors are swapped.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] for empty input and
/// [`LinalgError::NonConvergence`] if the sweep limit is exhausted.
///
/// ```
/// use pim_linalg::{CMat, Complex64, svd::svd};
/// # fn main() -> Result<(), pim_linalg::LinalgError> {
/// let a = CMat::from_diag(&[Complex64::new(0.0, 3.0), Complex64::new(4.0, 0.0)]);
/// let d = svd(&a)?;
/// assert!((d.singular_values[0] - 4.0).abs() < 1e-12);
/// assert!((d.singular_values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn svd(a: &CMat) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument { context: "svd: empty matrix" });
    }
    if m < n {
        // Decompose the Hermitian transpose and swap factors.
        let d = svd(&a.hermitian())?;
        return Ok(Svd { u: d.v, singular_values: d.singular_values, v: d.u });
    }

    // Work on a copy of A; V accumulates the right rotations.
    let mut w = a.clone();
    let mut v = CMat::identity(n);
    let scale = w.max_abs().max(f64::MIN_POSITIVE);
    let tol = f64::EPSILON * (m as f64).sqrt();

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off_diagonal = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Column inner products.
                let mut app = 0.0_f64;
                let mut aqq = 0.0_f64;
                let mut apq = Complex64::ZERO;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp.abs_sq();
                    aqq += wq.abs_sq();
                    apq += wp.conj() * wq;
                }
                if apq.abs() <= tol * (app * aqq).sqrt() + f64::EPSILON * scale * scale {
                    continue;
                }
                off_diagonal = true;
                // 2x2 Hermitian eigenproblem [[app, apq], [apq^*, aqq]].
                // Factor out the phase of apq to reduce to a real rotation.
                let alpha = apq.abs();
                let phase = apq.scale(1.0 / alpha); // e^{i·arg(apq)}
                let theta = (aqq - app) / (2.0 * alpha);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotation: new_p = c·p - s·phase^*·q ; new_q = s·phase·p + c·q
                // (the unit-modulus factor `phase` aligns the column inner
                // product with the real axis so a real Jacobi angle applies).
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = wp.scale(c) - phase.conj() * wq.scale(s);
                    w[(i, q)] = phase * wp.scale(s) + wq.scale(c);
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = vp.scale(c) - phase.conj() * vq.scale(s);
                    v[(i, q)] = phase * vp.scale(s) + vq.scale(c);
                }
            }
        }
        if !off_diagonal {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NonConvergence {
            context: "svd Jacobi sweeps",
            iterations: MAX_SWEEPS,
        });
    }

    // Singular values are the column norms of W; U is W with normalized columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        (0..n).map(|j| (0..m).map(|i| w[(i, j)].abs_sq()).sum::<f64>().sqrt()).collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).unwrap());

    let mut u = CMat::zeros(m, n);
    let mut vv = CMat::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    let max_norm = norms.iter().fold(0.0_f64, |a, &b| a.max(b));
    let rank_tol = f64::EPSILON * (m.max(n) as f64) * max_norm;
    for (dst, &src) in order.iter().enumerate() {
        let sv = norms[src];
        singular_values.push(sv);
        if sv > rank_tol {
            for i in 0..m {
                u[(i, dst)] = w[(i, src)].scale(1.0 / sv);
            }
        } else {
            // Degenerate (numerically null) column: the direction stored in W
            // is dominated by roundoff. Rebuild an orthonormal completion by
            // Gram-Schmidt of canonical basis vectors against the columns
            // already placed in U.
            'candidates: for e in 0..m {
                let mut cand = vec![Complex64::ZERO; m];
                cand[e] = Complex64::ONE;
                for j in 0..dst {
                    let mut proj = Complex64::ZERO;
                    for i in 0..m {
                        proj += u[(i, j)].conj() * cand[i];
                    }
                    for i in 0..m {
                        let d = proj * u[(i, j)];
                        cand[i] -= d;
                    }
                }
                let nrm = cand.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
                if nrm > 0.5 {
                    for i in 0..m {
                        u[(i, dst)] = cand[i].scale(1.0 / nrm);
                    }
                    break 'candidates;
                }
            }
        }
        for i in 0..n {
            vv[(i, dst)] = v[(i, src)];
        }
    }
    Ok(Svd { u, singular_values, v: vv })
}

/// Convenience wrapper returning only the singular values (descending).
///
/// # Errors
///
/// See [`svd`].
pub fn singular_values(a: &CMat) -> Result<Vec<f64>> {
    Ok(svd(a)?.singular_values)
}

/// Convenience wrapper returning only the largest singular value.
///
/// # Errors
///
/// See [`svd`].
pub fn sigma_max(a: &CMat) -> Result<f64> {
    Ok(svd(a)?.sigma_max())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    fn random_cmat(m: usize, n: usize, seed: u64) -> CMat {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        CMat::from_fn(m, n, |_, _| Complex64::new(next(), next()))
    }

    fn check_svd(a: &CMat, d: &Svd, tol: f64) {
        let r = d.singular_values.len();
        assert_eq!(r, a.rows().min(a.cols()));
        // Descending, non-negative.
        assert!(d.singular_values.windows(2).all(|w| w[0] >= w[1] - 1e-15));
        assert!(d.singular_values.iter().all(|&s| s >= 0.0));
        // Orthonormal columns.
        let uu = d.u.hermitian().matmul(&d.u).unwrap();
        assert!(uu.max_abs_diff(&CMat::identity(r)) < tol, "U not orthonormal");
        let vv = d.v.hermitian().matmul(&d.v).unwrap();
        assert!(vv.max_abs_diff(&CMat::identity(r)) < tol, "V not orthonormal");
        // Reconstruction.
        assert!(d.reconstruct().unwrap().max_abs_diff(a) < tol * 10.0);
    }

    #[test]
    fn svd_of_random_square_and_rectangular() {
        for (m, n) in [(1, 1), (2, 2), (4, 4), (6, 3), (3, 6), (8, 8), (10, 4)] {
            let a = random_cmat(m, n, (m * 31 + n) as u64);
            let d = svd(&a).unwrap();
            check_svd(&a, &d, 1e-10);
        }
    }

    #[test]
    fn singular_values_of_real_diagonal() {
        let a = Mat::from_diag(&[-5.0, 2.0, 0.0]).to_complex();
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 5.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!(s[2].abs() < 1e-12);
    }

    #[test]
    fn sigma_max_of_unitary_matrix_is_one() {
        // A unitary 2x2 matrix: all singular values are exactly 1.
        let t = std::f64::consts::FRAC_PI_3;
        let a = CMat::from_rows(&[
            &[Complex64::new(t.cos(), 0.0), Complex64::new(t.sin(), 0.0)],
            &[Complex64::new(-t.sin(), 0.0), Complex64::new(t.cos(), 0.0)],
        ]);
        let s = singular_values(&a).unwrap();
        assert!((s[0] - 1.0).abs() < 1e-12 && (s[1] - 1.0).abs() < 1e-12);
        assert!((sigma_max(&a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_matches_eigenvalues_of_gram_matrix() {
        let a = random_cmat(5, 5, 777);
        let d = svd(&a).unwrap();
        // The squared singular values are the eigenvalues of A^H A (Hermitian).
        let gram = a.hermitian().matmul(&a).unwrap();
        // Use the trace identity: sum sigma_i^2 = tr(A^H A).
        let sum_sq: f64 = d.singular_values.iter().map(|s| s * s).sum();
        assert!((sum_sq - gram.trace().re).abs() < 1e-10);
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1 outer product.
        let u = CMat::col_vector(&[Complex64::new(1.0, 0.0), Complex64::new(0.0, 2.0)]);
        let v = CMat::col_vector(&[Complex64::new(3.0, 0.0), Complex64::new(0.0, -1.0)]);
        let a = u.matmul(&v.hermitian()).unwrap();
        let d = svd(&a).unwrap();
        assert!(d.singular_values[1] < 1e-12);
        check_svd(&a, &d, 1e-10);
    }

    #[test]
    fn svd_rejects_empty() {
        assert!(svd(&CMat::zeros(0, 0)).is_err());
    }
}
