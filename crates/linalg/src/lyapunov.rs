//! Sylvester and Lyapunov equation solvers (Bartels–Stewart on the complex
//! Schur form).
//!
//! Controllability Gramians — the weights of the perturbation norm in the
//! passivity enforcement loop (eq. 10–11 and 19–20 of the paper) — are
//! solutions of the Lyapunov equation `A·P + P·Aᵀ + B·Bᵀ = 0`.

use crate::schur::complex_schur;
use crate::{CMat, Complex64, LinalgError, Mat, Result};

/// Solves the complex Sylvester equation `A·X + X·B = C`.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] on
/// malformed input and [`LinalgError::Singular`] when the spectra of `A` and
/// `−B` intersect (no unique solution).
pub fn solve_sylvester_complex(a: &CMat, b: &CMat, c: &CMat) -> Result<CMat> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "solve_sylvester: A", dims: a.shape() });
    }
    if !b.is_square() {
        return Err(LinalgError::NotSquare { context: "solve_sylvester: B", dims: b.shape() });
    }
    let n = a.rows();
    let m = b.rows();
    if c.shape() != (n, m) {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_sylvester: C",
            left: (n, m),
            right: c.shape(),
        });
    }
    if n == 0 || m == 0 {
        return Ok(CMat::zeros(n, m));
    }

    let sa = complex_schur(a)?;
    let sb = complex_schur(b)?;
    let ta = &sa.t;
    let tb = &sb.t;
    // Transform the right-hand side: C~ = U_A^H · C · U_B.
    let ct = sa.u.hermitian().matmul(c)?.matmul(&sb.u)?;

    // Solve T_A·Y + Y·T_B = C~ column by column (both factors upper
    // triangular); the right-hand-side buffer is reused across columns.
    let mut y = CMat::zeros(n, m);
    let scale = ta.max_abs().max(tb.max_abs()).max(f64::MIN_POSITIVE);
    let mut rhs = vec![Complex64::ZERO; n];
    for k in 0..m {
        // Right-hand side for column k: c~_k − Σ_{j<k} T_B[j,k]·y_j.
        for (dst, src) in rhs.iter_mut().zip(ct.col_iter(k)) {
            *dst = src;
        }
        for j in 0..k {
            let t_jk = tb[(j, k)];
            // audit:allow(float-eq): exact-zero coefficient skips a no-op accumulation
            if t_jk.abs() == 0.0 {
                continue;
            }
            for (r, yij) in rhs.iter_mut().zip(y.col_iter(j)) {
                *r -= t_jk * yij;
            }
        }
        // Back substitution with the upper-triangular matrix T_A + T_B[k,k]·I.
        let lambda = tb[(k, k)];
        for i in (0..n).rev() {
            let mut acc = rhs[i];
            for j in (i + 1)..n {
                acc -= ta[(i, j)] * y[(j, k)];
            }
            let d = ta[(i, i)] + lambda;
            if d.abs() <= f64::EPSILON * scale * 4.0 {
                return Err(LinalgError::Singular {
                    context: "solve_sylvester: spectra of A and -B intersect",
                });
            }
            y[(i, k)] = acc / d;
        }
    }

    // Back transform: X = U_A · Y · U_B^H.
    sa.u.matmul(&y)?.matmul(&sb.u.hermitian())
}

/// Solves the real Sylvester equation `A·X + X·B = C`.
///
/// Internally uses the complex Schur path and returns the real part of the
/// (unique, hence real) solution.
///
/// # Errors
///
/// See [`solve_sylvester_complex`].
pub fn solve_sylvester(a: &Mat, b: &Mat, c: &Mat) -> Result<Mat> {
    let x = solve_sylvester_complex(&a.to_complex(), &b.to_complex(), &c.to_complex())?;
    Ok(x.real())
}

/// Solves the continuous-time Lyapunov equation `A·X + X·Aᵀ + Q = 0`.
///
/// For a Hurwitz `A` and symmetric positive semi-definite `Q` the solution is
/// symmetric positive semi-definite; the returned matrix is explicitly
/// symmetrized to remove roundoff asymmetry.
///
/// # Errors
///
/// See [`solve_sylvester_complex`].
///
/// ```
/// use pim_linalg::{Mat, lyapunov::solve_lyapunov};
/// # fn main() -> Result<(), pim_linalg::LinalgError> {
/// let a = Mat::from_diag(&[-1.0, -2.0]);
/// let q = Mat::identity(2);
/// let x = solve_lyapunov(&a, &q)?;
/// // For diagonal A: X_ii = q_ii / (-2 a_ii)
/// assert!((x[(0, 0)] - 0.5).abs() < 1e-12);
/// assert!((x[(1, 1)] - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_lyapunov(a: &Mat, q: &Mat) -> Result<Mat> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "solve_lyapunov: A", dims: a.shape() });
    }
    if q.shape() != a.shape() {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_lyapunov: Q",
            left: a.shape(),
            right: q.shape(),
        });
    }
    let mut x = solve_sylvester(a, &a.transpose(), &q.scaled(-1.0))?;
    // Symmetrize in place.
    let n = x.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (x[(i, j)] + x[(j, i)]);
            x[(i, j)] = avg;
            x[(j, i)] = avg;
        }
    }
    Ok(x)
}

/// Controllability Gramian `P` of the pair `(A, B)`: the solution of
/// `A·P + P·Aᵀ + B·Bᵀ = 0`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `B` has a different row
/// count than `A`, plus the errors of [`solve_lyapunov`].
pub fn controllability_gramian(a: &Mat, b: &Mat) -> Result<Mat> {
    if b.rows() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "controllability_gramian",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let bbt = b.matmul(&b.transpose())?;
    solve_lyapunov(a, &bbt)
}

/// Observability Gramian `Q` of the pair `(A, C)`: the solution of
/// `Aᵀ·Q + Q·A + Cᵀ·C = 0`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `C` has a different column
/// count than `A`, plus the errors of [`solve_lyapunov`].
pub fn observability_gramian(a: &Mat, c: &Mat) -> Result<Mat> {
    if c.cols() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "observability_gramian",
            left: a.shape(),
            right: c.shape(),
        });
    }
    let ctc = c.transpose().matmul(c)?;
    solve_lyapunov(&a.transpose(), &ctc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_stable(n: usize, seed: u64) -> Mat {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        Mat::from_fn(n, n, |i, j| {
            let v = next();
            if i == j {
                v - 3.0
            } else {
                v * 0.5
            }
        })
    }

    #[test]
    fn sylvester_residual_random() {
        for n in [2usize, 4, 7] {
            let a = random_stable(n, 11 + n as u64);
            let b = random_stable(n, 77 + n as u64);
            let c = Mat::from_fn(n, n, |i, j| (i as f64 - j as f64) * 0.3 + 1.0);
            let x = solve_sylvester(&a, &b, &c).unwrap();
            let resid = &(&a.matmul(&x).unwrap() + &x.matmul(&b).unwrap()) - &c;
            assert!(resid.max_abs() < 1e-9, "residual {}", resid.max_abs());
        }
    }

    #[test]
    fn sylvester_rectangular_solution() {
        let a = random_stable(3, 5);
        let b = random_stable(5, 6);
        let c = Mat::from_fn(3, 5, |i, j| (i + j) as f64);
        let x = solve_sylvester(&a, &b, &c).unwrap();
        assert_eq!(x.shape(), (3, 5));
        let resid = &(&a.matmul(&x).unwrap() + &x.matmul(&b).unwrap()) - &c;
        assert!(resid.max_abs() < 1e-9);
    }

    #[test]
    fn lyapunov_residual_and_symmetry() {
        for n in [2usize, 5, 9] {
            let a = random_stable(n, 100 + n as u64);
            let b = Mat::from_fn(n, 2, |i, j| (i as f64 * 0.7 - j as f64).cos());
            let p = controllability_gramian(&a, &b).unwrap();
            assert!(p.is_symmetric(1e-10));
            let resid = &(&a.matmul(&p).unwrap() + &p.matmul(&a.transpose()).unwrap())
                + &b.matmul(&b.transpose()).unwrap();
            assert!(resid.max_abs() < 1e-9, "residual {}", resid.max_abs());
            // Gramian of a controllable stable system should be PSD.
            let e = crate::eig::symmetric_eig(&p).unwrap();
            assert!(e.values[0] > -1e-10);
        }
    }

    #[test]
    fn lyapunov_known_diagonal_solution() {
        let a = Mat::from_diag(&[-1.0, -0.5]);
        let q = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let x = solve_lyapunov(&a, &q).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 1)] - 3.0).abs() < 1e-12);
        assert!(x[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn observability_gramian_matches_transposed_problem() {
        let a = random_stable(4, 3);
        let c = Mat::from_fn(2, 4, |i, j| (i * 4 + j) as f64 * 0.1);
        let q = observability_gramian(&a, &c).unwrap();
        let resid = &(&a.transpose().matmul(&q).unwrap() + &q.matmul(&a).unwrap())
            + &c.transpose().matmul(&c).unwrap();
        assert!(resid.max_abs() < 1e-9);
    }

    #[test]
    fn singular_when_spectra_overlap() {
        // A and -B share the eigenvalue 1 -> no unique solution.
        let a = Mat::from_diag(&[1.0, 2.0]);
        let b = Mat::from_diag(&[-1.0, -5.0]);
        let c = Mat::identity(2);
        assert!(matches!(solve_sylvester(&a, &b, &c), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn argument_validation() {
        let a = Mat::identity(2);
        assert!(solve_lyapunov(&a, &Mat::zeros(3, 3)).is_err());
        assert!(solve_lyapunov(&Mat::zeros(2, 3), &Mat::zeros(2, 2)).is_err());
        assert!(controllability_gramian(&a, &Mat::zeros(3, 1)).is_err());
        assert!(observability_gramian(&a, &Mat::zeros(1, 3)).is_err());
        assert!(solve_sylvester(&a, &a, &Mat::zeros(1, 1)).is_err());
    }

    #[test]
    fn gramian_energy_interpretation_single_pole() {
        // Single pole system: dx/dt = -a x + u, gramian = 1/(2a).
        let a = Mat::from_diag(&[-4.0]);
        let b = Mat::col_vector(&[1.0]);
        let p = controllability_gramian(&a, &b).unwrap();
        assert!((p[(0, 0)] - 1.0 / 8.0).abs() < 1e-13);
    }
}
