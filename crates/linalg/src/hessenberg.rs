//! Reduction of a complex square matrix to upper Hessenberg form by a unitary
//! similarity transformation, used as the first stage of the Schur iteration.

use crate::{CMat, Complex64, LinalgError, Mat, Result};

/// A complex Givens rotation acting on a pair of rows/columns.
///
/// The rotation is `G = [[c, s], [-s̄, c]]` with real `c ≥ 0` and
/// `c² + |s|² = 1`, chosen so that `G·[x, y]ᵀ = [r, 0]ᵀ`.
#[derive(Debug, Clone, Copy)]
pub struct Givens {
    /// Real cosine component.
    pub c: f64,
    /// Complex sine component.
    pub s: Complex64,
}

impl Givens {
    /// Computes the rotation annihilating `y` against `x`.
    pub fn compute(x: Complex64, y: Complex64) -> Givens {
        let xa = x.abs();
        let ya = y.abs();
        // audit:allow(float-eq): exact-zero rotation component selects the trivial rotation
        if ya == 0.0 {
            return Givens { c: 1.0, s: Complex64::ZERO };
        }
        // audit:allow(float-eq): exact-zero rotation component selects the axis-aligned rotation
        if xa == 0.0 {
            return Givens { c: 0.0, s: y.conj().scale(1.0 / ya) };
        }
        let norm = xa.hypot(ya);
        let c = xa / norm;
        // s = (x/|x|)·ȳ / norm  so that  c·x + s·y = x·norm/|x|.
        let s = x.scale(1.0 / xa) * y.conj().scale(1.0 / norm);
        Givens { c, s }
    }

    /// Applies the rotation to rows `i` and `k` of `m` (left multiplication),
    /// over columns `col_from..col_to`.
    pub fn apply_left(&self, m: &mut CMat, i: usize, k: usize, col_from: usize, col_to: usize) {
        let (c, s) = (self.c, self.s);
        let sc = s.conj();
        let (row_i, row_k) = m.two_rows_mut(i, k);
        for (a, b) in row_i[col_from..col_to].iter_mut().zip(&mut row_k[col_from..col_to]) {
            let (va, vb) = (*a, *b);
            *a = va.scale(c) + s * vb;
            *b = vb.scale(c) - sc * va;
        }
    }

    /// Applies the conjugate-transposed rotation to columns `i` and `k` of `m`
    /// (right multiplication by `Gᴴ`), over rows `row_from..row_to`.
    pub fn apply_right(&self, m: &mut CMat, i: usize, k: usize, row_from: usize, row_to: usize) {
        let (c, s) = (self.c, self.s);
        let sc = s.conj();
        let cols = m.cols();
        let data = m.as_mut_slice();
        for row in data[row_from * cols..row_to * cols].chunks_exact_mut(cols) {
            let (a, b) = (row[i], row[k]);
            row[i] = a.scale(c) + sc * b;
            row[k] = b.scale(c) - s * a;
        }
    }
}

/// Result of a Hessenberg reduction `A = Q·H·Qᴴ`.
#[derive(Debug, Clone)]
pub struct Hessenberg {
    /// Upper Hessenberg factor.
    pub h: CMat,
    /// Unitary transformation accumulating the applied rotations.
    pub q: CMat,
}

/// Reduces `a` to upper Hessenberg form by a sequence of Givens similarity
/// rotations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `a` is not square.
///
/// ```
/// use pim_linalg::{CMat, Complex64, hessenberg::hessenberg};
///
/// # fn main() -> Result<(), pim_linalg::LinalgError> {
/// let a = CMat::from_fn(4, 4, |i, j| Complex64::new((i * 4 + j) as f64, (i as f64) - (j as f64)));
/// let hes = hessenberg(&a)?;
/// // Entries below the first subdiagonal are zero.
/// assert!(hes.h[(3, 0)].abs() < 1e-12 && hes.h[(2, 0)].abs() < 1e-12);
/// // Similarity: Q H Q^H = A
/// let back = hes.q.matmul(&hes.h)?.matmul(&hes.q.hermitian())?;
/// assert!(back.max_abs_diff(&a) < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn hessenberg(a: &CMat) -> Result<Hessenberg> {
    let mut q = CMat::identity(a.rows().max(a.cols()));
    let h = reduce(a, Some(&mut q))?;
    Ok(Hessenberg { h, q })
}

/// Reduces `a` to upper Hessenberg form **without** accumulating the unitary
/// transformation — the cheaper entry point for eigenvalue-only callers (the
/// similarity factor is never needed to read eigenvalues off the Schur form).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `a` is not square.
pub fn hessenberg_h_only(a: &CMat) -> Result<CMat> {
    reduce(a, None)
}

/// Reduces a **real** square matrix to upper Hessenberg form in real
/// arithmetic, without accumulating the orthogonal transformation.
///
/// Real Givens rotations cost a quarter of the complex flops, and on real
/// input the rotation parameters and every update match the complex kernel
/// exactly (all imaginary parts are identically zero there), so feeding the
/// result into the complex QR iteration yields the same eigenvalues as the
/// all-complex pipeline — this is the fast first stage behind
/// [`crate::eig::eigenvalues`] for real matrices such as the Hamiltonian
/// passivity test matrices.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `a` is not square.
pub fn hessenberg_real_h_only(a: &Mat) -> Result<Mat> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "hessenberg", dims: a.shape() });
    }
    let n = a.rows();
    let mut h = a.clone();
    if n <= 2 {
        return Ok(h);
    }
    for k in 0..(n - 2) {
        for i in ((k + 2)..n).rev() {
            let y = h[(i, k)];
            // audit:allow(float-eq): exact-zero entry needs no rotation; mirrors Givens::compute
            if y == 0.0 {
                continue;
            }
            let x = h[(i - 1, k)];
            // Rotation parameters mirroring Givens::compute on real input.
            // audit:allow(float-eq): exact-zero pivot selects the swap rotation, as in Givens::compute
            let (c, s) = if x == 0.0 {
                (0.0, y * (1.0 / y.abs()))
            } else {
                let xa = x.abs();
                let norm = xa.hypot(y.abs());
                (xa / norm, (x * (1.0 / xa)) * (y * (1.0 / norm)))
            };
            // Left application to rows i-1, i over columns k..n.
            {
                let data = h.as_mut_slice();
                let (top, bottom) = data.split_at_mut(i * n);
                let row_a = &mut top[(i - 1) * n + k..i * n];
                let row_b = &mut bottom[k..n];
                for (a, b) in row_a.iter_mut().zip(row_b.iter_mut()) {
                    let (va, vb) = (*a, *b);
                    *a = va * c + s * vb;
                    *b = vb * c - s * va;
                }
            }
            h[(i, k)] = 0.0;
            // Right application to columns i-1, i over all rows.
            let data = h.as_mut_slice();
            for row in data.chunks_exact_mut(n) {
                let (va, vb) = (row[i - 1], row[i]);
                row[i - 1] = va * c + s * vb;
                row[i] = vb * c - s * va;
            }
        }
    }
    Ok(h)
}

/// Shared reduction kernel; accumulates the rotations into `q` when given.
fn reduce(a: &CMat, mut q: Option<&mut CMat>) -> Result<CMat> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "hessenberg", dims: a.shape() });
    }
    let n = a.rows();
    let mut h = a.clone();
    if n <= 2 {
        return Ok(h);
    }
    for k in 0..(n - 2) {
        for i in ((k + 2)..n).rev() {
            // audit:allow(float-eq): only a bitwise-zero subdiagonal entry may be skipped without fill-in
            if h[(i, k)].abs() == 0.0 {
                continue;
            }
            let g = Givens::compute(h[(i - 1, k)], h[(i, k)]);
            g.apply_left(&mut h, i - 1, i, k, n);
            h[(i, k)] = Complex64::ZERO;
            g.apply_right(&mut h, i - 1, i, 0, n);
            if let Some(q) = q.as_deref_mut() {
                g.apply_right(q, i - 1, i, 0, n);
            }
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_hessenberg(h: &CMat, tol: f64) -> bool {
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                if i > j + 1 && h[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn random_like(n: usize, seed: u64) -> CMat {
        // Deterministic pseudo-random fill (no RNG dependency needed here).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        CMat::from_fn(n, n, |_, _| Complex64::new(next(), next()))
    }

    #[test]
    fn givens_annihilates_second_entry() {
        let x = Complex64::new(1.0, 2.0);
        let y = Complex64::new(-0.5, 0.7);
        let g = Givens::compute(x, y);
        let r1 = x.scale(g.c) + g.s * y;
        let r2 = y.scale(g.c) - g.s.conj() * x;
        assert!(r2.abs() < 1e-14);
        assert!((r1.abs() - (x.abs_sq() + y.abs_sq()).sqrt()).abs() < 1e-12);
        // Unitarity: c^2 + |s|^2 = 1
        assert!((g.c * g.c + g.s.abs_sq() - 1.0).abs() < 1e-14);
        // Degenerate cases
        let g0 = Givens::compute(x, Complex64::ZERO);
        assert_eq!((g0.c).to_bits(), 1.0f64.to_bits());
        let g1 = Givens::compute(Complex64::ZERO, y);
        assert!((g1.c).abs() < 1e-15);
    }

    #[test]
    fn hessenberg_structure_and_similarity() {
        for n in [1usize, 2, 3, 5, 8, 12] {
            let a = random_like(n, 42 + n as u64);
            let hes = hessenberg(&a).unwrap();
            assert!(is_hessenberg(&hes.h, 1e-12), "not Hessenberg for n={n}");
            // Q unitary
            let qtq = hes.q.hermitian().matmul(&hes.q).unwrap();
            assert!(qtq.max_abs_diff(&CMat::identity(n)) < 1e-11);
            // Similarity preserved
            let back = hes.q.matmul(&hes.h).unwrap().matmul(&hes.q.hermitian()).unwrap();
            assert!(back.max_abs_diff(&a) < 1e-10, "similarity broken for n={n}");
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(hessenberg(&CMat::zeros(2, 3)).is_err());
        assert!(hessenberg_h_only(&CMat::zeros(2, 3)).is_err());
    }

    #[test]
    fn real_reduction_matches_complex_kernel_bitwise() {
        for n in [1usize, 2, 4, 9, 16] {
            let mut state = 77 + n as u64;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
            };
            let a = Mat::from_fn(n, n, |_, _| next());
            let h_real = hessenberg_real_h_only(&a).unwrap();
            let h_cplx = hessenberg_h_only(&a.to_complex()).unwrap();
            assert_eq!(
                h_cplx.imag().max_abs().to_bits(),
                0.0f64.to_bits(),
                "imaginary drift for n={n}"
            );
            assert_eq!(
                h_real.max_abs_diff(&h_cplx.real()).to_bits(),
                0.0f64.to_bits(),
                "real drift for n={n}"
            );
        }
        assert!(hessenberg_real_h_only(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn h_only_reduction_matches_full_reduction() {
        for n in [1usize, 3, 7, 11] {
            let a = random_like(n, 9 + n as u64);
            let full = hessenberg(&a).unwrap();
            let h = hessenberg_h_only(&a).unwrap();
            assert_eq!(h.max_abs_diff(&full.h).to_bits(), 0.0f64.to_bits(), "H drift for n={n}");
        }
    }

    #[test]
    fn already_hessenberg_is_untouched_in_structure() {
        let n = 6;
        let a = CMat::from_fn(n, n, |i, j| {
            if i <= j + 1 {
                Complex64::new((i + 2 * j) as f64, 1.0)
            } else {
                Complex64::ZERO
            }
        });
        let hes = hessenberg(&a).unwrap();
        assert!(is_hessenberg(&hes.h, 1e-13));
        assert!(hes.q.max_abs_diff(&CMat::identity(n)) < 1e-13);
    }
}
