//! Reduction of a complex square matrix to upper Hessenberg form by a unitary
//! similarity transformation, used as the first stage of the Schur iteration.

use crate::{CMat, Complex64, LinalgError, Result};

/// A complex Givens rotation acting on a pair of rows/columns.
///
/// The rotation is `G = [[c, s], [-s̄, c]]` with real `c ≥ 0` and
/// `c² + |s|² = 1`, chosen so that `G·[x, y]ᵀ = [r, 0]ᵀ`.
#[derive(Debug, Clone, Copy)]
pub struct Givens {
    /// Real cosine component.
    pub c: f64,
    /// Complex sine component.
    pub s: Complex64,
}

impl Givens {
    /// Computes the rotation annihilating `y` against `x`.
    pub fn compute(x: Complex64, y: Complex64) -> Givens {
        let xa = x.abs();
        let ya = y.abs();
        if ya == 0.0 {
            return Givens { c: 1.0, s: Complex64::ZERO };
        }
        if xa == 0.0 {
            return Givens { c: 0.0, s: y.conj().scale(1.0 / ya) };
        }
        let norm = xa.hypot(ya);
        let c = xa / norm;
        // s = (x/|x|)·ȳ / norm  so that  c·x + s·y = x·norm/|x|.
        let s = x.scale(1.0 / xa) * y.conj().scale(1.0 / norm);
        Givens { c, s }
    }

    /// Applies the rotation to rows `i` and `k` of `m` (left multiplication),
    /// over columns `col_from..col_to`.
    pub fn apply_left(&self, m: &mut CMat, i: usize, k: usize, col_from: usize, col_to: usize) {
        for j in col_from..col_to {
            let a = m[(i, j)];
            let b = m[(k, j)];
            m[(i, j)] = a.scale(self.c) + self.s * b;
            m[(k, j)] = b.scale(self.c) - self.s.conj() * a;
        }
    }

    /// Applies the conjugate-transposed rotation to columns `i` and `k` of `m`
    /// (right multiplication by `Gᴴ`), over rows `row_from..row_to`.
    pub fn apply_right(&self, m: &mut CMat, i: usize, k: usize, row_from: usize, row_to: usize) {
        for r in row_from..row_to {
            let a = m[(r, i)];
            let b = m[(r, k)];
            m[(r, i)] = a.scale(self.c) + self.s.conj() * b;
            m[(r, k)] = b.scale(self.c) - self.s * a;
        }
    }
}

/// Result of a Hessenberg reduction `A = Q·H·Qᴴ`.
#[derive(Debug, Clone)]
pub struct Hessenberg {
    /// Upper Hessenberg factor.
    pub h: CMat,
    /// Unitary transformation accumulating the applied rotations.
    pub q: CMat,
}

/// Reduces `a` to upper Hessenberg form by a sequence of Givens similarity
/// rotations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `a` is not square.
///
/// ```
/// use pim_linalg::{CMat, Complex64, hessenberg::hessenberg};
///
/// # fn main() -> Result<(), pim_linalg::LinalgError> {
/// let a = CMat::from_fn(4, 4, |i, j| Complex64::new((i * 4 + j) as f64, (i as f64) - (j as f64)));
/// let hes = hessenberg(&a)?;
/// // Entries below the first subdiagonal are zero.
/// assert!(hes.h[(3, 0)].abs() < 1e-12 && hes.h[(2, 0)].abs() < 1e-12);
/// // Similarity: Q H Q^H = A
/// let back = hes.q.matmul(&hes.h)?.matmul(&hes.q.hermitian())?;
/// assert!(back.max_abs_diff(&a) < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn hessenberg(a: &CMat) -> Result<Hessenberg> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "hessenberg", dims: a.shape() });
    }
    let n = a.rows();
    let mut h = a.clone();
    let mut q = CMat::identity(n);
    if n <= 2 {
        return Ok(Hessenberg { h, q });
    }
    for k in 0..(n - 2) {
        for i in ((k + 2)..n).rev() {
            if h[(i, k)].abs() == 0.0 {
                continue;
            }
            let g = Givens::compute(h[(i - 1, k)], h[(i, k)]);
            g.apply_left(&mut h, i - 1, i, k, n);
            h[(i, k)] = Complex64::ZERO;
            g.apply_right(&mut h, i - 1, i, 0, n);
            g.apply_right(&mut q, i - 1, i, 0, n);
        }
    }
    Ok(Hessenberg { h, q })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_hessenberg(h: &CMat, tol: f64) -> bool {
        for i in 0..h.rows() {
            for j in 0..h.cols() {
                if i > j + 1 && h[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn random_like(n: usize, seed: u64) -> CMat {
        // Deterministic pseudo-random fill (no RNG dependency needed here).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        CMat::from_fn(n, n, |_, _| Complex64::new(next(), next()))
    }

    #[test]
    fn givens_annihilates_second_entry() {
        let x = Complex64::new(1.0, 2.0);
        let y = Complex64::new(-0.5, 0.7);
        let g = Givens::compute(x, y);
        let r1 = x.scale(g.c) + g.s * y;
        let r2 = y.scale(g.c) - g.s.conj() * x;
        assert!(r2.abs() < 1e-14);
        assert!((r1.abs() - (x.abs_sq() + y.abs_sq()).sqrt()).abs() < 1e-12);
        // Unitarity: c^2 + |s|^2 = 1
        assert!((g.c * g.c + g.s.abs_sq() - 1.0).abs() < 1e-14);
        // Degenerate cases
        let g0 = Givens::compute(x, Complex64::ZERO);
        assert_eq!(g0.c, 1.0);
        let g1 = Givens::compute(Complex64::ZERO, y);
        assert!((g1.c).abs() < 1e-15);
    }

    #[test]
    fn hessenberg_structure_and_similarity() {
        for n in [1usize, 2, 3, 5, 8, 12] {
            let a = random_like(n, 42 + n as u64);
            let hes = hessenberg(&a).unwrap();
            assert!(is_hessenberg(&hes.h, 1e-12), "not Hessenberg for n={n}");
            // Q unitary
            let qtq = hes.q.hermitian().matmul(&hes.q).unwrap();
            assert!(qtq.max_abs_diff(&CMat::identity(n)) < 1e-11);
            // Similarity preserved
            let back = hes.q.matmul(&hes.h).unwrap().matmul(&hes.q.hermitian()).unwrap();
            assert!(back.max_abs_diff(&a) < 1e-10, "similarity broken for n={n}");
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(hessenberg(&CMat::zeros(2, 3)).is_err());
    }

    #[test]
    fn already_hessenberg_is_untouched_in_structure() {
        let n = 6;
        let a = CMat::from_fn(n, n, |i, j| {
            if i <= j + 1 {
                Complex64::new((i + 2 * j) as f64, 1.0)
            } else {
                Complex64::ZERO
            }
        });
        let hes = hessenberg(&a).unwrap();
        assert!(is_hessenberg(&hes.h, 1e-13));
        assert!(hes.q.max_abs_diff(&CMat::identity(n)) < 1e-13);
    }
}
