//! Double-precision complex scalar type.
//!
//! The workspace deliberately avoids external numeric crates, so the complex
//! scalar is defined here. It implements the usual field operations, the
//! elementary functions needed by the macromodeling flow (`abs`, `sqrt`,
//! `exp`, `ln`, `powi`), and mixed-operand arithmetic with `f64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use pim_linalg::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number `0 + im·i`.
    #[inline]
    pub const fn from_imag(im: f64) -> Self {
        Complex64 { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Magnitude (modulus) `|z|`, computed with `hypot` to avoid spurious
    /// overflow/underflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities if `z` is exactly zero, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        // audit:allow(float-eq): exact-zero fast path; sqrt(0) must return bitwise zero
        if self.re == 0.0 && self.im == 0.0 {
            return Complex64::ZERO;
        }
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).sqrt();
        Complex64::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal natural logarithm.
    pub fn ln(self) -> Self {
        Complex64::new(self.abs().ln(), self.arg())
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let invert = n < 0;
        if invert {
            n = -n;
        }
        let mut base = self;
        let mut acc = Complex64::ONE;
        let mut e = n as u32;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        if invert {
            acc.recip()
        } else {
            acc
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm for robust complex division.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Complex64 {
            #[inline]
            fn $method(&mut self, rhs: Complex64) {
                *self = *self $op rhs;
            }
        }
        impl $trait<f64> for Complex64 {
            #[inline]
            fn $method(&mut self, rhs: f64) {
                *self = *self $op Complex64::from_real(rhs);
            }
        }
    };
}

impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

macro_rules! impl_mixed {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<f64> for Complex64 {
            type Output = Complex64;
            #[inline]
            fn $method(self, rhs: f64) -> Complex64 {
                self $op Complex64::from_real(rhs)
            }
        }
        impl $trait<Complex64> for f64 {
            type Output = Complex64;
            #[inline]
            fn $method(self, rhs: Complex64) -> Complex64 {
                Complex64::from_real(self) $op rhs
            }
        }
    };
}

impl_mixed!(Add, add, +);
impl_mixed!(Sub, sub, -);
impl_mixed!(Mul, mul, *);
impl_mixed!(Div, div, /);

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn close(a: Complex64, b: Complex64) -> bool {
        approx_eq(a.re, b.re, 1e-12) && approx_eq(a.im, b.im, 1e-12)
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a + b, Complex64::new(-2.0, 2.5)));
        assert!(close(a - b, Complex64::new(4.0, 1.5)));
        assert!(close(a * b, Complex64::new(-3.0 - 1.0, 0.5 - 6.0)));
        assert!(close((a / b) * b, a));
        assert!(close(-a, Complex64::new(-1.0, -2.0)));
    }

    #[test]
    fn division_is_robust_for_small_and_large_components() {
        let a = Complex64::new(1e-150, 1e150);
        let b = Complex64::new(1e150, 1e-150);
        let q = a / b;
        assert!(q.is_finite());
        // a/b = (a*conj(b))/|b|^2; dominant term: i * 1e150/1e150 = i
        assert!(approx_eq(q.im, 1.0, 1e-10));
    }

    #[test]
    fn conj_abs_arg() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
        assert!(approx_eq(z.abs(), 5.0, 1e-15));
        assert!(approx_eq(z.abs_sq(), 25.0, 1e-15));
        assert!(approx_eq(Complex64::I.arg(), std::f64::consts::FRAC_PI_2, 1e-15));
    }

    #[test]
    fn sqrt_and_exp_and_ln() {
        let z = Complex64::new(-4.0, 0.0);
        assert!(close(z.sqrt(), Complex64::new(0.0, 2.0)));
        let w = Complex64::new(0.3, -1.7);
        assert!(close(w.sqrt() * w.sqrt(), w));
        assert!(close(w.exp().ln(), w));
        // Euler identity
        let e = Complex64::from_imag(std::f64::consts::PI).exp();
        assert!(approx_eq(e.re, -1.0, 1e-12) && e.im.abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex64::new(0.9, 0.4);
        let mut acc = Complex64::ONE;
        for _ in 0..7 {
            acc *= z;
        }
        assert!(close(z.powi(7), acc));
        assert!(close(z.powi(-3) * z.powi(3), Complex64::ONE));
        assert!(close(z.powi(0), Complex64::ONE));
    }

    #[test]
    fn recip_and_mixed_ops() {
        let z = Complex64::new(2.0, -1.0);
        assert!(close(z * z.recip(), Complex64::ONE));
        assert!(close(2.0 * z, Complex64::new(4.0, -2.0)));
        assert!(close(z / 2.0, Complex64::new(1.0, -0.5)));
        assert!(close(1.0 + Complex64::I, Complex64::new(1.0, 1.0)));
    }

    #[test]
    fn sum_iterator() {
        let v = [Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.iter().sum();
        assert!(close(s, Complex64::new(4.0, 4.0)));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!(approx_eq(z.abs(), 2.0, 1e-14));
        assert!(approx_eq(z.arg(), 0.7, 1e-14));
    }
}
