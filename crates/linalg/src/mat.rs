//! Dense real (`f64`) matrices stored in row-major order.

use crate::{CMat, Complex64, LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// The type is intentionally simple: it owns a `Vec<f64>` and exposes the
/// operations the macromodeling flow needs (block access, products,
/// transposes, norms). Indexing is via `m[(i, j)]`.
///
/// ```
/// use pim_linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Panel depth of the blocked product kernels: KC rows of the right-hand
/// side are streamed per output row. Shared between [`Mat::matmul_into`] and
/// [`Mat::par_matmul_into`] — the parallel kernel must block `k` identically
/// to stay bit-compatible with the serial one.
const KC: usize = 64;

/// Raw pointer into an output buffer, shared across panel tasks. Safety rests
/// on the panel decomposition: every task writes a disjoint set of columns.
struct PanelPtr(*mut f64);
// SAFETY: a raw `*mut f64` is only non-Send/non-Sync as a lint against
// unsynchronized sharing; `PanelPtr` is constructed exclusively inside
// `Mat::par_matmul_into` from `out.data.as_mut_ptr()`, which stays
// exclusively borrowed for the whole pool scope. The tasks sharing it write
// through disjoint column ranges `[j0, j1)` (see the panel proof at the
// `from_raw_parts_mut` below), never read each other's panels, and the
// scope joins every task before `out` is reborrowed — so cross-thread moves
// (Send) and shared references (Sync) cannot introduce a data race.
unsafe impl Send for PanelPtr {}
// SAFETY: see the Send impl directly above — `&PanelPtr` only ever hands
// tasks a pointer they offset into non-overlapping column panels.
unsafe impl Sync for PanelPtr {}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut m = Mat::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "inconsistent row length in from_rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Mat::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector (`n × 1`) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Mat { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Creates a row vector (`1 × n`) from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Mat { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Read-only access to the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned `Vec`.
    ///
    /// Prefer [`Mat::col_iter`] in hot paths: it visits the same entries
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Strided, allocation-free iterator over column `j` (top to bottom).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_iter(&self, j: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        assert!(j < self.cols, "column index out of bounds");
        // `get` keeps the zero-row case (empty backing storage) a valid,
        // empty iterator instead of an out-of-range slice panic.
        self.data.get(j..).unwrap_or(&[]).iter().step_by(self.cols).copied()
    }

    /// Copies column `j` into `out` (which must hold exactly `rows` entries).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols` or `out.len() != rows`.
    pub fn copy_col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "copy_col_into length mismatch");
        for (dst, src) in out.iter_mut().zip(self.col_iter(j)) {
            *dst = src;
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// The product is computed by a cache-blocked kernel operating on
    /// contiguous row panels (see [`Mat::matmul_into`]); use the in-place
    /// variant to reuse an output buffer across repeated products.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        let mut out = Mat::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhs` written into a caller-provided output
    /// matrix (overwritten), avoiding the allocation of [`Mat::matmul`].
    ///
    /// The kernel walks `self` row by row and accumulates scaled rows of
    /// `rhs` into the output row (an `axpy` formulation: every output entry
    /// has its own accumulator, so the inner loop vectorizes), blocking the
    /// inner dimension so the touched panel of `rhs` stays cache-resident.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Mat, out: &mut Mat) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::matmul_into output",
                left: (self.rows, rhs.cols),
                right: out.shape(),
            });
        }
        out.data.fill(0.0);
        let (k_dim, n) = rhs.shape();
        if n == 0 || k_dim == 0 {
            return Ok(());
        }
        // Panel sizes: KC rows of `rhs` (the k-panel) are streamed per output
        // row; blocking k keeps that panel in L1/L2 while every output row
        // revisits it.
        for kb in (0..k_dim).step_by(KC) {
            let k_end = (kb + KC).min(k_dim);
            for (a_row, out_row) in
                self.data.chunks_exact(self.cols).zip(out.data.chunks_exact_mut(n))
            {
                for (k, &aik) in a_row[kb..k_end].iter().enumerate() {
                    // audit:allow(float-eq): exact-zero multiplier skips a no-op AXPY; preserves bit-identical sums
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[(kb + k) * n..(kb + k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += aik * b;
                    }
                }
            }
        }
        Ok(())
    }

    /// Opt-in parallel variant of [`Mat::matmul_into`]: the blocked kernel is
    /// split over contiguous **column panels** of `rhs`/`out`, one
    /// work-stealing task per panel on the given pool.
    ///
    /// Restricting a panel to columns `[j0, j1)` leaves every output entry's
    /// accumulation chain untouched (the `k`-blocking is identical and the
    /// inner axpy visits the same `(k, j)` pairs in the same order), so the
    /// result is **bit-identical** to the serial [`Mat::matmul_into`] for
    /// every thread count — the parallel-vs-serial proptest suite pins this.
    /// On a serial pool (or when the output is too narrow to split) this
    /// delegates to the serial kernel.
    ///
    /// # Errors
    ///
    /// See [`Mat::matmul_into`].
    pub fn par_matmul_into(
        &self,
        rhs: &Mat,
        out: &mut Mat,
        pool: &pim_runtime::ThreadPool,
    ) -> Result<()> {
        let (k_dim, n) = rhs.shape();
        // Panels narrower than 16 columns don't amortize the task overhead.
        let panel_w = n.div_ceil(pool.threads() * 2).max(16);
        let panels = n.div_ceil(panel_w.max(1)).max(1);
        if pool.is_serial() || panels <= 1 {
            return self.matmul_into(rhs, out);
        }
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, n) {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::matmul_into output",
                left: (self.rows, n),
                right: out.shape(),
            });
        }
        out.data.fill(0.0);
        if k_dim == 0 || self.rows == 0 {
            return Ok(());
        }
        let base = PanelPtr(out.data.as_mut_ptr());
        pool.scope(|s| {
            for p in 0..panels {
                let j0 = p * panel_w;
                let j1 = ((p + 1) * panel_w).min(n);
                let base = &base;
                s.spawn(move || {
                    let width = j1 - j0;
                    for kb in (0..k_dim).step_by(KC) {
                        let k_end = (kb + KC).min(k_dim);
                        for (i, a_row) in self.data.chunks_exact(self.cols).enumerate() {
                            // SAFETY: disjointness + in-bounds proof.
                            // `out` is row-major `rows × n`, so row `i` spans
                            // `data[i*n .. (i+1)*n]`; this slice is its
                            // sub-range `[i*n + j0, i*n + j1)` with
                            // `width = j1 - j0 ≤ n - j0`, hence in bounds of
                            // the allocation `base` points to. Panel `p`
                            // owns columns `[p*panel_w, min((p+1)*panel_w, n))`:
                            // the half-open intervals for distinct `p` are
                            // pairwise disjoint, so for any two tasks and any
                            // rows `i`, `i'`, the index sets
                            // `{i*n + j0 .. i*n + j1}` never intersect across
                            // tasks. The mutable slices alias nothing: `out`
                            // stays exclusively borrowed for the whole
                            // `pool.scope`, which joins every task before
                            // returning, and within one task the slice is
                            // dropped before the next row's is formed.
                            let out_row = unsafe {
                                std::slice::from_raw_parts_mut(base.0.add(i * n + j0), width)
                            };
                            for (k, &aik) in a_row[kb..k_end].iter().enumerate() {
                                // audit:allow(float-eq): same exact-zero AXPY skip as the serial kernel, for bit parity
                                if aik == 0.0 {
                                    continue;
                                }
                                let b_row = &rhs.data[(kb + k) * n + j0..(kb + k) * n + j1];
                                for (o, &b) in out_row.iter_mut().zip(b_row) {
                                    *o += aik * b;
                                }
                            }
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// Reference (naive triple-loop) product used as the oracle for the
    /// blocked kernel in tests.
    #[cfg(test)]
    pub(crate) fn matmul_naive(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols.max(1))) {
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Scales every entry by `k`, returning a new matrix.
    pub fn scaled(&self, k: f64) -> Mat {
        let mut out = self.clone();
        out.scale_in_place(k);
        out
    }

    /// Scales every entry by `k` in place (no allocation).
    pub fn scale_in_place(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Extracts the block with top-left corner `(row, col)` and size `(nrows, ncols)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block exceeds the matrix bounds.
    pub fn block(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> Mat {
        assert!(row + nrows <= self.rows && col + ncols <= self.cols, "block out of bounds");
        Mat::from_fn(nrows, ncols, |i, j| self[(row + i, col + j)])
    }

    /// Writes `block` into this matrix with top-left corner `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, row: usize, col: usize, block: &Mat) {
        assert!(
            row + block.rows <= self.rows && col + block.cols <= self.cols,
            "set_block out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(row + i, col + j)] = block[(i, j)];
            }
        }
    }

    /// Builds a block-diagonal matrix from the given blocks.
    pub fn block_diag(blocks: &[&Mat]) -> Mat {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = Mat::zeros(rows, cols);
        let (mut r, mut c) = (0, 0);
        for b in blocks {
            out.set_block(r, c, b);
            r += b.rows;
            c += b.cols;
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the row counts differ.
    pub fn hstack(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::hstack",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, self.cols + rhs.cols);
        out.set_block(0, 0, self);
        out.set_block(0, self.cols, rhs);
        Ok(out)
    }

    /// Vertical concatenation `[self; rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the column counts differ.
    pub fn vstack(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Mat::vstack",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows + rhs.rows, self.cols);
        out.set_block(0, 0, self);
        out.set_block(self.rows, 0, rhs);
        Ok(out)
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                // audit:allow(float-eq): exact-zero entry contributes nothing to the sparse product
                if a == 0.0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out[(i * rhs.rows + p, j * rhs.cols + q)] = a * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// Converts into a complex matrix with zero imaginary part.
    pub fn to_complex(&self) -> CMat {
        CMat::from_fn(self.rows, self.cols, |i, j| Complex64::from_real(self[(i, j)]))
    }

    /// Column-stacking vectorization `vec(A)` (Fortran order), as used in the
    /// Kronecker identity `vec(AXB) = (Bᵀ ⊗ A) vec(X)`.
    pub fn vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.cols {
            for i in 0..self.rows {
                out.push(self[(i, j)]);
            }
        }
        out
    }

    /// Inverse of [`Mat::vec`]: rebuilds a `rows × cols` matrix from a
    /// column-stacked vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows * cols`.
    pub fn from_vec_col_major(v: &[f64], rows: usize, cols: usize) -> Mat {
        assert_eq!(v.len(), rows * cols, "from_vec_col_major length mismatch");
        Mat::from_fn(rows, cols, |i, j| v[j * rows + i])
    }

    /// Maximum absolute difference with another matrix of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(other.data.iter()).fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "Mat add shape mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
        out
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "Mat sub shape mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
        out
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "Mat add_assign shape mismatch");
        for (o, r) in self.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
    }
}

impl SubAssign<&Mat> for Mat {
    fn sub_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "Mat sub_assign shape mismatch");
        for (o, r) in self.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, k: f64) -> Mat {
        self.scaled(k)
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(10) {
            let row: Vec<String> =
                (0..self.cols.min(10)).map(|j| format!("{:>12.5e}", self[(i, j)])).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_indexing() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!((a[(1, 2)]).to_bits(), 6.0f64.to_bits());
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(1), vec![2.0, 5.0]);
        let d = Mat::from_diag(&[1.0, 2.0]);
        assert_eq!((d[(1, 1)]).to_bits(), 2.0f64.to_bits());
        assert_eq!((d[(0, 1)]).to_bits(), 0.0f64.to_bits());
        assert_eq!((Mat::identity(3).trace()).to_bits(), 3.0f64.to_bits());
    }

    #[test]
    fn matmul_and_matvec() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
        assert!(a.matmul(&Mat::zeros(3, 3)).is_err());
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_oracle() {
        // Exercise sizes around the KC=64 panel boundary plus odd shapes.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 64, 9), (10, 65, 130), (33, 200, 7)] {
            let a = Mat::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
            let b = Mat::from_fn(k, n, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
            let fast = a.matmul(&b).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            assert!(fast.max_abs_diff(&slow) < 1e-12, "mismatch for {m}x{k}x{n}");
        }
    }

    #[test]
    fn par_matmul_into_is_bit_identical_to_serial() {
        for threads in [1usize, 2, 8] {
            let pool = pim_runtime::ThreadPool::new(threads);
            // Sizes around the KC=64 depth and the 16-column panel floor.
            for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 64, 40), (10, 65, 130), (33, 200, 70)] {
                let a = Mat::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
                let b = Mat::from_fn(k, n, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
                let mut serial = Mat::zeros(m, n);
                a.matmul_into(&b, &mut serial).unwrap();
                let mut parallel = Mat::filled(m, n, 42.0);
                a.par_matmul_into(&b, &mut parallel, &pool).unwrap();
                for (x, y) in serial.as_slice().iter().zip(parallel.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} threads={threads}");
                }
            }
            // Shape validation matches the serial kernel on both paths.
            let a = Mat::zeros(2, 3);
            let mut narrow = Mat::zeros(2, 2);
            assert!(a.par_matmul_into(&Mat::zeros(4, 2), &mut narrow, &pool).is_err());
            assert!(a.par_matmul_into(&Mat::zeros(3, 120), &mut narrow, &pool).is_err());
            let mut wide = Mat::zeros(2, 120);
            a.par_matmul_into(&Mat::zeros(3, 120), &mut wide, &pool).unwrap();
            assert_eq!((wide.max_abs()).to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_and_validates_shape() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::identity(2);
        let mut out = Mat::filled(2, 2, 99.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert!(out.max_abs_diff(&a) < 1e-15);
        let mut wrong = Mat::zeros(3, 2);
        assert!(a.matmul_into(&b, &mut wrong).is_err());
        // Degenerate shapes produce empty results, not a panic.
        let empty = Mat::zeros(2, 3).matmul(&Mat::zeros(3, 0)).unwrap();
        assert_eq!(empty.shape(), (2, 0));
        let zero_k = Mat::zeros(2, 0).matmul(&Mat::zeros(0, 3)).unwrap();
        assert_eq!(zero_k.shape(), (2, 3));
        assert_eq!((zero_k.max_abs()).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn col_iter_and_scale_in_place() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let col: Vec<f64> = a.col_iter(2).collect();
        assert_eq!(col, vec![3.0, 6.0]);
        assert_eq!(a.col_iter(0).len(), 2);
        let mut buf = [0.0; 2];
        a.copy_col_into(1, &mut buf);
        assert_eq!(buf, [2.0, 5.0]);
        let mut b = a.clone();
        b.scale_in_place(2.0);
        assert!(b.max_abs_diff(&a.scaled(2.0)) < 1e-15);
        // Zero-row matrices yield empty columns, not a slice panic.
        let empty = Mat::zeros(0, 3);
        assert_eq!(empty.col_iter(2).len(), 0);
        assert!(empty.col(1).is_empty());
    }

    #[test]
    fn transpose_blocks_stacking() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!((t[(2, 1)]).to_bits(), 6.0f64.to_bits());
        let b = a.block(0, 1, 2, 2);
        assert_eq!(b, Mat::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 6));
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 3));
        let bd = Mat::block_diag(&[&Mat::identity(2), &Mat::filled(1, 1, 5.0)]);
        assert_eq!(bd.shape(), (3, 3));
        assert_eq!((bd[(2, 2)]).to_bits(), 5.0f64.to_bits());
        assert_eq!((bd[(0, 2)]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn kron_and_vec_identity() {
        // vec(A X B) = (B^T kron A) vec(X)
        let a = Mat::from_rows(&[&[1.0, 2.0], &[0.0, -1.0]]);
        let x = Mat::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.5, 1.0], &[-2.0, 0.0]]);
        let axb = a.matmul(&x).unwrap().matmul(&b).unwrap();
        let k = b.transpose().kron(&a);
        let v = k.matvec(&x.vec()).unwrap();
        let rebuilt = Mat::from_vec_col_major(&v, 2, 2);
        assert!(axb.max_abs_diff(&rebuilt) < 1e-12);
    }

    #[test]
    fn norms_and_symmetry() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!((a.max_abs()).to_bits(), 4.0f64.to_bits());
        assert!(a.is_symmetric(0.0));
        let b = Mat::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        assert!(!b.is_symmetric(1e-12));
    }

    #[test]
    fn elementwise_ops() {
        let a = Mat::identity(2);
        let b = Mat::filled(2, 2, 2.0);
        let c = &a + &b;
        assert_eq!((c[(0, 0)]).to_bits(), 3.0f64.to_bits());
        let d = &c - &b;
        assert!(d.max_abs_diff(&a) < 1e-15);
        let e = &a * 3.0;
        assert_eq!((e[(1, 1)]).to_bits(), 3.0f64.to_bits());
        let mut f = a.clone();
        f += &b;
        f -= &b;
        assert!(f.max_abs_diff(&a) < 1e-15);
        assert_eq!(((-&a)[(0, 0)]).to_bits(), (-1.0f64).to_bits());
    }

    #[test]
    fn display_does_not_panic() {
        let a = Mat::identity(3);
        let s = format!("{a}");
        assert!(s.contains("Mat 3x3"));
    }
}
