//! Eigenvalue computations built on top of the Schur decomposition, plus a
//! cyclic Jacobi eigensolver for real symmetric matrices.

use crate::schur::complex_schur_eigenvalues;
use crate::{CMat, Complex64, LinalgError, Mat, Result};

/// Eigenvalues of a real square matrix (possibly complex, returned as
/// [`Complex64`]).
///
/// # Errors
///
/// See [`complex_schur`](crate::schur::complex_schur).
///
/// ```
/// use pim_linalg::{Mat, eig::eigenvalues};
/// # fn main() -> Result<(), pim_linalg::LinalgError> {
/// let a = Mat::from_rows(&[&[0.0, 1.0], &[-2.0, -3.0]]);
/// let mut ev: Vec<f64> = eigenvalues(&a)?.iter().map(|e| e.re).collect();
/// ev.sort_by(|x, y| x.partial_cmp(y).unwrap());
/// assert!((ev[0] + 2.0).abs() < 1e-10 && (ev[1] + 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Mat) -> Result<Vec<Complex64>> {
    // Hessenberg reduction in real arithmetic (a quarter of the complex
    // flops, identical result on real input), then the eigenvalue-only
    // complex QR iteration directly on the reduced form.
    let h = crate::hessenberg::hessenberg_real_h_only(a)?;
    crate::schur::hessenberg_eigenvalues(h.to_complex())
}

/// Eigenvalues of a complex square matrix.
///
/// # Errors
///
/// See [`complex_schur`](crate::schur::complex_schur).
pub fn eigenvalues_complex(a: &CMat) -> Result<Vec<Complex64>> {
    complex_schur_eigenvalues(a)
}

/// Spectral radius (largest eigenvalue magnitude) of a real square matrix.
///
/// # Errors
///
/// See [`eigenvalues`].
pub fn spectral_radius(a: &Mat) -> Result<f64> {
    Ok(eigenvalues(a)?.iter().fold(0.0_f64, |m, e| m.max(e.abs())))
}

/// Eigendecomposition of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthogonal eigenvector matrix; column `j` corresponds to `values[j]`.
    pub vectors: Mat,
}

/// Eigendecomposition of a real symmetric matrix by the cyclic Jacobi method.
///
/// The input is symmetrized as `(A + Aᵀ)/2`; use it only for matrices that are
/// symmetric up to roundoff (Gramians, normal matrices of least-squares
/// problems, ...).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::NonConvergence`] if the sweep limit is exhausted.
pub fn symmetric_eig(a: &Mat) -> Result<SymmetricEig> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { context: "symmetric_eig", dims: a.shape() });
    }
    let n = a.rows();
    let mut m = Mat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Mat::identity(n);
    if n <= 1 {
        let values = if n == 1 { vec![m[(0, 0)]] } else { vec![] };
        return Ok(SymmetricEig { values, vectors: v });
    }
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * m.frobenius_norm().max(f64::MIN_POSITIVE) {
            let mut idx: Vec<usize> = (0..n).collect();
            let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
            idx.sort_by(|&x, &y| diag[x].partial_cmp(&diag[y]).unwrap());
            let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
            let vectors = Mat::from_fn(n, n, |r, c| v[(r, idx[c])]);
            return Ok(SymmetricEig { values, vectors });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NonConvergence {
        context: "symmetric_eig Jacobi sweeps",
        iterations: max_sweeps,
    })
}

/// Returns `true` if the symmetric matrix `a` is positive definite, judged by
/// its smallest eigenvalue exceeding `-tol · max(|λ|)`.
///
/// # Errors
///
/// See [`symmetric_eig`].
pub fn is_positive_definite(a: &Mat, tol: f64) -> Result<bool> {
    let e = symmetric_eig(a)?;
    if e.values.is_empty() {
        return Ok(true);
    }
    let max_abs = e.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    Ok(e.values[0] > -tol * max_abs.max(1e-300))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigenvalues_of_companion_matrix() {
        // x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3)
        let a = Mat::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let mut ev: Vec<f64> = eigenvalues(&a).unwrap().iter().map(|e| e.re).collect();
        ev.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ev[0] - 1.0).abs() < 1e-9);
        assert!((ev[1] - 2.0).abs() < 1e-9);
        assert!((ev[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn complex_eigenvalues_come_in_conjugate_pairs_for_real_input() {
        let a = Mat::from_rows(&[&[0.0, 1.0, 0.0], &[-1.0, -0.2, 0.5], &[0.3, 0.0, -2.0]]);
        let ev = eigenvalues(&a).unwrap();
        let sum_im: f64 = ev.iter().map(|e| e.im).sum();
        assert!(sum_im.abs() < 1e-10, "imaginary parts must cancel for real matrices");
        let trace: f64 = ev.iter().map(|e| e.re).sum();
        assert!((trace - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn spectral_radius_of_scaled_identity() {
        let a = Mat::identity(4).scaled(-2.5);
        assert!((spectral_radius(&a).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric_eig_diagonalizes() {
        let a = Mat::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = symmetric_eig(&a).unwrap();
        // Reconstruct A = V D V^T
        let d = Mat::from_diag(&e.values);
        let back = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        assert!(back.max_abs_diff(&a) < 1e-10);
        // Ascending order
        assert!(e.values.windows(2).all(|w| w[0] <= w[1]));
        // Orthogonality
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Mat::identity(3)) < 1e-12);
    }

    #[test]
    fn symmetric_eig_known_values() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eig(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn positive_definiteness_check() {
        let spd = Mat::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        assert!(is_positive_definite(&spd, 1e-12).unwrap());
        let indef = Mat::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        assert!(!is_positive_definite(&indef, 1e-12).unwrap());
        assert!(is_positive_definite(&Mat::zeros(0, 0), 1e-12).unwrap());
    }

    #[test]
    fn rejects_non_square() {
        assert!(symmetric_eig(&Mat::zeros(2, 3)).is_err());
        assert!(eigenvalues(&Mat::zeros(1, 2)).is_err());
    }

    #[test]
    fn eigenvalues_complex_matrix() {
        let a = CMat::from_diag(&[Complex64::new(1.0, 2.0), Complex64::new(-3.0, 0.5)]);
        let ev = eigenvalues_complex(&a).unwrap();
        let mut re: Vec<f64> = ev.iter().map(|e| e.re).collect();
        re.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((re[0] + 3.0).abs() < 1e-12 && (re[1] - 1.0).abs() < 1e-12);
    }
}
