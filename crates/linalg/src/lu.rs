//! LU factorization with partial pivoting for real and complex matrices,
//! together with linear solves, inverses and determinants.
//!
//! The loaded-impedance transformation of the PDN flow (eq. 2 of the paper)
//! requires repeated inversion of small complex matrices; the Kronecker-based
//! Lyapunov path and the constrained quadratic program use the real variants.

use crate::{CMat, Complex64, LinalgError, Mat, Result};

/// LU factorization (with partial pivoting) of a square real matrix.
///
/// The factorization satisfies `P·A = L·U`, where `P` is the row permutation
/// encoded by `perm`.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Mat,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot is exactly zero.
    pub fn new(a: &Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { context: "Lu::new", dims: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude entry in column k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > max {
                    max = lu[(i, k)].abs();
                    p = i;
                }
            }
            // audit:allow(float-eq): exact-zero pivot column means structural singularity
            if max == 0.0 {
                return Err(LinalgError::Singular { context: "Lu::new" });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            // Rank-1 update of the trailing block, row by row on contiguous
            // slices (the pivot row and each target row are disjoint).
            let data = lu.as_mut_slice();
            let (top, bottom) = data.split_at_mut((k + 1) * n);
            let pivot_row = &top[k * n + k..(k + 1) * n];
            let pivot = pivot_row[0];
            for row in bottom.chunks_exact_mut(n) {
                let factor = row[k] / pivot;
                row[k] = factor;
                for (r, &p) in row[(k + 1)..].iter_mut().zip(&pivot_row[1..]) {
                    *r -= factor * p;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs from
    /// the matrix dimension.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Lu::solve_vec",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        self.substitute(&mut x);
        Ok(x)
    }

    /// Forward/back substitution on a permuted right-hand side (in place).
    fn substitute(&self, x: &mut [f64]) {
        let n = self.dim();
        let lu = self.lu.as_slice();
        // Forward substitution with unit lower-triangular L.
        for i in 0..n {
            let row = &lu[i * n..i * n + i];
            let mut acc = x[i];
            for (l, &xj) in row.iter().zip(x.iter()) {
                acc -= l * xj;
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = &lu[i * n..(i + 1) * n];
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when row counts differ.
    pub fn solve(&self, b: &Mat) -> Result<Mat> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Lu::solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut x = Mat::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            // Gather the permuted column without an extra allocation.
            for (i, dst) in col.iter_mut().enumerate() {
                *dst = b[(self.perm[i], j)];
            }
            self.substitute(&mut col);
            for i in 0..n {
                x[(i, j)] = col[i];
            }
        }
        Ok(x)
    }

    /// Cheap condition-number estimate from the pivot spread:
    /// `max_i |u_ii| / min_i |u_ii|` of the factored `U`.
    ///
    /// For the symmetric positive-definite Gramian blocks of the enforcement
    /// QP this tracks the true 2-norm condition number to within a modest
    /// factor — good enough to detect the near-singular blocks that blow up
    /// the perturbation step. Returns `f64::INFINITY` when a diagonal entry
    /// underflows to zero.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.dim();
        let mut max = 0.0_f64;
        let mut min = f64::INFINITY;
        for i in 0..n {
            let u = self.lu[(i, i)].abs();
            max = max.max(u);
            min = min.min(u);
        }
        // audit:allow(float-eq): exact-zero diagonal makes the condition estimate infinite
        if min == 0.0 {
            return f64::INFINITY;
        }
        max / min
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve failures.
    pub fn inverse(&self) -> Result<Mat> {
        self.solve(&Mat::identity(self.dim()))
    }
}

/// Solves `A·X = B` for real matrices.
///
/// # Errors
///
/// See [`Lu::new`] and [`Lu::solve`].
pub fn solve(a: &Mat, b: &Mat) -> Result<Mat> {
    Lu::new(a)?.solve(b)
}

/// Computes the inverse of a real matrix.
///
/// # Errors
///
/// See [`Lu::new`].
pub fn inverse(a: &Mat) -> Result<Mat> {
    Lu::new(a)?.inverse()
}

/// Determinant of a real matrix (via LU).
///
/// Returns `0.0` for singular matrices instead of an error.
pub fn det(a: &Mat) -> Result<f64> {
    match Lu::new(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// LU factorization (with partial pivoting) of a square complex matrix.
#[derive(Debug, Clone)]
pub struct CLu {
    lu: CMat,
    perm: Vec<usize>,
}

impl CLu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot is exactly zero.
    pub fn new(a: &CMat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { context: "CLu::new", dims: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > max {
                    max = lu[(i, k)].abs();
                    p = i;
                }
            }
            // audit:allow(float-eq): exact-zero pivot column means structural singularity
            if max == 0.0 {
                return Err(LinalgError::Singular { context: "CLu::new" });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            // Rank-1 update of the trailing block on contiguous row slices.
            let data = lu.as_mut_slice();
            let (top, bottom) = data.split_at_mut((k + 1) * n);
            let pivot_row = &top[k * n + k..(k + 1) * n];
            let pivot = pivot_row[0];
            for row in bottom.chunks_exact_mut(n) {
                let factor = row[k] / pivot;
                row[k] = factor;
                for (r, &p) in row[(k + 1)..].iter_mut().zip(&pivot_row[1..]) {
                    *r -= factor * p;
                }
            }
        }
        Ok(CLu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs from
    /// the matrix dimension.
    pub fn solve_vec(&self, b: &[Complex64]) -> Result<Vec<Complex64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "CLu::solve_vec",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut x: Vec<Complex64> = (0..n).map(|i| b[self.perm[i]]).collect();
        self.substitute(&mut x);
        Ok(x)
    }

    /// Forward/back substitution on a permuted right-hand side (in place).
    fn substitute(&self, x: &mut [Complex64]) {
        let n = self.dim();
        let lu = self.lu.as_slice();
        for i in 0..n {
            let row = &lu[i * n..i * n + i];
            let mut acc = x[i];
            for (l, &xj) in row.iter().zip(x.iter()) {
                acc -= *l * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let row = &lu[i * n..(i + 1) * n];
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when row counts differ.
    pub fn solve(&self, b: &CMat) -> Result<CMat> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "CLu::solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut x = CMat::zeros(n, b.cols());
        let mut col = vec![Complex64::ZERO; n];
        for j in 0..b.cols() {
            for (i, dst) in col.iter_mut().enumerate() {
                *dst = b[(self.perm[i], j)];
            }
            self.substitute(&mut col);
            for i in 0..n {
                x[(i, j)] = col[i];
            }
        }
        Ok(x)
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve failures.
    pub fn inverse(&self) -> Result<CMat> {
        self.solve(&CMat::identity(self.dim()))
    }
}

/// Solves `A·X = B` for complex matrices.
///
/// # Errors
///
/// See [`CLu::new`] and [`CLu::solve`].
pub fn csolve(a: &CMat, b: &CMat) -> Result<CMat> {
    CLu::new(a)?.solve(b)
}

/// Computes the inverse of a complex matrix.
///
/// # Errors
///
/// See [`CLu::new`].
pub fn cinverse(a: &CMat) -> Result<CMat> {
    CLu::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_solve_and_inverse() {
        let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let b = Mat::col_vector(&[10.0, 12.0]);
        let x = solve(&a, &b).unwrap();
        assert!((a.matmul(&x).unwrap().max_abs_diff(&b)) < 1e-12);
        let inv = inverse(&a).unwrap();
        assert!(a.matmul(&inv).unwrap().max_abs_diff(&Mat::identity(2)) < 1e-12);
    }

    #[test]
    fn real_det_and_singularity() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((det(&a).unwrap() - 6.0).abs() < 1e-14);
        // Determinant sign flips with a row swap.
        let b = Mat::from_rows(&[&[0.0, 3.0], &[2.0, 0.0]]);
        assert!((det(&b).unwrap() + 6.0).abs() < 1e-14);
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!((det(&s).unwrap()).to_bits(), 0.0f64.to_bits());
        assert!(matches!(inverse(&s), Err(LinalgError::Singular { .. })));
        assert!(matches!(Lu::new(&Mat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn condition_estimate_tracks_diagonal_spread() {
        let well = Lu::new(&Mat::identity(3)).unwrap();
        assert_eq!((well.condition_estimate()).to_bits(), 1.0f64.to_bits());
        let skewed = Lu::new(&Mat::from_diag(&[1.0, 1e-12])).unwrap();
        let cond = skewed.condition_estimate();
        assert!((cond - 1e12).abs() / 1e12 < 1e-9, "cond {cond}");
        let tiny = Lu::new(&Mat::from_diag(&[1.0, 1e-300])).unwrap();
        assert!(tiny.condition_estimate() > 1e290);
    }

    #[test]
    fn real_solve_random_system_residual() {
        // A fixed pseudo-random well-conditioned system.
        let n = 12;
        let a = Mat::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + 7) % 23) as f64 / 23.0 - 0.5;
            if i == j {
                v + 5.0
            } else {
                v
            }
        });
        let xs = Mat::from_fn(n, 3, |i, j| (i + j) as f64 * 0.1 - 0.4);
        let b = a.matmul(&xs).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.max_abs_diff(&xs) < 1e-10);
    }

    #[test]
    fn complex_solve_and_inverse() {
        let i = Complex64::I;
        let a = CMat::from_rows(&[
            &[Complex64::new(2.0, 1.0), Complex64::new(0.0, -1.0)],
            &[Complex64::new(1.0, 0.0), Complex64::new(3.0, 2.0)],
        ]);
        let b = CMat::col_vector(&[Complex64::ONE, i]);
        let x = csolve(&a, &b).unwrap();
        assert!(a.matmul(&x).unwrap().max_abs_diff(&b) < 1e-12);
        let inv = cinverse(&a).unwrap();
        assert!(a.matmul(&inv).unwrap().max_abs_diff(&CMat::identity(2)) < 1e-12);
    }

    #[test]
    fn complex_errors() {
        let z = CMat::zeros(2, 2);
        assert!(matches!(CLu::new(&z), Err(LinalgError::Singular { .. })));
        assert!(matches!(CLu::new(&CMat::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
        let a = CMat::identity(2);
        let lu = CLu::new(&a).unwrap();
        assert!(lu.solve_vec(&[Complex64::ONE]).is_err());
        assert!(lu.solve(&CMat::zeros(3, 1)).is_err());
    }

    #[test]
    fn complex_larger_system_residual() {
        let n = 10;
        let a = CMat::from_fn(n, n, |i, j| {
            let re = ((i * 13 + j * 7 + 3) % 17) as f64 / 17.0 - 0.5;
            let im = ((i * 5 + j * 11 + 1) % 19) as f64 / 19.0 - 0.5;
            let mut z = Complex64::new(re, im);
            if i == j {
                z += Complex64::new(4.0, 0.0);
            }
            z
        });
        let inv = cinverse(&a).unwrap();
        let err = a.matmul(&inv).unwrap().max_abs_diff(&CMat::identity(n));
        assert!(err < 1e-11, "residual {err}");
    }
}
