//! # pim-linalg
//!
//! Self-contained dense linear algebra kernels for the DATE 2014
//! sensitivity-weighted passivity enforcement reproduction.
//!
//! The macromodeling flow implemented in the sibling crates needs a fairly
//! specific set of numerical primitives:
//!
//! * complex arithmetic ([`Complex64`]) and dense real / complex matrices
//!   ([`Mat`], [`CMat`]);
//! * LU factorization with partial pivoting for linear solves and inverses
//!   ([`lu`]);
//! * Householder QR and linear least squares for the Vector Fitting
//!   identification steps ([`qr`]);
//! * eigenvalues of real non-symmetric matrices (pole relocation, rational
//!   zeros, Hamiltonian passivity tests) via Hessenberg reduction and the
//!   Francis double-shift QR iteration ([`schur`], [`eig`]);
//! * singular value decomposition of small complex matrices (scattering
//!   matrices at a frequency point) via one-sided Jacobi ([`svd`]);
//! * Lyapunov / Sylvester solvers for controllability Gramians
//!   ([`lyapunov`]).
//!
//! These are implemented from scratch (no BLAS/LAPACK, no `nalgebra`) so the
//! whole reproduction is pure Rust and every numerical path is testable in
//! isolation. The implementations target the moderate problem sizes of the
//! reproduction (state dimensions of a few hundred at most) rather than
//! HPC-scale performance.
//!
//! ## Example
//!
//! ```
//! use pim_linalg::{Mat, eig::eigenvalues};
//!
//! # fn main() -> Result<(), pim_linalg::LinalgError> {
//! // Companion matrix of z^2 - 3z + 2 = (z-1)(z-2)
//! let a = Mat::from_rows(&[&[3.0, -2.0], &[1.0, 0.0]]);
//! let mut ev: Vec<f64> = eigenvalues(&a)?.iter().map(|e| e.re).collect();
//! ev.sort_by(|x, y| x.partial_cmp(y).unwrap());
//! assert!((ev[0] - 1.0).abs() < 1e-12 && (ev[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cmat;
pub mod complex;
pub mod eig;
pub mod hessenberg;
pub mod lu;
pub mod lyapunov;
pub mod mat;
pub mod qr;
pub mod schur;
pub mod svd;

pub use cmat::CMat;
pub use complex::Complex64;
pub use mat::Mat;

use std::error::Error;
use std::fmt;

/// Convenient alias for the complex scalar used throughout the workspace.
pub type C64 = Complex64;

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Human readable description of the operation that failed.
        context: &'static str,
        /// Dimensions of the left operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Human readable description of the operation that failed.
        context: &'static str,
        /// Actual dimensions (rows, cols).
        dims: (usize, usize),
    },
    /// A factorization or solve encountered a (numerically) singular matrix.
    Singular {
        /// Human readable description of the operation that failed.
        context: &'static str,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NonConvergence {
        /// Human readable description of the algorithm that failed.
        context: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input arguments are invalid (empty matrix, negative tolerance, ...).
    InvalidArgument {
        /// Human readable description of the problem.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context, left, right } => write!(
                f,
                "dimension mismatch in {context}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { context, dims } => {
                write!(f, "matrix must be square in {context}: got {}x{}", dims.0, dims.1)
            }
            LinalgError::Singular { context } => {
                write!(f, "singular matrix encountered in {context}")
            }
            LinalgError::NonConvergence { context, iterations } => {
                write!(f, "{context} did not converge after {iterations} iterations")
            }
            LinalgError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
        }
    }
}

impl Error for LinalgError {}

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Returns `true` when two floating point numbers agree within an absolute
/// *or* relative tolerance of `tol`.
///
/// This is the comparison helper used by the test suites of all the crates in
/// the workspace; it is exported here so the tolerance logic is defined once.
///
/// ```
/// assert!(pim_linalg::approx_eq(1.0, 1.0 + 1e-13, 1e-10));
/// assert!(!pim_linalg::approx_eq(1.0, 1.1, 1e-10));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 1e-12, 1e-10));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12), 1e-10));
        assert!(!approx_eq(1.0, 2.0, 1e-10));
    }

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::DimensionMismatch { context: "matmul", left: (2, 3), right: (4, 5) };
        let s = format!("{e}");
        assert!(s.contains("matmul") && s.contains("2x3") && s.contains("4x5"));
        let e = LinalgError::Singular { context: "lu solve" };
        assert!(format!("{e}").contains("singular"));
    }
}
