//! Property-based tests for the dense linear algebra kernels.

use pim_linalg::eig::{eigenvalues, symmetric_eig};
use pim_linalg::lu::{inverse, solve};
use pim_linalg::lyapunov::controllability_gramian;
use pim_linalg::qr::lstsq;
use pim_linalg::schur::complex_schur;
use pim_linalg::svd::svd;
use pim_linalg::{CMat, Complex64, Mat};
use proptest::prelude::*;

/// Strategy: a well-conditioned (diagonally dominant) real square matrix.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
        Mat::from_fn(n, n, |i, j| {
            let x = v[i * n + j];
            if i == j {
                x + n as f64 + 1.0
            } else {
                x
            }
        })
    })
}

/// Strategy: a Hurwitz (stable) real matrix built as `M - (ρ(M)+margin)·I`.
fn stable_matrix(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
        let m = Mat::from_fn(n, n, |i, j| v[i * n + j]);
        let shift = n as f64 + 1.0;
        Mat::from_fn(n, n, |i, j| m[(i, j)] - if i == j { shift } else { 0.0 })
    })
}

fn complex_matrix(m: usize, n: usize) -> impl Strategy<Value = CMat> {
    prop::collection::vec(-1.0f64..1.0, 2 * m * n).prop_map(move |v| {
        CMat::from_fn(m, n, |i, j| Complex64::new(v[2 * (i * n + j)], v[2 * (i * n + j) + 1]))
    })
}

/// Naive triple-loop reference product for the blocked real kernel.
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            for j in 0..b.cols() {
                out[(i, j)] += a[(i, k)] * b[(k, j)];
            }
        }
    }
    out
}

/// Naive triple-loop reference product for the blocked complex kernel.
fn naive_cmatmul(a: &CMat, b: &CMat) -> CMat {
    let mut out = CMat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            for j in 0..b.cols() {
                out[(i, j)] += a[(i, k)] * b[(k, j)];
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive_reference(
        dims in (1usize..33, 1usize..33, 1usize..33),
        va in prop::collection::vec(-1.0f64..1.0, 33 * 33),
        vb in prop::collection::vec(-1.0f64..1.0, 33 * 33),
    ) {
        let (m, k, n) = dims;
        let a = Mat::from_fn(m, k, |i, j| va[i * 33 + j]);
        let b = Mat::from_fn(k, n, |i, j| vb[i * 33 + j]);
        let reference = naive_matmul(&a, &b);
        let fast = a.matmul(&b).unwrap();
        prop_assert!(fast.max_abs_diff(&reference) < 1e-12);
        // matmul_into overwrites whatever the output buffer held before.
        let mut out = Mat::filled(m, n, 7.5);
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn par_matmul_into_is_bit_identical_across_thread_counts(
        dims in (1usize..33, 1usize..33, 1usize..33),
        va in prop::collection::vec(-1.0f64..1.0, 33 * 33),
        vb in prop::collection::vec(-1.0f64..1.0, 33 * 33),
    ) {
        let (m, k, n) = dims;
        let a = Mat::from_fn(m, k, |i, j| va[i * 33 + j]);
        let b = Mat::from_fn(k, n, |i, j| vb[i * 33 + j]);
        let mut serial = Mat::zeros(m, n);
        a.matmul_into(&b, &mut serial).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = pim_runtime::ThreadPool::new(threads);
            let mut parallel = Mat::filled(m, n, 3.25);
            a.par_matmul_into(&b, &mut parallel, &pool).unwrap();
            for (x, y) in serial.as_slice().iter().zip(parallel.as_slice()) {
                prop_assert!(x.to_bits() == y.to_bits(), "{m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn blocked_complex_matmul_matches_naive_reference(
        dims in (1usize..33, 1usize..33, 1usize..33),
        va in prop::collection::vec(-1.0f64..1.0, 2 * 33 * 33),
        vb in prop::collection::vec(-1.0f64..1.0, 2 * 33 * 33),
    ) {
        let (m, k, n) = dims;
        let a = CMat::from_fn(m, k, |i, j| {
            Complex64::new(va[2 * (i * 33 + j)], va[2 * (i * 33 + j) + 1])
        });
        let b = CMat::from_fn(k, n, |i, j| {
            Complex64::new(vb[2 * (i * 33 + j)], vb[2 * (i * 33 + j) + 1])
        });
        let reference = naive_cmatmul(&a, &b);
        let fast = a.matmul(&b).unwrap();
        prop_assert!(fast.max_abs_diff(&reference) < 1e-12);
        let mut out = CMat::identity(m.max(n)).block(0, 0, m, n);
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn lu_solve_reconstructs_rhs(a in dominant_matrix(5), x in prop::collection::vec(-2.0f64..2.0, 5)) {
        let b = a.matvec(&x).unwrap();
        let sol = solve(&a, &Mat::col_vector(&b)).unwrap();
        for i in 0..5 {
            prop_assert!((sol[(i, 0)] - x[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity(a in dominant_matrix(4)) {
        let inv = inverse(&a).unwrap();
        let err = a.matmul(&inv).unwrap().max_abs_diff(&Mat::identity(4));
        prop_assert!(err < 1e-9);
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        v in prop::collection::vec(-1.0f64..1.0, 8 * 3),
        b in prop::collection::vec(-1.0f64..1.0, 8),
    ) {
        let a = Mat::from_fn(8, 3, |i, j| v[i * 3 + j] + if i % 3 == j { 2.0 } else { 0.0 });
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        // Normal equations: A^T r = 0 at the least squares optimum.
        let atr = a.transpose().matvec(&r).unwrap();
        for v in atr {
            prop_assert!(v.abs() < 1e-8);
        }
    }

    #[test]
    fn eigenvalue_sum_matches_trace(a in dominant_matrix(6)) {
        let ev = eigenvalues(&a).unwrap();
        let sum_re: f64 = ev.iter().map(|e| e.re).sum();
        let sum_im: f64 = ev.iter().map(|e| e.im).sum();
        prop_assert!((sum_re - a.trace()).abs() < 1e-7 * a.trace().abs().max(1.0));
        prop_assert!(sum_im.abs() < 1e-7);
    }

    #[test]
    fn schur_reconstructs_input(a in complex_matrix(5, 5)) {
        let s = complex_schur(&a).unwrap();
        let back = s.u.matmul(&s.t).unwrap().matmul(&s.u.hermitian()).unwrap();
        prop_assert!(back.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn svd_reconstruction_and_operator_norm_bound(a in complex_matrix(4, 6)) {
        let d = svd(&a).unwrap();
        prop_assert!(d.reconstruct().unwrap().max_abs_diff(&a) < 1e-9);
        // The operator 2-norm bounds the scaled Frobenius norm from below.
        let fro = a.frobenius_norm();
        prop_assert!(d.sigma_max() <= fro + 1e-12);
        prop_assert!(d.sigma_max() * 2.0 >= fro / (4.0f64.min(6.0)).sqrt() - 1e-12);
    }

    #[test]
    fn symmetric_eig_reconstructs(a in dominant_matrix(5)) {
        let sym = Mat::from_fn(5, 5, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = symmetric_eig(&sym).unwrap();
        let d = Mat::from_diag(&e.values);
        let back = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(back.max_abs_diff(&sym) < 1e-9);
    }

    #[test]
    fn gramian_is_positive_semidefinite(a in stable_matrix(4), bv in prop::collection::vec(-1.0f64..1.0, 4)) {
        let b = Mat::col_vector(&bv);
        let p = controllability_gramian(&a, &b).unwrap();
        let e = symmetric_eig(&p).unwrap();
        prop_assert!(e.values[0] > -1e-9);
        // Residual of the Lyapunov equation.
        let resid = &(&a.matmul(&p).unwrap() + &p.matmul(&a.transpose()).unwrap())
            + &b.matmul(&b.transpose()).unwrap();
        prop_assert!(resid.max_abs() < 1e-8);
    }
}
