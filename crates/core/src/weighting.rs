//! Construction of the sensitivity-weighted perturbation norm
//! (eq. 14–21 of the paper).

use crate::{CoreError, Result};
use pim_passivity::enforce::PerturbationNorm;
use pim_passivity::norm::{NormBuilder, NormKind};
use pim_passivity::PassivityError;
use pim_statespace::gramian::weighted_element_gramian;
use pim_statespace::{PoleResidueModel, StateSpace};
use pim_vectfit::SensitivityModel;

/// Builds the sensitivity-weighted perturbation norm `‖δS‖²_Ξ = ‖Ξ̃·δS‖²₂`
/// for a macromodel.
///
/// For every matrix element the cascade `S_ij(s)·Ξ̃(s)` of eq. (18) is
/// realized and the `(1,1)` block of its controllability Gramian (eq. 19)
/// becomes the quadratic weight of the `δc_ij` perturbation (eq. 20); the
/// per-element contributions add up to the norm of eq. (21). Because the
/// macromodel uses common poles, all elements share the same `(A_e, b_e)`
/// pair, hence the same weighted Gramian — it is computed once and reused.
///
/// # Errors
///
/// Propagates realization and Lyapunov solver failures.
///
/// ```
/// use pim_linalg::{CMat, Complex64, Mat};
/// use pim_statespace::PoleResidueModel;
/// use pim_vectfit::{fit_magnitude, MagnitudeFitConfig};
/// use pim_core::sensitivity_weighted_norm;
///
/// # fn main() -> Result<(), pim_core::CoreError> {
/// let model = PoleResidueModel::new(
///     vec![Complex64::new(-1e3, 0.0)],
///     vec![CMat::from_diag(&[Complex64::new(400.0, 0.0)])],
///     Mat::from_diag(&[0.4]),
/// )?;
/// // A flat (constant) sensitivity weight.
/// let omegas: Vec<f64> = (0..40).map(|k| 10f64.powf(1.0 + 0.1 * k as f64)).collect();
/// let xi = fit_magnitude(&omegas, &vec![2.0; 40], &MagnitudeFitConfig { order: 2, ..Default::default() })?;
/// let norm = sensitivity_weighted_norm(&model, &xi)?;
/// assert_eq!(norm.gramians().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn sensitivity_weighted_norm(
    model: &PoleResidueModel,
    sensitivity: &SensitivityModel,
) -> Result<PerturbationNorm> {
    let ports = model.ports();
    let element = StateSpace::from_pole_residue_element(model, 0, 0)?;
    let weight = sensitivity.state_space()?;
    let gramian = weighted_element_gramian(&element, &weight)?;
    let states = element.order();
    let blocks = vec![gramian; ports * ports];
    Ok(PerturbationNorm::from_gramians(blocks, ports, states)?)
}

/// [`NormBuilder`] for the paper's sensitivity-weighted norm: captures the
/// weighting model `Ξ̃(s)` and instantiates the cascade-Gramian norm of
/// eq. (19)–(21) for any macromodel handed to [`NormBuilder::build`].
///
/// This is the pluggable counterpart of [`sensitivity_weighted_norm`]: the
/// enforcement plumbing (`pim_passivity` and the pipeline) treats it
/// uniformly with [`pim_passivity::StandardNorm`] and any future hybrid.
#[derive(Debug, Clone)]
pub struct SensitivityWeightedNorm {
    weighting: SensitivityModel,
}

impl SensitivityWeightedNorm {
    /// Wraps a fitted weighting model `Ξ̃(s)`.
    pub fn new(weighting: SensitivityModel) -> Self {
        SensitivityWeightedNorm { weighting }
    }

    /// The weighting model this builder applies.
    pub fn weighting_model(&self) -> &SensitivityModel {
        &self.weighting
    }
}

impl NormBuilder for SensitivityWeightedNorm {
    fn kind(&self) -> NormKind {
        NormKind::SensitivityWeighted
    }

    fn build(&self, model: &PoleResidueModel) -> pim_passivity::Result<PerturbationNorm> {
        sensitivity_weighted_norm(model, &self.weighting).map_err(core_to_passivity)
    }
}

fn core_to_passivity(e: CoreError) -> PassivityError {
    match e {
        CoreError::Passivity(p) => p,
        CoreError::StateSpace(s) => PassivityError::StateSpace(s),
        CoreError::Linalg(l) => PassivityError::Linalg(l),
        other => PassivityError::InvalidInput(other.to_string()),
    }
}

/// Builds the trace-normalized blend of the sensitivity-weighted and the
/// standard Gramians: `α·G_Ξ/t̄_Ξ + (1−α)·G_std/t̄_std`, where `t̄` is the
/// mean block trace of each family.
///
/// This is the middle rung of the recovery ladder
/// ([`crate::recovery::RecoveryRung::Blended`]): the sensitivity weighting
/// survives at weight `α`, while the unweighted Gramian restores the
/// conditioning a skewed weighting model can destroy. The normalization
/// makes `α` meaningful — without it whichever family has the larger trace
/// would dominate regardless of `α`. The QP minimizer is invariant under a
/// global scale of the norm, so normalization never changes the `α = 0` /
/// `α = 1` limits beyond that scale.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] for `α` outside `[0, 1]`, and
/// propagates realization and Lyapunov-solver failures of either family.
pub fn blended_norm(
    model: &PoleResidueModel,
    sensitivity: &SensitivityModel,
    alpha: f64,
) -> Result<PerturbationNorm> {
    if !(0.0..=1.0).contains(&alpha) {
        return Err(CoreError::InvalidInput(format!(
            "blend weight alpha must be in [0, 1], got {alpha}"
        )));
    }
    let weighted = sensitivity_weighted_norm(model, sensitivity)?;
    let standard = PerturbationNorm::standard(model)?;
    let mean_trace = |norm: &PerturbationNorm| -> f64 {
        let sum: f64 = norm.gramians().iter().map(|g| g.trace()).sum();
        (sum / norm.gramians().len() as f64).abs().max(1e-300)
    };
    let tw = mean_trace(&weighted);
    let ts = mean_trace(&standard);
    let blocks: Vec<_> = weighted
        .gramians()
        .iter()
        .zip(standard.gramians())
        .map(|(gw, gs)| &gw.scaled(alpha / tw) + &gs.scaled((1.0 - alpha) / ts))
        .collect();
    Ok(PerturbationNorm::from_gramians(blocks, model.ports(), weighted.states())?)
}

/// [`NormBuilder`] for the blended recovery norm: captures the weighting
/// model `Ξ̃(s)` and the blend weight `α`, and instantiates the
/// trace-normalized blend of [`blended_norm`] for any macromodel.
#[derive(Debug, Clone)]
pub struct BlendedNorm {
    weighting: SensitivityModel,
    alpha: f64,
}

impl BlendedNorm {
    /// Wraps a fitted weighting model and a blend weight `α ∈ [0, 1]`
    /// (`α = 1` is purely weighted, `α = 0` purely standard).
    pub fn new(weighting: SensitivityModel, alpha: f64) -> Self {
        BlendedNorm { weighting, alpha }
    }

    /// The blend weight of the sensitivity-weighted family.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl NormBuilder for BlendedNorm {
    fn kind(&self) -> NormKind {
        NormKind::Blended
    }

    fn build(&self, model: &PoleResidueModel) -> pim_passivity::Result<PerturbationNorm> {
        blended_norm(model, &self.weighting, self.alpha).map_err(core_to_passivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_linalg::{approx_eq, CMat, Complex64, Mat};
    use pim_statespace::gramian::element_gramian;
    use pim_vectfit::{fit_magnitude, MagnitudeFitConfig};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn two_port_model() -> PoleResidueModel {
        let p = c(-5e3, 8e4);
        let r = CMat::from_fn(2, 2, |i, j| c(1e3 + 100.0 * (i + j) as f64, 50.0));
        PoleResidueModel::new(
            vec![c(-1e3, 0.0), p, p.conj()],
            vec![
                CMat::from_fn(2, 2, |i, j| c(500.0 * (1 + i + j) as f64, 0.0)),
                r.clone(),
                r.conj(),
            ],
            Mat::from_fn(2, 2, |i, j| if i == j { 0.3 } else { 0.05 }),
        )
        .unwrap()
    }

    fn flat_weight(value: f64) -> SensitivityModel {
        let omegas: Vec<f64> = (0..60).map(|k| 10f64.powf(k as f64 * 0.1)).collect();
        fit_magnitude(
            &omegas,
            &vec![value; 60],
            &MagnitudeFitConfig { order: 2, n_iterations: 5, ..Default::default() },
        )
        .unwrap()
    }

    fn lowpass_weight() -> SensitivityModel {
        // |Ξ| large below 1e4 rad/s, small above.
        let omegas: Vec<f64> = (0..80).map(|k| 10f64.powf(1.0 + k as f64 * 0.075)).collect();
        let mags: Vec<f64> = omegas.iter().map(|w| 10.0 / (1.0 + w / 1e4)).collect();
        fit_magnitude(
            &omegas,
            &mags,
            &MagnitudeFitConfig { order: 4, n_iterations: 8, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn flat_weight_scales_the_standard_gramian() {
        let model = two_port_model();
        let norm1 = sensitivity_weighted_norm(&model, &flat_weight(1.0)).unwrap();
        let norm3 = sensitivity_weighted_norm(&model, &flat_weight(3.0)).unwrap();
        let element = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let plain = element_gramian(&element).unwrap();
        // |Ξ| = 1 reproduces the standard Gramian, |Ξ| = 3 scales it by 9.
        let g1 = &norm1.gramians()[0];
        let g3 = &norm3.gramians()[0];
        assert!(g1.max_abs_diff(&plain) < 0.05 * plain.max_abs());
        for i in 0..g1.rows() {
            for j in 0..g1.cols() {
                assert!(
                    approx_eq(g3[(i, j)], 9.0 * g1[(i, j)], 0.1),
                    "scaling mismatch at ({i},{j}): {} vs {}",
                    g3[(i, j)],
                    9.0 * g1[(i, j)]
                );
            }
        }
        // One Gramian per matrix element, all identical (common poles).
        assert_eq!(norm1.gramians().len(), 4);
        assert_eq!(
            norm1.gramians()[0].max_abs_diff(&norm1.gramians()[3]).to_bits(),
            0.0f64.to_bits()
        );
    }

    #[test]
    fn lowpass_weight_penalizes_low_frequency_perturbations() {
        // With a low-pass sensitivity weight, a perturbation direction that
        // mainly changes the low-frequency response (the real pole at
        // -1e3 rad/s) must cost more than one affecting the resonant pair at
        // 8e4 rad/s, relative to the unweighted norm.
        let model = two_port_model();
        let weighted = sensitivity_weighted_norm(&model, &lowpass_weight()).unwrap();
        let element = StateSpace::from_pole_residue_element(&model, 0, 0).unwrap();
        let plain = element_gramian(&element).unwrap();
        let gw = &weighted.gramians()[0];
        // Direction e0 excites the real (low-frequency) pole; e1/e2 the pair.
        let cost = |g: &Mat, dir: &[f64]| -> f64 {
            let gv = g.matvec(dir).unwrap();
            dir.iter().zip(&gv).map(|(a, b)| a * b).sum()
        };
        let low_dir = [1.0, 0.0, 0.0];
        let high_dir = [0.0, 1.0, 0.0];
        let ratio_weighted = cost(gw, &low_dir) / cost(gw, &high_dir);
        let ratio_plain = cost(&plain, &low_dir) / cost(&plain, &high_dir);
        assert!(
            ratio_weighted > 3.0 * ratio_plain,
            "weighted {ratio_weighted} vs plain {ratio_plain}"
        );
    }

    #[test]
    fn builder_matches_the_direct_construction() {
        let model = two_port_model();
        let weight = lowpass_weight();
        let direct = sensitivity_weighted_norm(&model, &weight).unwrap();
        let weight_order = weight.order();
        let builder = SensitivityWeightedNorm::new(weight);
        assert_eq!(builder.kind(), NormKind::SensitivityWeighted);
        assert_eq!(builder.weighting_model().order(), weight_order);
        let built = builder.build(&model).unwrap();
        assert_eq!(built.ports(), direct.ports());
        assert_eq!(built.states(), direct.states());
        for (a, b) in built.gramians().iter().zip(direct.gramians()) {
            assert_eq!((a.max_abs_diff(b)).to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn blended_norm_interpolates_between_the_families() {
        let model = two_port_model();
        let weight = lowpass_weight();
        let weighted = sensitivity_weighted_norm(&model, &weight).unwrap();
        let standard = PerturbationNorm::standard(&model).unwrap();
        // The α = 1 / α = 0 limits equal one family up to the global
        // trace-normalization scale (which the QP minimizer is invariant
        // under).
        for (alpha, family) in [(1.0, &weighted), (0.0, &standard)] {
            let blend = blended_norm(&model, &weight, alpha).unwrap();
            let scale = blend.gramians()[0][(0, 0)] / family.gramians()[0][(0, 0)];
            for (gb, gf) in blend.gramians().iter().zip(family.gramians()) {
                for i in 0..gb.rows() {
                    for j in 0..gb.cols() {
                        assert!(
                            approx_eq(gb[(i, j)], scale * gf[(i, j)], 1e-12),
                            "alpha {alpha} mismatch at ({i},{j})"
                        );
                    }
                }
            }
        }
        // The midpoint carries part of the weighting: its low-vs-high
        // direction cost ratio lies strictly between the two families'.
        let cost = |g: &Mat, dir: &[f64]| -> f64 {
            let gv = g.matvec(dir).unwrap();
            dir.iter().zip(&gv).map(|(a, b)| a * b).sum()
        };
        let ratio = |g: &Mat| cost(g, &[1.0, 0.0, 0.0]) / cost(g, &[0.0, 1.0, 0.0]);
        let mid = blended_norm(&model, &weight, 0.5).unwrap();
        let (rw, rs, rm) = (
            ratio(&weighted.gramians()[0]),
            ratio(&standard.gramians()[0]),
            ratio(&mid.gramians()[0]),
        );
        assert!(
            rm < rw && rm > rs,
            "mid ratio {rm} must sit between standard {rs} and weighted {rw}"
        );
        // Out-of-range α is rejected.
        assert!(blended_norm(&model, &weight, 1.5).is_err());
        assert!(blended_norm(&model, &weight, -0.1).is_err());
        // The builder matches the free function and labels itself.
        let builder = BlendedNorm::new(weight, 0.5);
        assert_eq!(builder.kind(), NormKind::Blended);
        assert_eq!((builder.alpha()).to_bits(), 0.5f64.to_bits());
        let built = builder.build(&model).unwrap();
        for (a, b) in built.gramians().iter().zip(mid.gramians()) {
            assert_eq!((a.max_abs_diff(b)).to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn norm_dimensions_match_model() {
        let model = two_port_model();
        let norm = sensitivity_weighted_norm(&model, &flat_weight(1.0)).unwrap();
        assert_eq!(norm.ports(), 2);
        assert_eq!(norm.states(), 3);
        let v = norm.evaluate(&[1e-3; 2 * 2 * 3]).unwrap();
        assert!(v > 0.0);
    }
}
