//! The end-to-end PDN macromodeling flow of the paper.
//!
//! Given tabulated scattering data and the nominal termination scheme, the
//! flow performs:
//!
//! 1. standard (unweighted) Vector Fitting — the conventional baseline;
//! 2. computation of the first-order sensitivity `Ξ_k` of the target
//!    impedance (eq. 5) and of the corresponding fitting weights (eq. 6);
//! 3. sensitivity-weighted Vector Fitting;
//! 4. Magnitude Vector Fitting of `Ξ_k` into the weighting model `Ξ̃(s)`
//!    (eq. 15–17);
//! 5. passivity assessment of the weighted model and, when violations exist,
//!    passivity enforcement with the sensitivity-weighted norm (eq. 18–21) —
//!    and optionally with the standard L2 norm, which is the comparison the
//!    paper uses to demonstrate the accuracy loss of unweighted enforcement.

use crate::recovery::{AccuracyContract, ContractConfig, RecoveryConfig, RecoveryReport};
use crate::Result;
use pim_passivity::enforce::{EnforcementConfig, EnforcementOutcome};
use pim_pdn::{target_impedance, TargetImpedance, TerminationNetwork};
use pim_rfdata::{metrics, NetworkData, ParameterKind};
use pim_statespace::PoleResidueModel;
use pim_vectfit::{SensitivityModel, VfConfig, VfResult};

/// Configuration of the full flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Vector Fitting configuration (order, iterations, ...), shared by the
    /// standard and the weighted fit.
    pub vf: VfConfig,
    /// Order `n_w` of the sensitivity weighting model (paper: 8).
    pub sensitivity_order: usize,
    /// Relative floor applied to the normalized sensitivity weights so that
    /// no frequency is weighted exactly zero.
    pub weight_floor: f64,
    /// Passivity enforcement configuration (shared by the weighted and the
    /// baseline enforcement).
    pub enforcement: EnforcementConfig,
    /// Also run the standard (unweighted-norm) enforcement on the weighted
    /// model, to reproduce the paper's comparison (Fig. 5).
    pub run_standard_enforcement: bool,
    /// The recovery ladder engaged when the weighted enforcement diverges
    /// (see [`crate::recovery`]).
    pub recovery: RecoveryConfig,
    /// The accuracy contract attached to delivered models (see
    /// [`crate::recovery::ContractConfig`]).
    pub contract: ContractConfig,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            vf: VfConfig { n_poles: 18, n_iterations: 6, ..VfConfig::default() },
            sensitivity_order: 8,
            weight_floor: 1e-2,
            enforcement: EnforcementConfig::default(),
            run_standard_enforcement: true,
            recovery: RecoveryConfig::default(),
            contract: ContractConfig::default(),
        }
    }
}

/// Accuracy summary of one macromodel against the reference data.
#[derive(Debug, Clone)]
pub struct ModelEvaluation {
    /// RMS error in the scattering representation (eq. 4, normalized).
    pub scattering_rms_error: f64,
    /// Relative RMS error of the target impedance with respect to the
    /// nominal (data-based) target impedance.
    pub impedance_relative_error: f64,
    /// The macromodel-based target impedance.
    pub impedance: TargetImpedance,
}

/// Full report of the macromodeling flow.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Target impedance computed from the raw data (the reference curve of
    /// Figs. 2 and 5).
    pub nominal_impedance: TargetImpedance,
    /// The sensitivity samples `Ξ_k`.
    pub sensitivity: Vec<f64>,
    /// The normalized fitting weights derived from the sensitivity.
    pub weights: Vec<f64>,
    /// The rational weighting model `Ξ̃(s)`.
    pub sensitivity_model: SensitivityModel,
    /// The standard (unweighted) Vector Fitting result.
    pub standard_fit: VfResult,
    /// The sensitivity-weighted Vector Fitting result.
    pub weighted_fit: VfResult,
    /// Worst singular value of the weighted model before enforcement.
    pub sigma_max_before: f64,
    /// Outcome of the sensitivity-weighted passivity enforcement (`None` when
    /// the weighted model was already passive).
    pub weighted_enforcement: Option<EnforcementOutcome>,
    /// Outcome of the standard-norm passivity enforcement on the same model
    /// (`None` when disabled or the model was already passive). A
    /// `NotConverged` failure is reported as `None` as well — the baseline is
    /// only a comparison curve.
    pub standard_enforcement: Option<EnforcementOutcome>,
    /// Evaluation of the standard (unweighted) fitted model.
    pub standard_model_eval: ModelEvaluation,
    /// Evaluation of the weighted fitted model (before enforcement).
    pub weighted_model_eval: ModelEvaluation,
    /// Evaluation of the final sensitivity-weighted passive model.
    pub weighted_passive_eval: ModelEvaluation,
    /// Evaluation of the standard-norm passive model, when available.
    pub standard_passive_eval: Option<ModelEvaluation>,
    /// Record of the recovery ladder, when it engaged (`None` on the happy
    /// path where the primary weighted enforcement delivered).
    pub recovery: Option<RecoveryReport>,
    /// The accuracy contract of the delivered model (`None` under
    /// [`crate::recovery::ContractPolicy::Off`]).
    pub contract: Option<AccuracyContract>,
}

impl FlowReport {
    /// The final deliverable of the flow: the passive, sensitivity-weighted
    /// macromodel (the weighted fit itself when it was already passive).
    pub fn final_model(&self) -> &PoleResidueModel {
        match &self.weighted_enforcement {
            Some(out) => &out.model,
            None => &self.weighted_fit.model,
        }
    }
}

/// Evaluates a macromodel against the reference data and the nominal
/// termination scheme: scattering RMS error plus target-impedance error.
///
/// # Errors
///
/// Propagates sampling, conversion and impedance computation failures.
pub fn evaluate_model(
    model: &PoleResidueModel,
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
    nominal: &TargetImpedance,
) -> Result<ModelEvaluation> {
    let sampled = model.sample(data.grid(), ParameterKind::Scattering, data.z_ref())?;
    let scattering_rms_error = metrics::rms_error(&sampled, data)?;
    let impedance = target_impedance(&sampled, network, observation_port)?;
    let impedance_relative_error = metrics::relative_rms_error(&nominal.values, &impedance.values)?;
    Ok(ModelEvaluation { scattering_rms_error, impedance_relative_error, impedance })
}

/// Runs the complete flow on a tabulated data set.
///
/// This is the legacy one-shot entry point, kept as a thin compatibility
/// wrapper over the staged [`Pipeline`](crate::pipeline::Pipeline): it runs
/// every stage in order and assembles the same `FlowReport`, bit for bit.
///
/// # Errors
///
/// Propagates failures of the individual stages; the *baseline* standard
/// enforcement is allowed to fail (it is reported as `None`), but the
/// sensitivity-weighted enforcement is not.
pub fn run_flow(
    data: &NetworkData,
    network: &TerminationNetwork,
    observation_port: usize,
    config: &FlowConfig,
) -> Result<FlowReport> {
    crate::pipeline::Pipeline::from_data(data, network, observation_port, config.clone())?.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StandardScenario;
    use pim_passivity::check::assess;

    fn quick_config() -> FlowConfig {
        FlowConfig {
            vf: VfConfig { n_poles: 18, n_iterations: 5, ..VfConfig::default() },
            sensitivity_order: 6,
            weight_floor: 1e-2,
            enforcement: EnforcementConfig {
                sweep_points: 200,
                sigma_margin: 1e-3,
                max_iterations: 60,
                ..Default::default()
            },
            run_standard_enforcement: true,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn flow_reproduces_the_paper_claims_on_the_reduced_scenario() {
        let sc = StandardScenario::reduced().unwrap();
        let report = run_flow(&sc.data, &sc.network, sc.observation_port, &quick_config()).unwrap();

        // Claim 1 (Fig. 1 / Fig. 2): the standard model is accurate in the
        // scattering representation but the weighted model tracks the target
        // impedance better.
        assert!(report.standard_model_eval.scattering_rms_error < 1e-2);
        assert!(
            report.weighted_model_eval.impedance_relative_error
                < report.standard_model_eval.impedance_relative_error,
            "weighted fit ({}) must beat standard fit ({}) on the target impedance",
            report.weighted_model_eval.impedance_relative_error,
            report.standard_model_eval.impedance_relative_error
        );
        assert!(report.weighted_model_eval.impedance_relative_error < 0.15);

        // Claim 2 (Fig. 3): the sensitivity decreases over the band and the
        // weighting model tracks it where it matters.
        let xi_low = report.sensitivity[1];
        let xi_high = *report.sensitivity.last().unwrap();
        assert!(xi_low > 10.0 * xi_high);

        // Claim 3 (Fig. 4 / Fig. 5): the final weighted-enforcement model is
        // passive and keeps the target impedance accurate.
        let final_eval = &report.weighted_passive_eval;
        assert!(final_eval.impedance_relative_error < 0.6);
        let final_assessment = assess(report.final_model(), &sc.data.grid().omegas()).unwrap();
        // The enforcement loop certifies passivity on its own (denser)
        // sweep plus the Hamiltonian test; re-assessing on the coarser data
        // grid may expose residual violations at the numerical-tolerance
        // level between constrained frequencies, so allow a 1e-3 band.
        assert!(
            final_assessment.sigma_max <= 1.0 + 1e-3,
            "final model must be (practically) passive, sigma_max = {}",
            final_assessment.sigma_max
        );
        if let Some(out) = &report.weighted_enforcement {
            assert!(out.report.passive, "enforcement must certify passivity on its own sweep");
        }

        // Claim 4: when the weighted model needs enforcement and the
        // standard-norm baseline is available, the weighted enforcement
        // preserves the target impedance at least as well.
        if let (Some(_), Some(std_eval)) =
            (&report.weighted_enforcement, &report.standard_passive_eval)
        {
            assert!(
                final_eval.impedance_relative_error < std_eval.impedance_relative_error,
                "weighted enforcement ({}) must beat standard enforcement ({})",
                final_eval.impedance_relative_error,
                std_eval.impedance_relative_error
            );
        }

        // Bookkeeping invariants.
        assert_eq!(report.weights.len(), sc.data.len());
        assert!(report.weights.iter().all(|&w| w > 0.0 && w <= 1.0));
        assert_eq!(report.sensitivity.len(), sc.data.len());
    }

    #[test]
    fn flow_rejects_non_scattering_data() {
        let sc = StandardScenario::reduced().unwrap();
        let zdata = sc.data.to_impedance().unwrap();
        assert!(run_flow(&zdata, &sc.network, sc.observation_port, &quick_config()).is_err());
    }
}
