//! # pim-core
//!
//! The paper's primary contribution: **sensitivity-based weighting for
//! passivity enforcement of linear macromodels** (Ubolli, Grivet-Talocia,
//! Bandinu, Chinea — DATE 2014), together with the end-to-end PDN
//! macromodeling flow that exercises it.
//!
//! * [`weighting`] — builds the sensitivity-weighted perturbation norm of
//!   eq. (14)–(21): the sensitivity samples `Ξ_k` are turned into a stable
//!   minimum-phase weighting model `Ξ̃(s)` by Magnitude Vector Fitting, the
//!   cascade `S_ij(s)·Ξ̃(s)` of eq. (18) is realized for the shared
//!   per-element dynamics, and the `(1,1)` block of its controllability
//!   Gramian (eq. 19–20) becomes the per-element weight of the enforcement
//!   norm (eq. 21);
//! * [`pipeline`] — the staged, observable macromodeling pipeline: typed
//!   stage handles (`sensitivity → fit → weighting_model → assess →
//!   enforce`), each returning an owned artifact, a
//!   [`pipeline::Pipeline::sampling`] builder plugging a
//!   `pim_passivity::grid::SamplingStrategy` into the assessment and
//!   enforcement grids, plus the [`pipeline::Pipeline::sweep`] batch
//!   runner over [`scenario::ScenarioPreset`]s;
//! * [`flow`] — the legacy one-shot entry point [`flow::run_flow`], now a
//!   thin wrapper over the pipeline producing a bit-identical
//!   [`flow::FlowReport`], plus the report/evaluation types;
//! * [`observer`] — the [`observer::FlowObserver`] hook (stage boundaries +
//!   per-iteration enforcement events) and the recording
//!   [`observer::TraceObserver`];
//! * [`scenario`] — the synthetic reproduction test case: a plane-pair PDN
//!   board (from `pim-circuit`) with the nominal die / decap / VRM
//!   termination scheme of Sec. IV, sampled on the paper's 1 kHz – 2 GHz
//!   logarithmic grid with DC point, and the [`scenario::ScenarioPreset`]
//!   registry of named board shapes;
//! * [`corpus`] — the certification-gated stress corpus: seeded board
//!   generation (via `pim_circuit::generator`), parallel batch
//!   classification ([`corpus::Corpus`]) against a 16×-audit-grid passivity
//!   gate plus a weighted-beats-standard gate, and proptest-style greedy
//!   [`corpus::minimize`]-ation of failing scenarios into self-contained
//!   replayable text fixtures.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod flow;
pub mod observer;
pub mod pipeline;
pub mod recovery;
pub mod scenario;
pub mod weighting;

pub use corpus::{
    corpus_flow_config, minimize, Corpus, CorpusCase, CorpusClass, CorpusConfig, CorpusVerdict,
    MinimizedFixture,
};
pub use flow::{run_flow, FlowConfig, FlowReport, ModelEvaluation};
pub use observer::{FlowObserver, Stage, TraceObserver};
pub use pipeline::{
    AssessmentArtifact, EnforcementArtifact, FitArtifact, FitKind, Pipeline, SensitivityArtifact,
    SweepEntry,
};
pub use recovery::{
    AccuracyContract, ContractConfig, ContractPolicy, RecoveryConfig, RecoveryReport, RecoveryRung,
    RungAttempt,
};
pub use scenario::{ScenarioConfig, ScenarioPreset, StandardScenario};
pub use weighting::{
    blended_norm, sensitivity_weighted_norm, BlendedNorm, SensitivityWeightedNorm,
};

use std::error::Error;
use std::fmt;

/// Errors produced by the macromodeling flow.
#[derive(Debug)]
pub enum CoreError {
    /// Linear algebra kernel failure.
    Linalg(pim_linalg::LinalgError),
    /// Frequency-data handling failure.
    RfData(pim_rfdata::RfDataError),
    /// Model manipulation failure.
    StateSpace(pim_statespace::StateSpaceError),
    /// Rational fitting failure.
    VectFit(pim_vectfit::VectFitError),
    /// Passivity assessment / enforcement failure.
    Passivity(pim_passivity::PassivityError),
    /// PDN analysis failure.
    Pdn(pim_pdn::PdnError),
    /// Synthetic circuit failure.
    Circuit(pim_circuit::CircuitError),
    /// The delivered model failed its accuracy contract under
    /// [`recovery::ContractPolicy::Refuse`]; the contract carries what was
    /// measured.
    ContractViolation(Box<recovery::AccuracyContract>),
    /// Invalid configuration or inconsistent inputs.
    InvalidInput(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::RfData(e) => write!(f, "data handling failure: {e}"),
            CoreError::StateSpace(e) => write!(f, "model manipulation failure: {e}"),
            CoreError::VectFit(e) => write!(f, "rational fitting failure: {e}"),
            CoreError::Passivity(e) => write!(f, "passivity failure: {e}"),
            CoreError::Pdn(e) => write!(f, "pdn analysis failure: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit failure: {e}"),
            CoreError::ContractViolation(c) => write!(f, "accuracy contract violated: {c}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::RfData(e) => Some(e),
            CoreError::StateSpace(e) => Some(e),
            CoreError::VectFit(e) => Some(e),
            CoreError::Passivity(e) => Some(e),
            CoreError::Pdn(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            CoreError::ContractViolation(_) => None,
            CoreError::InvalidInput(_) => None,
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CoreError {
            fn from(e: $ty) -> Self {
                CoreError::$variant(e)
            }
        }
    };
}

impl_from!(Linalg, pim_linalg::LinalgError);
impl_from!(RfData, pim_rfdata::RfDataError);
impl_from!(StateSpace, pim_statespace::StateSpaceError);
impl_from!(VectFit, pim_vectfit::VectFitError);
impl_from!(Passivity, pim_passivity::PassivityError);
impl_from!(Pdn, pim_pdn::PdnError);
impl_from!(Circuit, pim_circuit::CircuitError);

/// Result alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
