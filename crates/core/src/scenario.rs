//! The synthetic reproduction scenario: board, data set and nominal
//! termination scheme matching Sec. IV of the paper.

use crate::{CoreError, Result};
use pim_circuit::board::{build_board, PdnBoardSpec, SyntheticPdn};
use pim_circuit::generator::{BoardGenerator, GeneratorConfig};
use pim_pdn::{Termination, TerminationNetwork};
use pim_rfdata::{FrequencyGrid, NetworkData};

/// Builds a preset board spec through the [`BoardGenerator`] explicit path —
/// the single construction route for every hand-built topology. With all
/// ranges pinned the generated spec is bit-identical to the historical
/// literal construction (asserted by `presets_route_through_the_generator`).
fn explicit_board(
    nx: usize,
    ny: usize,
    die: Vec<(usize, usize)>,
    decaps: Vec<(usize, usize)>,
    vrms: Vec<(usize, usize)>,
) -> PdnBoardSpec {
    BoardGenerator::new(GeneratorConfig::explicit(nx, ny, die, decaps, vrms))
        .generate(0)
        .expect("preset board topologies are valid")
        .spec
}

/// Parameters of the standard scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Board description (grid size, electrical parameters, port placement).
    pub board: PdnBoardSpec,
    /// Number of logarithmically spaced frequency samples (the DC point is
    /// added on top, as in the paper's data set).
    pub frequency_samples: usize,
    /// Lower band edge in hertz (paper: 1 kHz).
    pub f_min_hz: f64,
    /// Upper band edge in hertz (paper: 2 GHz).
    pub f_max_hz: f64,
    /// Scattering reference resistance (paper: 50 Ω).
    pub z_ref: f64,
    /// Decoupling capacitor value.
    pub decap_capacitance: f64,
    /// Decoupling capacitor ESR.
    pub decap_esr: f64,
    /// Decoupling capacitor ESL.
    pub decap_esl: f64,
    /// VRM series resistance.
    pub vrm_resistance: f64,
    /// VRM series inductance.
    pub vrm_inductance: f64,
    /// Die block series resistance.
    pub die_resistance: f64,
    /// Die block capacitance.
    pub die_capacitance: f64,
    /// Total switching current injected at the die ports (paper: 1 A).
    pub total_current: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            board: PdnBoardSpec::default(),
            frequency_samples: 160,
            f_min_hz: 1e3,
            f_max_hz: 2e9,
            z_ref: 50.0,
            decap_capacitance: 10e-6,
            decap_esr: 3e-3,
            decap_esl: 0.6e-9,
            vrm_resistance: 0.8e-3,
            vrm_inductance: 15e-9,
            die_resistance: 30e-3,
            die_capacitance: 60e-9,
            total_current: 1.0,
        }
    }
}

impl ScenarioConfig {
    /// A reduced-size configuration (smaller board, fewer frequency samples)
    /// used by tests and quick examples; it keeps the same qualitative
    /// behaviour while running in a fraction of the time.
    pub fn reduced() -> Self {
        ScenarioConfig {
            board: explicit_board(4, 4, vec![(1, 1), (2, 2)], vec![(0, 3)], vec![(3, 0)]),
            frequency_samples: 80,
            ..ScenarioConfig::default()
        }
    }
}

/// The built-in scenario registry: named board/termination shapes the
/// pipeline can build and sweep without hand-assembling a
/// [`ScenarioConfig`].
///
/// `Reduced` and `Paper` are the historical test-size and paper-size
/// configurations; the others open scenario diversity (decap-dense boards,
/// multiple VRMs, a minimal smoke board) so batch runs exercise the
/// weighted-vs-standard comparison across structurally different PDNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioPreset {
    /// The reduced test-size board (4×4 grid, 2 die + 1 decap + 1 VRM,
    /// 81 frequency samples).
    Reduced,
    /// The paper-size board (6×6 grid, 4 die + 3 decap + 1 VRM,
    /// 161 frequency samples) — the default [`ScenarioConfig`].
    Paper,
    /// A densely decoupled board: the reduced 4×4 grid with three decap
    /// banks spread around the die instead of one.
    DenseDecap,
    /// A multi-VRM board: 5×5 grid fed by two VRM ports on opposite corners.
    MultiVrm,
    /// A bulk-regulation variant of the reduced board: large
    /// electrolytic-style decap banks, a weaker VRM and a heavier die load.
    BulkDecap,
    /// The minimal smoke board: a 3×3 grid with one die, one decap and one
    /// VRM port. Near-exact fits put its macromodels right on the passivity
    /// boundary, which used to break the Hamiltonian Schur iteration at
    /// fitting orders around 18 (QR non-convergence); the LAPACK-style
    /// exceptional shifts fixed that, and the preset now runs the full flow
    /// end to end.
    Minimal,
}

impl ScenarioPreset {
    /// Every built-in preset, in registry order.
    pub const ALL: [ScenarioPreset; 6] = [
        ScenarioPreset::Reduced,
        ScenarioPreset::Paper,
        ScenarioPreset::DenseDecap,
        ScenarioPreset::MultiVrm,
        ScenarioPreset::BulkDecap,
        ScenarioPreset::Minimal,
    ];

    /// Stable lowercase identifier (for reports and CLI surfaces).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPreset::Reduced => "reduced",
            ScenarioPreset::Paper => "paper",
            ScenarioPreset::DenseDecap => "dense-decap",
            ScenarioPreset::MultiVrm => "multi-vrm",
            ScenarioPreset::BulkDecap => "bulk-decap",
            ScenarioPreset::Minimal => "minimal",
        }
    }

    /// The scenario configuration this preset stands for.
    pub fn config(self) -> ScenarioConfig {
        match self {
            ScenarioPreset::Reduced => ScenarioConfig::reduced(),
            ScenarioPreset::Paper => ScenarioConfig::default(),
            ScenarioPreset::DenseDecap => ScenarioConfig {
                // Three decap banks spread around the die instead of one.
                board: explicit_board(
                    4,
                    4,
                    vec![(1, 1), (2, 2)],
                    vec![(0, 3), (3, 3), (0, 0)],
                    vec![(3, 0)],
                ),
                ..ScenarioConfig::reduced()
            },
            ScenarioPreset::MultiVrm => ScenarioConfig {
                board: explicit_board(
                    5,
                    5,
                    vec![(2, 2), (2, 1)],
                    vec![(0, 4), (4, 4)],
                    vec![(0, 0), (4, 0)],
                ),
                frequency_samples: 80,
                // Two VRM phases: each leg is individually weaker than the
                // single nominal regulator.
                vrm_resistance: 1.5e-3,
                vrm_inductance: 22e-9,
                ..ScenarioConfig::default()
            },
            ScenarioPreset::BulkDecap => ScenarioConfig {
                // Bulk electrolytic-style decoupling, a weaker regulator and
                // a heavier die load on the reduced board.
                decap_capacitance: 47e-6,
                decap_esr: 8e-3,
                decap_esl: 1.2e-9,
                vrm_resistance: 2e-3,
                vrm_inductance: 40e-9,
                die_resistance: 50e-3,
                die_capacitance: 100e-9,
                ..ScenarioConfig::reduced()
            },
            ScenarioPreset::Minimal => ScenarioConfig {
                board: explicit_board(3, 3, vec![(1, 1)], vec![(0, 2)], vec![(2, 0)]),
                ..ScenarioConfig::reduced()
            },
        }
    }

    /// The sampling strategy this preset recommends for assessment and
    /// enforcement (see [`pim_passivity::grid`]).
    ///
    /// Every preset whose macromodels carry sharp resonances — which is all
    /// of them; sub-grid violation bands were the root cause of the Fig. 5
    /// anomaly — recommends [`pim_passivity::grid::Adaptive`]. The plain
    /// [`crate::flow::FlowConfig::default`] keeps the historical
    /// [`pim_passivity::grid::CrossingRefined`] for bit-compatibility;
    /// [`ScenarioPreset::flow_config`] applies the recommendation.
    pub fn default_sampling(self) -> std::sync::Arc<dyn pim_passivity::grid::SamplingStrategy> {
        std::sync::Arc::new(pim_passivity::grid::Adaptive::default())
    }

    /// The recommended flow configuration for this preset:
    /// [`crate::flow::FlowConfig::default`] with
    /// [`ScenarioPreset::default_sampling`] applied to the enforcement.
    pub fn flow_config(self) -> crate::flow::FlowConfig {
        let mut config = crate::flow::FlowConfig::default();
        config.enforcement.sampling = self.default_sampling();
        config
    }

    /// Builds the preset scenario.
    ///
    /// # Errors
    ///
    /// See [`StandardScenario::build`].
    pub fn build(self) -> Result<StandardScenario> {
        StandardScenario::build(self.config())
    }
}

/// The assembled reproduction scenario: the synthetic "field-solver" data set
/// and the nominal termination network.
#[derive(Debug, Clone)]
pub struct StandardScenario {
    /// The board the data was generated from.
    pub pdn: SyntheticPdn,
    /// Tabulated scattering parameters (the macromodeling input).
    pub data: NetworkData,
    /// The nominal termination scheme (decaps, VRM, die blocks, excitation).
    pub network: TerminationNetwork,
    /// The die port at which the target impedance is observed.
    pub observation_port: usize,
    /// The configuration the scenario was built from.
    pub config: ScenarioConfig,
}

impl StandardScenario {
    /// Builds the scenario: generates the board, solves it over the frequency
    /// grid, and assembles the termination network following the paper's
    /// Sec. IV (short/RL at the VRM port, vendor-style decap models at the
    /// board ports, series-RC die models carrying a total 1 A excitation
    /// split equally, observation at the first die port).
    ///
    /// # Errors
    ///
    /// Propagates board construction, solver and termination assembly
    /// failures.
    pub fn build(config: ScenarioConfig) -> Result<Self> {
        let pdn = build_board(&config.board)?;
        let grid =
            FrequencyGrid::log_space(config.f_min_hz, config.f_max_hz, config.frequency_samples)?
                .with_dc();
        let data = pdn.circuit.scattering_parameters(&grid, config.z_ref)?;

        let ports = pdn.ports();
        let mut terminations = vec![Termination::Open; ports];
        for &p in &pdn.die_ports {
            terminations[p] = Termination::DieBlock {
                resistance: config.die_resistance,
                capacitance: config.die_capacitance,
            };
        }
        for &p in &pdn.decap_ports {
            terminations[p] = Termination::Decap {
                capacitance: config.decap_capacitance,
                esr: config.decap_esr,
                esl: config.decap_esl,
            };
        }
        for &p in &pdn.vrm_ports {
            terminations[p] = Termination::SeriesRl {
                resistance: config.vrm_resistance,
                inductance: config.vrm_inductance,
            };
        }
        let observation_port = *pdn
            .die_ports
            .first()
            .ok_or_else(|| CoreError::InvalidInput("the board defines no die port".into()))?;
        let network = TerminationNetwork::new(terminations)?
            .with_excitation(pdn.die_ports.clone(), config.total_current)?;
        Ok(StandardScenario { pdn, data, network, observation_port, config })
    }

    /// Convenience constructor for the default (paper-sized) scenario.
    ///
    /// # Errors
    ///
    /// See [`StandardScenario::build`].
    pub fn standard() -> Result<Self> {
        StandardScenario::build(ScenarioConfig::default())
    }

    /// Convenience constructor for the reduced test-sized scenario.
    ///
    /// # Errors
    ///
    /// See [`StandardScenario::build`].
    pub fn reduced() -> Result<Self> {
        StandardScenario::build(ScenarioConfig::reduced())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_pdn::{analytic_sensitivity, target_impedance};

    #[test]
    fn reduced_scenario_builds_and_is_consistent() {
        let sc = StandardScenario::reduced().unwrap();
        assert_eq!(sc.data.ports(), sc.pdn.ports());
        assert_eq!(sc.network.ports(), sc.data.ports());
        assert_eq!(sc.data.len(), sc.config.frequency_samples + 1); // + DC
        assert_eq!((sc.data.grid().freqs_hz()[0]).to_bits(), 0.0f64.to_bits());
        assert!(sc.pdn.die_ports.contains(&sc.observation_port));
    }

    #[test]
    fn reduced_scenario_exhibits_the_paper_phenomenology() {
        let sc = StandardScenario::reduced().unwrap();
        // Nominal target impedance: milliohm-level at low frequency (VRM
        // path), rising toward high frequency.
        let zt = target_impedance(&sc.data, &sc.network, sc.observation_port).unwrap();
        let mags = zt.magnitudes();
        assert!(mags[1] < 0.1, "low-frequency target impedance {}", mags[1]);
        assert!(mags[mags.len() - 1] > mags[1]);
        // The sensitivity must fall by orders of magnitude from the low end
        // of the band to the high end (Fig. 3 of the paper).
        let xi = analytic_sensitivity(&sc.data, &sc.network, sc.observation_port).unwrap();
        let low = xi[1];
        let high = xi[xi.len() - 1];
        assert!(low > 30.0 * high, "sensitivity contrast too small: low {low}, high {high}");
    }

    #[test]
    fn presets_build_and_keep_distinct_names() {
        let mut names = std::collections::BTreeSet::new();
        for preset in ScenarioPreset::ALL {
            assert!(names.insert(preset.name()), "duplicate preset name {}", preset.name());
        }
        assert_eq!(ScenarioPreset::Reduced.config().board.nx, 4);
        assert_eq!(ScenarioPreset::Paper.config().board.nx, 6);
        // The cheap presets must assemble; Paper is covered by the default
        // ScenarioConfig tests (it is the same configuration).
        for preset in [
            ScenarioPreset::DenseDecap,
            ScenarioPreset::MultiVrm,
            ScenarioPreset::BulkDecap,
            ScenarioPreset::Minimal,
        ] {
            let sc = preset.build().unwrap();
            assert_eq!(sc.network.ports(), sc.data.ports());
            assert!(sc.pdn.die_ports.contains(&sc.observation_port));
        }
        assert_eq!(ScenarioPreset::DenseDecap.build().unwrap().pdn.decap_ports.len(), 3);
        assert_eq!(ScenarioPreset::MultiVrm.build().unwrap().pdn.vrm_ports.len(), 2);
        assert_eq!(ScenarioPreset::Minimal.build().unwrap().pdn.ports(), 3);
    }

    #[test]
    fn presets_route_through_the_generator_bit_identically() {
        // The historical hand-built literals, kept here as the reference:
        // `ScenarioPreset::config` now builds these boards through
        // `BoardGenerator`'s explicit path, and the routed specs (plus the
        // netlists built from them) must be bit-identical.
        let literals: [(ScenarioPreset, PdnBoardSpec); 6] = [
            (
                ScenarioPreset::Reduced,
                PdnBoardSpec {
                    nx: 4,
                    ny: 4,
                    die_ports: vec![(1, 1), (2, 2)],
                    decap_ports: vec![(0, 3)],
                    vrm_ports: vec![(3, 0)],
                    ..PdnBoardSpec::default()
                },
            ),
            (ScenarioPreset::Paper, PdnBoardSpec::default()),
            (
                ScenarioPreset::DenseDecap,
                PdnBoardSpec {
                    nx: 4,
                    ny: 4,
                    die_ports: vec![(1, 1), (2, 2)],
                    decap_ports: vec![(0, 3), (3, 3), (0, 0)],
                    vrm_ports: vec![(3, 0)],
                    ..PdnBoardSpec::default()
                },
            ),
            (
                ScenarioPreset::MultiVrm,
                PdnBoardSpec {
                    nx: 5,
                    ny: 5,
                    die_ports: vec![(2, 2), (2, 1)],
                    decap_ports: vec![(0, 4), (4, 4)],
                    vrm_ports: vec![(0, 0), (4, 0)],
                    ..PdnBoardSpec::default()
                },
            ),
            (
                ScenarioPreset::BulkDecap,
                PdnBoardSpec {
                    nx: 4,
                    ny: 4,
                    die_ports: vec![(1, 1), (2, 2)],
                    decap_ports: vec![(0, 3)],
                    vrm_ports: vec![(3, 0)],
                    ..PdnBoardSpec::default()
                },
            ),
            (
                ScenarioPreset::Minimal,
                PdnBoardSpec {
                    nx: 3,
                    ny: 3,
                    die_ports: vec![(1, 1)],
                    decap_ports: vec![(0, 2)],
                    vrm_ports: vec![(2, 0)],
                    ..PdnBoardSpec::default()
                },
            ),
        ];
        for (preset, literal) in literals {
            let routed = preset.config().board;
            assert_eq!(routed, literal, "{}: routed spec differs", preset.name());
            // The netlists agree element for element (f64 fields compared
            // exactly through Element's PartialEq).
            let a = build_board(&routed).unwrap();
            let b = build_board(&literal).unwrap();
            assert_eq!(a.circuit.elements(), b.circuit.elements(), "{}", preset.name());
            assert_eq!(a.circuit.node_count(), b.circuit.node_count(), "{}", preset.name());
            assert_eq!(
                (a.die_ports, a.decap_ports, a.vrm_ports),
                (b.die_ports, b.decap_ports, b.vrm_ports),
                "{}",
                preset.name()
            );
        }
    }

    #[test]
    fn presets_recommend_the_adaptive_sampling_strategy() {
        for preset in ScenarioPreset::ALL {
            assert_eq!(preset.default_sampling().name(), "adaptive");
            let config = preset.flow_config();
            assert_eq!(config.enforcement.sampling.name(), "adaptive");
            // Everything else stays at the paper-faithful defaults.
            let default = crate::flow::FlowConfig::default();
            assert_eq!(config.enforcement.sweep_points, default.enforcement.sweep_points);
            assert_eq!(config.vf.n_poles, default.vf.n_poles);
        }
        // The plain default keeps the historical strategy (bit-compat path).
        assert_eq!(
            crate::flow::FlowConfig::default().enforcement.sampling.name(),
            "crossing-refined"
        );
    }

    #[test]
    fn scenario_with_invalid_board_is_rejected() {
        let mut cfg = ScenarioConfig::reduced();
        cfg.board.die_ports = vec![];
        assert!(StandardScenario::build(cfg).is_err());
        let mut cfg = ScenarioConfig::reduced();
        cfg.frequency_samples = 1;
        assert!(StandardScenario::build(cfg).is_err());
    }
}
