//! The staged, observable macromodeling pipeline.
//!
//! [`Pipeline`] decomposes the monolithic flow of [`crate::flow::run_flow`]
//! into typed stages, each returning an owned artifact:
//!
//! ```text
//! Pipeline::from_scenario(..) / from_data(..)
//!     .sensitivity()       -> SensitivityArtifact   (Ξ_k, weights, Z_nominal)
//!     .fit(FitKind::..)    -> FitArtifact           (standard / weighted VF)
//!     .weighting_model()   -> SensitivityModel      (Ξ̃(s), eq. 15–17)
//!     .assess()            -> AssessmentArtifact    (Hamiltonian + sweep)
//!     .enforce(NormKind::..) -> EnforcementArtifact (perturbation loop)
//!     .report()            -> FlowReport            (everything, assembled)
//! ```
//!
//! Stages compute lazily and cache: calling [`Pipeline::enforce`] first runs
//! whatever prerequisites are missing (weighted fit, weighting model,
//! assessment), and re-requesting an artifact returns the cached value
//! without recomputation. A [`FlowObserver`] attached with
//! [`Pipeline::with_observer`] sees stage boundaries and every enforcement
//! iteration; observers never change numerics — the staged path is
//! bit-identical to the legacy one-shot [`crate::flow::run_flow`] wrapper.
//!
//! [`Pipeline::sweep`] is the batch entry point: it evaluates a list of
//! [`ScenarioPreset`]s end-to-end and returns one [`FlowReport`] per
//! scenario.

use crate::flow::{evaluate_model, FlowConfig, FlowReport};
use crate::observer::{FlowObserver, Stage, TraceObserver};
use crate::recovery::{
    AccuracyContract, ContractPolicy, RecoveryReport, RecoveryRung, RungAttempt,
};
use crate::scenario::{ScenarioPreset, StandardScenario};
use crate::weighting::{BlendedNorm, SensitivityWeightedNorm};
use crate::{CoreError, Result};
use pim_passivity::check::{assess_on, assess_with_sampling, PassivityReport};
use pim_passivity::enforce::{
    enforce_passivity, enforce_passivity_observed, EnforcementConfig, EnforcementIteration,
    EnforcementObserver, EnforcementOutcome,
};
use pim_passivity::grid::{FrequencyGrid, SamplingStrategy};
use pim_passivity::norm::{NormBuilder, NormKind, StandardNorm};
use pim_passivity::{NotConvergedDiagnostics, PassivityError};
use pim_pdn::sensitivity::sensitivity_to_weights;
use pim_pdn::{analytic_sensitivity, target_impedance, TargetImpedance, TerminationNetwork};
use pim_rfdata::{NetworkData, ParameterKind};
use pim_statespace::PoleResidueModel;
use pim_vectfit::{
    fit_magnitude, vector_fit, MagnitudeFitConfig, SensitivityModel, VfConfig, VfResult,
};

/// Which least-squares metric a fitting stage minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FitKind {
    /// Plain (unweighted) Vector Fitting — the conventional baseline.
    Standard,
    /// Sensitivity-weighted Vector Fitting (weights of eq. 6).
    Weighted,
}

/// Artifact of the sensitivity stage.
#[derive(Debug, Clone)]
pub struct SensitivityArtifact {
    /// Target impedance computed from the raw data (the reference curve).
    pub nominal_impedance: TargetImpedance,
    /// The sensitivity samples `Ξ_k` (eq. 5).
    pub sensitivity: Vec<f64>,
    /// The normalized fitting weights derived from the sensitivity (eq. 6).
    pub weights: Vec<f64>,
}

/// Artifact of a fitting stage.
#[derive(Debug, Clone)]
pub struct FitArtifact {
    /// Which metric the fit minimized.
    pub kind: FitKind,
    /// The Vector Fitting result (model + error summaries).
    pub result: VfResult,
}

/// Artifact of the passivity-assessment stage.
#[derive(Debug, Clone)]
pub struct AssessmentArtifact {
    /// Full assessment of the weighted macromodel on the data grid.
    pub report: PassivityReport,
    /// Worst singular value before any enforcement.
    pub sigma_max_before: f64,
    /// Upper edge of the data band in rad/s (the enforcement sweep limit).
    pub band_max_omega: f64,
}

/// Artifact of an enforcement stage.
#[derive(Debug, Clone)]
pub struct EnforcementArtifact {
    /// The norm family the enforcement minimized.
    pub norm: NormKind,
    /// The enforcement outcome; `None` when the assessed model was already
    /// passive and the loop never ran.
    pub outcome: Option<EnforcementOutcome>,
}

/// One entry of a [`Pipeline::sweep`] run.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The preset the scenario was built from.
    pub preset: ScenarioPreset,
    /// The full flow report for that scenario.
    pub report: FlowReport,
    /// The stage/enforcement-iteration trace recorded while this preset ran.
    ///
    /// Presets execute concurrently, so a single caller-supplied
    /// [`FlowObserver`] cannot receive their events without interleaving;
    /// instead every preset records into its own [`TraceObserver`] buffer
    /// and the buffers are merged at join, in preset order — events stay
    /// per-preset and in delivery order.
    pub trace: TraceObserver,
}

/// Forwards per-iteration enforcement events to a [`FlowObserver`], labeled
/// with the norm being enforced.
struct NormLabeled<'x> {
    inner: &'x mut dyn FlowObserver,
    norm: NormKind,
}

impl EnforcementObserver for NormLabeled<'_> {
    fn on_enforcement_iteration(&mut self, event: &EnforcementIteration) {
        self.inner.on_enforcement_iteration(self.norm, event);
    }
}

/// A pinned deterministic `NotConverged` failure: the loop would only
/// repeat it, so replays are served from this cache. The diagnostics are
/// enriched at cache time with the best-so-far model's own audit `σ_max`
/// (computed once, on the contract audit grid), so a replayed failure is as
/// debuggable as the original.
struct FailedEnforcement {
    kind: NormKind,
    iterations: usize,
    sigma_max: f64,
    best: Option<Box<PoleResidueModel>>,
    diagnostics: Box<NotConvergedDiagnostics>,
}

/// The staged macromodeling pipeline (see the module docs for the stage
/// graph).
pub struct Pipeline<'a> {
    data: &'a NetworkData,
    network: &'a TerminationNetwork,
    observation_port: usize,
    config: FlowConfig,
    observer: Option<&'a mut dyn FlowObserver>,
    sensitivity: Option<SensitivityArtifact>,
    standard_fit: Option<VfResult>,
    weighted_fit: Option<VfResult>,
    weighting: Option<SensitivityModel>,
    assessment: Option<AssessmentArtifact>,
    enforcements: Vec<(NormKind, EnforcementArtifact)>,
    failed_enforcements: Vec<FailedEnforcement>,
    /// Cached recovery-ladder outcome: `Some((report, Some(outcome)))` when
    /// a rung delivered, `Some((report, None))` when the ladder was
    /// exhausted, `None` when it never engaged. Deterministic, so it is
    /// never re-run.
    recovery: Option<(RecoveryReport, Option<EnforcementOutcome>)>,
}

impl<'a> Pipeline<'a> {
    /// Creates a pipeline over tabulated scattering data and a termination
    /// scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the data is not in the
    /// scattering representation.
    pub fn from_data(
        data: &'a NetworkData,
        network: &'a TerminationNetwork,
        observation_port: usize,
        config: FlowConfig,
    ) -> Result<Self> {
        if data.kind() != ParameterKind::Scattering {
            return Err(CoreError::InvalidInput("the flow requires scattering data".into()));
        }
        Ok(Pipeline {
            data,
            network,
            observation_port,
            config,
            observer: None,
            sensitivity: None,
            standard_fit: None,
            weighted_fit: None,
            weighting: None,
            assessment: None,
            enforcements: Vec::new(),
            failed_enforcements: Vec::new(),
            recovery: None,
        })
    }

    /// Creates a pipeline over an assembled [`StandardScenario`].
    ///
    /// # Errors
    ///
    /// See [`Pipeline::from_data`].
    pub fn from_scenario(scenario: &'a StandardScenario, config: FlowConfig) -> Result<Self> {
        Pipeline::from_data(&scenario.data, &scenario.network, scenario.observation_port, config)
    }

    /// Attaches an observer; stage boundaries and enforcement iterations are
    /// reported to it. Observation never changes numerics.
    #[must_use]
    pub fn with_observer(mut self, observer: &'a mut dyn FlowObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builder: replaces the sampling strategy behind the assessment stage
    /// and all enforcement grids (working sweep, convergence double-check,
    /// final verification). The default is
    /// [`pim_passivity::grid::CrossingRefined`], which reproduces the
    /// historical grids bit for bit; switch to
    /// [`pim_passivity::grid::Adaptive`] to chase violation bands narrower
    /// than the grid spacing.
    ///
    /// Cached assessment and enforcement artifacts are invalidated: they
    /// were computed under the previous strategy.
    #[must_use]
    pub fn sampling(mut self, strategy: impl SamplingStrategy + 'static) -> Self {
        self.config.enforcement = self.config.enforcement.clone().sampling(strategy);
        self.assessment = None;
        self.enforcements.clear();
        self.failed_enforcements.clear();
        self.recovery = None;
        self
    }

    /// The flow configuration this pipeline runs with.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    fn stage_start(&mut self, stage: Stage) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_stage_start(stage);
        }
    }

    fn stage_done(&mut self, stage: Stage) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_stage_done(stage);
        }
    }

    fn stage_failed(&mut self, stage: Stage) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_stage_failed(stage);
        }
    }

    /// Sensitivity stage: nominal target impedance, sensitivity samples
    /// `Ξ_k` and normalized fitting weights.
    ///
    /// # Errors
    ///
    /// Propagates impedance and sensitivity computation failures.
    pub fn sensitivity(&mut self) -> Result<SensitivityArtifact> {
        if self.sensitivity.is_none() {
            self.stage_start(Stage::Sensitivity);
            let nominal_impedance =
                target_impedance(self.data, self.network, self.observation_port)?;
            let sensitivity = analytic_sensitivity(self.data, self.network, self.observation_port)?;
            let weights = sensitivity_to_weights(&sensitivity, self.config.weight_floor)?;
            self.sensitivity =
                Some(SensitivityArtifact { nominal_impedance, sensitivity, weights });
            self.stage_done(Stage::Sensitivity);
        }
        Ok(self.sensitivity.clone().expect("sensitivity artifact just cached"))
    }

    /// Fitting stage: Vector Fitting of the scattering data under the given
    /// metric. The weighted fit pulls the sensitivity stage in on demand.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures (and, for [`FitKind::Weighted`], failures
    /// of the sensitivity stage).
    pub fn fit(&mut self, kind: FitKind) -> Result<FitArtifact> {
        let cached = match kind {
            FitKind::Standard => self.standard_fit.is_some(),
            FitKind::Weighted => self.weighted_fit.is_some(),
        };
        if !cached {
            let weights = match kind {
                FitKind::Standard => None,
                FitKind::Weighted => Some(self.sensitivity()?.weights),
            };
            self.stage_start(Stage::Fit(kind));
            let result = vector_fit(self.data, weights.as_deref(), &self.config.vf)?;
            match kind {
                FitKind::Standard => self.standard_fit = Some(result),
                FitKind::Weighted => self.weighted_fit = Some(result),
            }
            self.stage_done(Stage::Fit(kind));
        }
        let result = match kind {
            FitKind::Standard => self.standard_fit.clone(),
            FitKind::Weighted => self.weighted_fit.clone(),
        };
        Ok(FitArtifact { kind, result: result.expect("fit artifact just cached") })
    }

    /// Weighting-model stage: Magnitude Vector Fitting of the sensitivity
    /// samples into the stable minimum-phase model `Ξ̃(s)` (eq. 15–17). The
    /// DC point is skipped — `ω = 0` is degenerate under the `x = ω²`
    /// mapping.
    ///
    /// # Errors
    ///
    /// Propagates magnitude-fit failures (and sensitivity-stage failures).
    pub fn weighting_model(&mut self) -> Result<SensitivityModel> {
        if self.weighting.is_none() {
            let sens = self.sensitivity()?;
            self.stage_start(Stage::WeightingModel);
            let omegas = self.data.grid().omegas();
            let (fit_omegas, fit_xi): (Vec<f64>, Vec<f64>) = omegas
                .iter()
                .zip(&sens.sensitivity)
                .filter(|(&w, _)| w > 0.0)
                .map(|(&w, &x)| (w, x))
                .unzip();
            let model = fit_magnitude(
                &fit_omegas,
                &fit_xi,
                &MagnitudeFitConfig { order: self.config.sensitivity_order, ..Default::default() },
            )?;
            self.weighting = Some(model);
            self.stage_done(Stage::WeightingModel);
        }
        Ok(self.weighting.clone().expect("weighting model just cached"))
    }

    /// Assessment stage: Hamiltonian test plus singular-value sweep of the
    /// weighted macromodel on the data grid, refined by the configured
    /// [`SamplingStrategy`] (see [`Pipeline::sampling`]).
    ///
    /// # Errors
    ///
    /// Propagates assessment failures (and weighted-fit failures).
    pub fn assess(&mut self) -> Result<AssessmentArtifact> {
        if self.assessment.is_none() {
            let fit = self.fit(FitKind::Weighted)?;
            self.stage_start(Stage::Assessment);
            let omegas = self.data.grid().omegas();
            let band_max_omega = self.data.grid().max_omega();
            let report = assess_with_sampling(
                pim_runtime::global(),
                &fit.result.model,
                &FrequencyGrid::from_omegas(&omegas),
                self.config.enforcement.sampling.as_ref(),
            )?;
            let sigma_max_before = report.sigma_max;
            self.assessment = Some(AssessmentArtifact { report, sigma_max_before, band_max_omega });
            self.stage_done(Stage::Assessment);
        }
        Ok(self.assessment.clone().expect("assessment just cached"))
    }

    /// Enforcement stage under one of the built-in norms.
    ///
    /// Returns an artifact with `outcome: None` when the assessed model is
    /// already passive. For an application-defined norm use
    /// [`Pipeline::enforce_with`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInput`] for [`NormKind::Custom`]; otherwise
    /// propagates norm-construction and enforcement failures (including
    /// [`PassivityError::NotConverged`] when the iteration budget runs out).
    pub fn enforce(&mut self, kind: NormKind) -> Result<EnforcementArtifact> {
        match kind {
            NormKind::Standard => self.enforce_with(&StandardNorm),
            NormKind::SensitivityWeighted => {
                // Build the weighting model first so the builder can capture
                // it; cached after the first call.
                let weighting = self.weighting_model()?;
                self.enforce_with(&SensitivityWeightedNorm::new(weighting))
            }
            NormKind::Blended => {
                let weighting = self.weighting_model()?;
                let alpha = self.config.recovery.blend_alpha;
                self.enforce_with(&BlendedNorm::new(weighting, alpha))
            }
            NormKind::Custom(name) => Err(CoreError::InvalidInput(format!(
                "custom norm '{name}' has no built-in builder; use Pipeline::enforce_with"
            ))),
        }
    }

    /// Enforcement stage under a caller-supplied [`NormBuilder`] — the
    /// extension point for hybrid or experimental norms.
    ///
    /// Successful artifacts are cached per [`NormKind`], and so are
    /// [`PassivityError::NotConverged`] failures (the loop is deterministic,
    /// so a re-run could only repeat the failure): re-enforcing with the
    /// same kind returns the cached result without re-running the loop or
    /// re-emitting observer events. Other errors are not cached.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::enforce`].
    pub fn enforce_with(&mut self, builder: &dyn NormBuilder) -> Result<EnforcementArtifact> {
        let kind = builder.kind();
        if let Some((_, artifact)) = self.enforcements.iter().find(|(k, _)| *k == kind) {
            return Ok(artifact.clone());
        }
        if let Some(failed) = self.failed_enforcements.iter().find(|f| f.kind == kind) {
            return Err(CoreError::Passivity(PassivityError::NotConverged {
                iterations: failed.iterations,
                sigma_max: failed.sigma_max,
                best: failed.best.clone(),
                diagnostics: failed.diagnostics.clone(),
            }));
        }
        let assessment = self.assess()?;
        if assessment.report.passive {
            let artifact = EnforcementArtifact { norm: kind, outcome: None };
            self.enforcements.push((kind, artifact.clone()));
            return Ok(artifact);
        }
        let norm = builder
            .build(&self.weighted_fit.as_ref().expect("assess caches the weighted fit").model)?;
        self.stage_start(Stage::Enforcement(kind));
        // Split-borrow: the model lives in `self.weighted_fit`, the observer
        // in `self.observer`; the field borrows are disjoint.
        let model = &self.weighted_fit.as_ref().expect("cached above").model;
        let result = match self.observer.as_deref_mut() {
            Some(inner) => {
                let mut labeled = NormLabeled { inner, norm: kind };
                enforce_passivity_observed(
                    model,
                    &norm,
                    assessment.band_max_omega,
                    &self.config.enforcement,
                    &mut labeled,
                )
            }
            None => {
                enforce_passivity(model, &norm, assessment.band_max_omega, &self.config.enforcement)
            }
        };
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => {
                // Tell the observer the iterations it saw belong to a failed
                // attempt, and pin deterministic non-convergence so a retry
                // does not re-run the loop (and double the recorded trace).
                self.stage_failed(Stage::Enforcement(kind));
                if let PassivityError::NotConverged {
                    iterations,
                    sigma_max,
                    ref best,
                    ref diagnostics,
                } = e
                {
                    // Audit the best-so-far model once at cache time, so
                    // both this error and every replay expose its own
                    // audit-grid sigma_max instead of the loop-sweep value.
                    let mut diagnostics = diagnostics.clone();
                    if let Some(best_model) = best.as_deref() {
                        if let Ok(audit) = assess_on(best_model, &self.audit_grid()) {
                            diagnostics.best_sigma_max = Some(audit.sigma_max);
                        }
                    }
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_enforcement_diagnostics(kind, &diagnostics);
                    }
                    self.failed_enforcements.push(FailedEnforcement {
                        kind,
                        iterations,
                        sigma_max,
                        best: best.clone(),
                        diagnostics: diagnostics.clone(),
                    });
                    return Err(CoreError::Passivity(PassivityError::NotConverged {
                        iterations,
                        sigma_max,
                        best: best.clone(),
                        diagnostics,
                    }));
                }
                return Err(e.into());
            }
        };
        self.stage_done(Stage::Enforcement(kind));
        let artifact = EnforcementArtifact { norm: kind, outcome: Some(outcome) };
        self.enforcements.push((kind, artifact.clone()));
        Ok(artifact)
    }

    /// The dense fixed-log audit grid of the accuracy contract:
    /// `sweep_points × audit_multiplier` points up to the data band edge —
    /// frequencies the enforcement never constrained (the corpus
    /// certification gate sweeps the identical grid).
    fn audit_grid(&self) -> FrequencyGrid {
        FrequencyGrid::enforcement_log(
            self.data.grid().max_omega(),
            self.config.enforcement.sweep_points * self.config.contract.audit_multiplier,
        )
    }

    /// The weighted enforcement with the recovery ladder behind it: on a
    /// [`PassivityError::NotConverged`] primary failure (and with
    /// `config.recovery.enabled`) the pipeline retries under the escalation
    /// policy of [`crate::recovery`] — regularized norm, blended norm,
    /// reduced order — and returns the first rung that delivers, together
    /// with the [`RecoveryReport`] recording every attempt.
    ///
    /// Returns `(outcome, None)` on the happy path (the ladder never
    /// engaged; `outcome` is `None` when the model was already passive).
    ///
    /// # Errors
    ///
    /// When the ladder is disabled or exhausted, the primary
    /// `NotConverged` failure (with its cache-time-audited diagnostics) is
    /// returned; non-deterministic rung failures propagate as-is.
    pub fn enforce_recovered(
        &mut self,
    ) -> Result<(Option<EnforcementOutcome>, Option<RecoveryReport>)> {
        if let Some((report, outcome)) = self.recovery.clone() {
            return match outcome {
                Some(out) => Ok((Some(out), Some(report))),
                // Exhausted ladder: replay the pinned primary failure.
                None => Err(self
                    .enforce(NormKind::SensitivityWeighted)
                    .expect_err("an exhausted ladder implies a cached primary failure")),
            };
        }
        match self.enforce(NormKind::SensitivityWeighted) {
            Ok(artifact) => Ok((artifact.outcome, None)),
            Err(CoreError::Passivity(PassivityError::NotConverged { .. }))
                if self.config.recovery.enabled =>
            {
                let (report, outcome) = self.run_recovery_ladder()?;
                self.recovery = Some((report.clone(), outcome.clone()));
                match outcome {
                    Some(out) => Ok((Some(out), Some(report))),
                    None => Err(self
                        .enforce(NormKind::SensitivityWeighted)
                        .expect_err("the primary failure is cached")),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Climbs the recovery ladder: regularized → blended → reduced order.
    /// Each rung runs the full enforcement loop under a tightened adaptive
    /// QP damping cap and an extended iteration budget; the first passive
    /// model wins. Deterministic — the caller caches the result.
    fn run_recovery_ladder(&mut self) -> Result<(RecoveryReport, Option<EnforcementOutcome>)> {
        let rc = self.config.recovery.clone();
        let band = self.assess()?.band_max_omega;
        let weighting = self.weighting_model()?;
        let base_model =
            self.weighted_fit.as_ref().expect("assess caches the weighted fit").model.clone();
        let mut cfg: EnforcementConfig = self.config.enforcement.clone();
        cfg.max_iterations += rc.extra_iterations;
        cfg.qp.max_condition = cfg.qp.max_condition.min(rc.max_condition);

        let reduced_order =
            self.config.vf.n_poles.saturating_sub(rc.order_reduction).max(rc.min_order);
        let mut rungs = vec![RecoveryRung::Regularized, RecoveryRung::Blended];
        if reduced_order < self.config.vf.n_poles {
            rungs.push(RecoveryRung::ReducedOrder);
        }

        let mut attempts = Vec::new();
        for rung in rungs {
            // Materialize the rung's model and norm.
            let (label, model, norm) = match rung {
                RecoveryRung::Primary => unreachable!("the primary pass is not a ladder rung"),
                RecoveryRung::Regularized => {
                    let norm = SensitivityWeightedNorm::new(weighting.clone())
                        .build(&base_model)
                        .map_err(CoreError::Passivity)?;
                    (NormKind::SensitivityWeighted, base_model.clone(), norm)
                }
                RecoveryRung::Blended => {
                    let norm = BlendedNorm::new(weighting.clone(), rc.blend_alpha)
                        .build(&base_model)
                        .map_err(CoreError::Passivity)?;
                    (NormKind::Blended, base_model.clone(), norm)
                }
                RecoveryRung::ReducedOrder => {
                    let weights = self.sensitivity()?.weights;
                    let vf = VfConfig { n_poles: reduced_order, ..self.config.vf.clone() };
                    let fit = vector_fit(self.data, Some(&weights), &vf)?;
                    let norm = SensitivityWeightedNorm::new(weighting.clone())
                        .build(&fit.model)
                        .map_err(CoreError::Passivity)?;
                    (NormKind::SensitivityWeighted, fit.model, norm)
                }
            };
            self.stage_start(Stage::Recovery(rung));
            let result = match self.observer.as_deref_mut() {
                Some(inner) => {
                    let mut labeled = NormLabeled { inner, norm: label };
                    enforce_passivity_observed(&model, &norm, band, &cfg, &mut labeled)
                }
                None => enforce_passivity(&model, &norm, band, &cfg),
            };
            match result {
                Ok(outcome) => {
                    self.stage_done(Stage::Recovery(rung));
                    attempts.push(RungAttempt {
                        rung,
                        converged: true,
                        iterations: outcome.iterations,
                        sigma_max: outcome.report.sigma_max,
                        detail: format!(
                            "converged in {} iteration(s), sigma_max {:.9}",
                            outcome.iterations, outcome.report.sigma_max
                        ),
                    });
                    return Ok((RecoveryReport { attempts, delivered: Some(rung) }, Some(outcome)));
                }
                Err(PassivityError::NotConverged {
                    iterations, sigma_max, diagnostics, ..
                }) => {
                    self.stage_failed(Stage::Recovery(rung));
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_enforcement_diagnostics(label, &diagnostics);
                    }
                    attempts.push(RungAttempt {
                        rung,
                        converged: false,
                        iterations,
                        sigma_max,
                        detail: diagnostics.to_string(),
                    });
                }
                Err(e) => {
                    self.stage_failed(Stage::Recovery(rung));
                    return Err(e.into());
                }
            }
        }
        Ok((RecoveryReport { attempts, delivered: None }, None))
    }

    /// Evaluates an arbitrary macromodel against this pipeline's data and
    /// nominal impedance (scattering RMS error + target-impedance error).
    ///
    /// # Errors
    ///
    /// Propagates sampling and impedance computation failures.
    pub fn evaluate(
        &mut self,
        model: &pim_statespace::PoleResidueModel,
    ) -> Result<crate::flow::ModelEvaluation> {
        let sens = self.sensitivity()?;
        evaluate_model(
            model,
            self.data,
            self.network,
            self.observation_port,
            &sens.nominal_impedance,
        )
    }

    /// Runs every remaining stage and assembles the full [`FlowReport`].
    ///
    /// The stage order, the enforcement policy (the weighted enforcement
    /// must succeed; the standard baseline tolerates
    /// [`PassivityError::NotConverged`]) and the resulting numbers are
    /// identical to the legacy [`crate::flow::run_flow`].
    ///
    /// # Errors
    ///
    /// Propagates failures of the individual stages.
    pub fn report(&mut self) -> Result<FlowReport> {
        let sens = self.sensitivity()?;
        let standard_fit = self.fit(FitKind::Standard)?.result;
        let weighted_fit = self.fit(FitKind::Weighted)?.result;
        let sensitivity_model = self.weighting_model()?;
        let assessment = self.assess()?;

        let (weighted_enforcement, recovery) = self.enforce_recovered()?;
        let standard_enforcement =
            if !assessment.report.passive && self.config.run_standard_enforcement {
                // The baseline is only a comparison curve: a NotConverged failure
                // is reported as absent rather than failing the flow.
                match self.enforce(NormKind::Standard) {
                    Ok(artifact) => artifact.outcome,
                    Err(CoreError::Passivity(PassivityError::NotConverged { .. })) => None,
                    Err(e) => return Err(e),
                }
            } else {
                None
            };

        self.stage_start(Stage::Evaluation);
        let standard_model_eval = evaluate_model(
            &standard_fit.model,
            self.data,
            self.network,
            self.observation_port,
            &sens.nominal_impedance,
        )?;
        let weighted_model_eval = evaluate_model(
            &weighted_fit.model,
            self.data,
            self.network,
            self.observation_port,
            &sens.nominal_impedance,
        )?;
        // The final passive model is borrowed, not cloned: enforcement
        // artifacts are owned values already.
        let weighted_passive_model = match &weighted_enforcement {
            Some(out) => &out.model,
            None => &weighted_fit.model,
        };
        let weighted_passive_eval = evaluate_model(
            weighted_passive_model,
            self.data,
            self.network,
            self.observation_port,
            &sens.nominal_impedance,
        )?;
        let standard_passive_eval = match &standard_enforcement {
            Some(out) => Some(evaluate_model(
                &out.model,
                self.data,
                self.network,
                self.observation_port,
                &sens.nominal_impedance,
            )?),
            None => None,
        };
        self.stage_done(Stage::Evaluation);

        // The accuracy contract: audit the delivered model on a dense
        // fixed-log grid it was never constrained on, and pair the result
        // with the target-impedance error and the rung that delivered.
        let contract = match self.config.contract.policy {
            ContractPolicy::Off => None,
            ContractPolicy::Report | ContractPolicy::Refuse => {
                let audit_grid = self.audit_grid();
                let audit =
                    assess_on(weighted_passive_model, &audit_grid).map_err(CoreError::Passivity)?;
                Some(AccuracyContract {
                    rung: recovery
                        .as_ref()
                        .and_then(|r| r.delivered)
                        .unwrap_or(RecoveryRung::Primary),
                    audit_sigma_max: audit.sigma_max,
                    audit_points: audit_grid.len(),
                    sigma_tolerance: self.config.contract.sigma_tolerance,
                    impedance_error: weighted_passive_eval.impedance_relative_error,
                    max_impedance_error: self.config.contract.max_impedance_error,
                })
            }
        };
        if self.config.contract.policy == ContractPolicy::Refuse {
            if let Some(c) = &contract {
                if !c.within_envelope() {
                    return Err(CoreError::ContractViolation(Box::new(c.clone())));
                }
            }
        }

        Ok(FlowReport {
            nominal_impedance: sens.nominal_impedance,
            sensitivity: sens.sensitivity,
            weights: sens.weights,
            sensitivity_model,
            standard_fit,
            weighted_fit,
            sigma_max_before: assessment.sigma_max_before,
            weighted_enforcement,
            standard_enforcement,
            standard_model_eval,
            weighted_model_eval,
            weighted_passive_eval,
            standard_passive_eval,
            recovery,
            contract,
        })
    }

    /// Batch runner: builds every preset scenario and runs the full flow on
    /// each, returning one [`FlowReport`] (plus its recorded trace) per
    /// preset.
    ///
    /// Presets run **concurrently** on the [`pim_runtime::global`] pool —
    /// each produces owned artifacts, so the only shared state is the
    /// configuration. Entries are collected by preset index and every preset
    /// records observer events into its own buffer (see
    /// [`SweepEntry::trace`]), which makes the parallel sweep bit-identical
    /// to the serial one for every `PIM_THREADS` (`1` forces the serial
    /// path); the integration suite pins this at the float-bit level.
    ///
    /// # Errors
    ///
    /// Propagates scenario-construction and flow failures of any preset;
    /// when several presets fail, the error of the lowest preset index is
    /// reported regardless of scheduling order.
    pub fn sweep(presets: &[ScenarioPreset], config: &FlowConfig) -> Result<Vec<SweepEntry>> {
        Pipeline::sweep_with(pim_runtime::global(), presets, config)
    }

    /// [`Pipeline::sweep`] on an explicit [`pim_runtime::ThreadPool`] (the
    /// determinism test suites compare pools of different sizes bit for
    /// bit).
    ///
    /// # Errors
    ///
    /// See [`Pipeline::sweep`].
    pub fn sweep_with(
        pool: &pim_runtime::ThreadPool,
        presets: &[ScenarioPreset],
        config: &FlowConfig,
    ) -> Result<Vec<SweepEntry>> {
        pool.par_map(presets, |_, &preset| -> Result<SweepEntry> {
            let scenario = preset.build()?;
            let mut trace = TraceObserver::new();
            let report = Pipeline::from_scenario(&scenario, config.clone())?
                .with_observer(&mut trace)
                .report()?;
            Ok(SweepEntry { preset, report, trace })
        })
        .into_iter()
        .collect()
    }
}
