//! Observation hooks for the staged macromodeling pipeline.
//!
//! A [`FlowObserver`] attached to a [`crate::pipeline::Pipeline`] receives a
//! callback when each stage starts and finishes, plus one event per outer
//! passivity-enforcement iteration (forwarded from
//! [`pim_passivity::enforce::EnforcementObserver`], labeled with the
//! [`NormKind`] being enforced). Observers are purely diagnostic: running a
//! pipeline with or without one produces bit-identical results.
//!
//! [`TraceObserver`] is the ready-made recording observer behind the
//! `iterations_report` diagnostic of the Fig. 5 anomaly investigation: it
//! keeps the full stage log and the weighted-vs-standard per-iteration
//! `σ_max` / perturbation-norm traces.

use crate::pipeline::FitKind;
use crate::recovery::RecoveryRung;
use pim_passivity::enforce::EnforcementIteration;
use pim_passivity::{NormKind, NotConvergedDiagnostics};
use std::fmt;

/// One stage of the macromodeling pipeline, as reported to observers.
///
/// The derived order is declaration order; it exists so stages can key
/// deterministic ordered containers, not to imply an execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Nominal target impedance, sensitivity samples and fitting weights.
    Sensitivity,
    /// Vector Fitting of the scattering data (standard or weighted metric).
    Fit(FitKind),
    /// Magnitude Vector Fitting of the sensitivity into `Ξ̃(s)`.
    WeightingModel,
    /// Passivity assessment of the weighted macromodel.
    Assessment,
    /// Iterative passivity enforcement under the named norm.
    Enforcement(NormKind),
    /// One rung of the recovery ladder retrying a diverged weighted
    /// enforcement (see [`crate::recovery`]).
    Recovery(RecoveryRung),
    /// Accuracy evaluation of the fitted / enforced models.
    Evaluation,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Sensitivity => f.write_str("sensitivity"),
            Stage::Fit(FitKind::Standard) => f.write_str("fit(standard)"),
            Stage::Fit(FitKind::Weighted) => f.write_str("fit(weighted)"),
            Stage::WeightingModel => f.write_str("weighting-model"),
            Stage::Assessment => f.write_str("assessment"),
            Stage::Enforcement(kind) => write!(f, "enforcement({kind})"),
            Stage::Recovery(rung) => write!(f, "recovery({rung})"),
            Stage::Evaluation => f.write_str("evaluation"),
        }
    }
}

/// Observer of a staged pipeline run.
///
/// All methods have no-op defaults, so an implementation only overrides the
/// events it cares about. The hooks are observational only — they cannot
/// change what the pipeline computes.
pub trait FlowObserver {
    /// A stage is about to run (not called when its cached artifact is
    /// reused).
    fn on_stage_start(&mut self, stage: Stage) {
        let _ = stage;
    }

    /// A stage finished and its artifact is cached.
    fn on_stage_done(&mut self, stage: Stage) {
        let _ = stage;
    }

    /// A stage that had started failed with an error (e.g. a non-converging
    /// enforcement). Events already delivered for the stage — such as
    /// enforcement iterations — belong to the failed attempt.
    fn on_stage_failed(&mut self, stage: Stage) {
        let _ = stage;
    }

    /// One outer enforcement iteration completed under the given norm.
    fn on_enforcement_iteration(&mut self, norm: NormKind, event: &EnforcementIteration) {
        let _ = (norm, event);
    }

    /// An enforcement attempt (primary or recovery rung) failed with
    /// `NotConverged`; the diagnostics carry the guard trigger, the step
    /// control state and the `σ_max` trajectory tail, so failures are
    /// debuggable without a rerun.
    fn on_enforcement_diagnostics(
        &mut self,
        norm: NormKind,
        diagnostics: &NotConvergedDiagnostics,
    ) {
        let _ = (norm, diagnostics);
    }
}

/// A recording [`FlowObserver`]: keeps the stage log and the per-norm
/// enforcement iteration traces.
///
/// This replaces the ad-hoc `iterations_report` diagnostic the quickstart
/// example used to assemble from `sigma_max_history`: the traces additionally
/// carry the per-iteration perturbation-norm increment, the backtracking step
/// and the constraint count — the quantities the open Fig. 5 anomaly
/// investigation needs to compare the weighted and the standard loop.
#[derive(Debug, Clone, Default)]
pub struct TraceObserver {
    /// Stages that started, in order.
    pub started: Vec<Stage>,
    /// Stages that completed, in order.
    pub completed: Vec<Stage>,
    /// Stages that started but failed, in order. An enforcement trace whose
    /// stage appears here belongs to a failed (e.g. non-converged) run.
    pub failed: Vec<Stage>,
    /// Every enforcement iteration, labeled with the norm that produced it.
    pub iterations: Vec<(NormKind, EnforcementIteration)>,
    /// Post-mortems of failed enforcement attempts (primary and recovery
    /// rungs), labeled with the norm that diverged.
    pub diagnostics: Vec<(NormKind, NotConvergedDiagnostics)>,
}

impl TraceObserver {
    /// An empty trace.
    pub fn new() -> Self {
        TraceObserver::default()
    }

    /// The iteration trace recorded under the given norm, in order.
    pub fn trace(&self, norm: NormKind) -> Vec<&EnforcementIteration> {
        self.iterations.iter().filter(|(k, _)| *k == norm).map(|(_, ev)| ev).collect()
    }

    /// The working-grid size of every iteration under the given norm, in
    /// order — the per-iteration grid-growth trajectory. Near the fixed
    /// baseline (± the iterate's crossing-derived points) under the default
    /// `CrossingRefined` sampling; substantially larger when the `Adaptive`
    /// strategy bisects its way toward sub-grid violation bands.
    pub fn grid_growth(&self, norm: NormKind) -> Vec<usize> {
        self.trace(norm).iter().map(|ev| ev.grid_points).collect()
    }
}

impl FlowObserver for TraceObserver {
    fn on_stage_start(&mut self, stage: Stage) {
        self.started.push(stage);
    }

    fn on_stage_done(&mut self, stage: Stage) {
        self.completed.push(stage);
    }

    fn on_stage_failed(&mut self, stage: Stage) {
        self.failed.push(stage);
    }

    fn on_enforcement_iteration(&mut self, norm: NormKind, event: &EnforcementIteration) {
        self.iterations.push((norm, *event));
    }

    fn on_enforcement_diagnostics(
        &mut self,
        norm: NormKind,
        diagnostics: &NotConvergedDiagnostics,
    ) {
        self.diagnostics.push((norm, diagnostics.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_display_distinctly() {
        let stages = [
            Stage::Sensitivity,
            Stage::Fit(FitKind::Standard),
            Stage::Fit(FitKind::Weighted),
            Stage::WeightingModel,
            Stage::Assessment,
            Stage::Enforcement(NormKind::Standard),
            Stage::Enforcement(NormKind::SensitivityWeighted),
            Stage::Enforcement(NormKind::Blended),
            Stage::Recovery(RecoveryRung::Regularized),
            Stage::Recovery(RecoveryRung::Blended),
            Stage::Recovery(RecoveryRung::ReducedOrder),
            Stage::Evaluation,
        ];
        let labels: Vec<String> = stages.iter().map(|s| s.to_string()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn trace_observer_records_and_filters() {
        let mut obs = TraceObserver::new();
        obs.on_stage_start(Stage::Sensitivity);
        obs.on_stage_done(Stage::Sensitivity);
        let ev = EnforcementIteration {
            iteration: 1,
            sigma_before: 1.2,
            sigma_after: 1.05,
            step: 1.0,
            norm_increment: 3.0,
            constraints: 4,
            grid_points: 201,
        };
        obs.on_enforcement_iteration(NormKind::SensitivityWeighted, &ev);
        obs.on_enforcement_iteration(NormKind::Standard, &ev);
        obs.on_stage_failed(Stage::Enforcement(NormKind::Standard));
        let diag = NotConvergedDiagnostics {
            guard_triggered: true,
            bottomed_out: 3,
            last_step: 0.0625,
            sigma_tail: vec![1.2, 1.3],
            ..Default::default()
        };
        obs.on_enforcement_diagnostics(NormKind::Standard, &diag);
        assert_eq!(obs.started, vec![Stage::Sensitivity]);
        assert_eq!(obs.completed, vec![Stage::Sensitivity]);
        assert_eq!(obs.failed, vec![Stage::Enforcement(NormKind::Standard)]);
        assert_eq!(obs.trace(NormKind::SensitivityWeighted).len(), 1);
        assert_eq!(obs.trace(NormKind::Standard).len(), 1);
        assert_eq!(obs.trace(NormKind::Custom("x")).len(), 0);
        assert_eq!(obs.grid_growth(NormKind::Standard), vec![201]);
        assert!(obs.grid_growth(NormKind::Custom("x")).is_empty());
        assert_eq!(obs.diagnostics.len(), 1);
        assert_eq!(obs.diagnostics[0].0, NormKind::Standard);
        assert_eq!(obs.diagnostics[0].1, diag);
    }
}
