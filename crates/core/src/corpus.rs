//! The stress-corpus harness: certification-gated batch runs over generated
//! boards, with automatic minimization of failing scenarios.
//!
//! [`Corpus::run`] pushes every seed of a seed list through the full
//! fit → assess → enforce flow on a board drawn by
//! [`pim_circuit::generator::BoardGenerator`], then classifies the outcome
//! against the certification gate (the downstream gates decide pass/fail —
//! failures must produce actionable artifacts, not log lines):
//!
//! * **Certified** — the flow completed, the delivered model holds
//!   `σ_max ≤ 1 + tol` on an `audit_multiplier`× fixed-log audit grid it was
//!   never constrained on, and the weighted enforcement beats the standard
//!   baseline on target-impedance error;
//! * **Adverse** — the flow completed but a gate failed (audit violation, or
//!   weighted no better than standard): the paper's method underperforms in
//!   this regime;
//! * **Diverged** — the weighted enforcement returned
//!   [`PassivityError::NotConverged`] (divergence guard or budget), carrying
//!   the best-so-far model;
//! * **Failed** — any other error (fit breakdown, solver failure, …).
//!
//! For any non-Certified case, [`minimize`] shrinks the scenario — grid
//! size, decap count, model order — while the failure class reproduces
//! (proptest-style greedy shrinking) and the result serializes as a
//! self-contained [`MinimizedFixture`] text file (see
//! `tests/fixtures/corpus/` at the workspace root) that replays without the
//! generator: board, electrical models, flow numerics and expected outcome
//! are all in the file.

use crate::flow::FlowConfig;
use crate::pipeline::Pipeline;
use crate::recovery::RecoveryRung;
use crate::{CoreError, Result};
use pim_circuit::board::{build_board, StackStage, SyntheticPdn};
use pim_circuit::generator::{BoardGenerator, DecapPart, DieModel, GeneratedBoard, VrmModel};
use pim_circuit::PdnBoardSpec;
use pim_passivity::check::assess_on;
use pim_passivity::grid::{Adaptive, FrequencyGrid};
use pim_passivity::{EnforcementConfig, PassivityError};
use pim_pdn::{Termination, TerminationNetwork};
use pim_rfdata::NetworkData;
use pim_vectfit::VfConfig;

pub use pim_circuit::generator::GeneratorConfig;

/// Outcome class of one corpus scenario against the certification gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusClass {
    /// Passed every gate: audit-grid passivity and weighted-beats-standard.
    Certified,
    /// The flow completed but a certification gate failed.
    Adverse,
    /// The weighted enforcement tripped the divergence guard or ran out of
    /// its iteration budget.
    Diverged,
    /// The flow failed outright (fit, solver or assembly error).
    Failed,
}

impl CorpusClass {
    /// Stable lowercase identifier (reports, fixtures, CLI).
    pub fn name(self) -> &'static str {
        match self {
            CorpusClass::Certified => "certified",
            CorpusClass::Adverse => "adverse",
            CorpusClass::Diverged => "diverged",
            CorpusClass::Failed => "failed",
        }
    }

    /// Parses [`CorpusClass::name`] output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] for an unknown class name.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "certified" => Ok(CorpusClass::Certified),
            "adverse" => Ok(CorpusClass::Adverse),
            "diverged" => Ok(CorpusClass::Diverged),
            "failed" => Ok(CorpusClass::Failed),
            other => Err(CoreError::InvalidInput(format!("unknown corpus class '{other}'"))),
        }
    }
}

impl std::fmt::Display for CorpusClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a corpus run: the board space, the flow numerics and the
/// certification gate.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// The generated-board parameter space.
    pub generator: GeneratorConfig,
    /// Flow numerics applied to every scenario. The default uses
    /// [`Adaptive`] sampling — the corpus exists to chase sub-grid violation
    /// bands, not to hide them.
    pub flow: FlowConfig,
    /// Log-spaced frequency samples per scenario (the DC point is added on
    /// top, as everywhere else).
    pub frequency_samples: usize,
    /// Lower band edge in hertz.
    pub f_min_hz: f64,
    /// Upper band edge in hertz.
    pub f_max_hz: f64,
    /// Scattering reference resistance.
    pub z_ref: f64,
    /// Total switching current split across the die ports.
    pub total_current: f64,
    /// Audit-grid density as a multiple of the enforcement working sweep
    /// (the certification gate sweeps `sweep_points × audit_multiplier`
    /// fixed-log points the model was never constrained on).
    pub audit_multiplier: usize,
    /// Passivity tolerance of the audit gate: certified means
    /// `σ_max ≤ 1 + sigma_tolerance`.
    pub sigma_tolerance: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            generator: GeneratorConfig::default(),
            flow: corpus_flow_config(14),
            frequency_samples: 60,
            f_min_hz: 1e3,
            f_max_hz: 2e9,
            z_ref: 50.0,
            total_current: 1.0,
            audit_multiplier: 16,
            sigma_tolerance: 1e-8,
        }
    }
}

/// The corpus flow numerics at a given fitting order: the trimmed
/// fixture-class configuration with [`Adaptive`] sampling on every
/// assessment and enforcement grid.
pub fn corpus_flow_config(n_poles: usize) -> FlowConfig {
    FlowConfig {
        vf: VfConfig { n_poles, n_iterations: 5, ..VfConfig::default() },
        sensitivity_order: 6,
        weight_floor: 1e-2,
        enforcement: EnforcementConfig {
            sweep_points: 200,
            sigma_margin: 1e-3,
            max_iterations: 60,
            ..Default::default()
        }
        .sampling(Adaptive::default()),
        run_standard_enforcement: true,
        ..FlowConfig::default()
    }
}

/// One fully materialized corpus scenario: a generated board plus the flow
/// and gate numerics to run it under. Self-contained — classification and
/// fixture serialization need nothing else.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// The board and its per-port electrical models.
    pub board: GeneratedBoard,
    /// Flow numerics.
    pub flow: FlowConfig,
    /// Log-spaced frequency samples (plus DC).
    pub frequency_samples: usize,
    /// Lower band edge in hertz.
    pub f_min_hz: f64,
    /// Upper band edge in hertz.
    pub f_max_hz: f64,
    /// Scattering reference resistance.
    pub z_ref: f64,
    /// Total die excitation current.
    pub total_current: f64,
    /// Audit grid density multiplier.
    pub audit_multiplier: usize,
    /// Audit passivity tolerance.
    pub sigma_tolerance: f64,
}

/// Per-scenario verdict of a corpus run.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusVerdict {
    /// The generator seed the board came from.
    pub seed: u64,
    /// The certification-gate class.
    pub class: CorpusClass,
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Total port count.
    pub ports: usize,
    /// Fitting order the flow ran at.
    pub order: usize,
    /// `σ_max` on the audit grid: the delivered model's for completed
    /// flows, the best-so-far model's (from the failure diagnostics) for
    /// [`CorpusClass::Diverged`].
    pub audit_sigma_max: Option<f64>,
    /// Target-impedance error of the delivered weighted passive model.
    pub weighted_error: Option<f64>,
    /// Target-impedance error of the standard baseline, when it exists
    /// (`None` when the baseline enforcement itself diverged — a weighted
    /// win by default).
    pub standard_error: Option<f64>,
    /// Weighted enforcement iterations (0 = the fit was already passive;
    /// for `Diverged`, the iteration at which the guard fired).
    pub iterations: usize,
    /// The recovery rung that delivered the model (completed flows only;
    /// [`RecoveryRung::Primary`] when the ladder never engaged).
    pub rung: Option<RecoveryRung>,
    /// For [`CorpusClass::Diverged`]: whether the enforcement handed back a
    /// best-so-far model alongside the failure.
    pub best_available: bool,
    /// Human-readable reason / failure message.
    pub detail: String,
}

impl CorpusCase {
    /// Builds the synthetic PDN, solves it, and assembles the per-port
    /// termination network (each decap port gets its own library part — the
    /// mixed-population generalization of [`crate::scenario::ScenarioConfig`]'s
    /// single decap model).
    ///
    /// # Errors
    ///
    /// Propagates board construction, solver and termination failures.
    pub fn assemble(&self) -> Result<(SyntheticPdn, NetworkData, TerminationNetwork, usize)> {
        let pdn = self.board.build()?;
        let grid = pim_rfdata::FrequencyGrid::log_space(
            self.f_min_hz,
            self.f_max_hz,
            self.frequency_samples,
        )?
        .with_dc();
        let data = pdn.circuit.scattering_parameters(&grid, self.z_ref)?;
        let mut terminations = vec![Termination::Open; pdn.ports()];
        for &p in &pdn.die_ports {
            terminations[p] = Termination::DieBlock {
                resistance: self.board.die.resistance,
                capacitance: self.board.die.capacitance,
            };
        }
        for (&p, model) in pdn.decap_ports.iter().zip(&self.board.decap_models) {
            terminations[p] = Termination::Decap {
                capacitance: model.capacitance,
                esr: model.esr,
                esl: model.esl,
            };
        }
        for &p in &pdn.vrm_ports {
            terminations[p] = Termination::SeriesRl {
                resistance: self.board.vrm.resistance,
                inductance: self.board.vrm.inductance,
            };
        }
        let observation_port = *pdn
            .die_ports
            .first()
            .ok_or_else(|| CoreError::InvalidInput("generated board has no die port".into()))?;
        let network = TerminationNetwork::new(terminations)?
            .with_excitation(pdn.die_ports.clone(), self.total_current)?;
        Ok((pdn, data, network, observation_port))
    }

    /// Runs the flow and classifies the outcome against the certification
    /// gate. Never returns an error: failures are verdicts.
    pub fn classify(&self) -> CorpusVerdict {
        let spec = &self.board.spec;
        let mut verdict = CorpusVerdict {
            seed: self.board.seed,
            class: CorpusClass::Failed,
            nx: spec.nx,
            ny: spec.ny,
            ports: spec.die_ports.len() + spec.decap_ports.len() + spec.vrm_ports.len(),
            order: self.flow.vf.n_poles,
            audit_sigma_max: None,
            weighted_error: None,
            standard_error: None,
            iterations: 0,
            rung: None,
            best_available: false,
            detail: String::new(),
        };
        let (_pdn, data, network, observation_port) = match self.assemble() {
            Ok(parts) => parts,
            Err(e) => {
                verdict.detail = format!("assembly: {e}");
                return verdict;
            }
        };
        // The contract audit and the certification gate must sweep the
        // identical grid: sync the flow's contract parameters with the
        // gate's before the pipeline runs.
        let mut flow = self.flow.clone();
        flow.contract.audit_multiplier = self.audit_multiplier;
        flow.contract.sigma_tolerance = self.sigma_tolerance;
        let mut pipeline = match Pipeline::from_data(&data, &network, observation_port, flow) {
            Ok(p) => p,
            Err(e) => {
                verdict.detail = format!("pipeline: {e}");
                return verdict;
            }
        };
        let report = match pipeline.report() {
            Ok(report) => report,
            Err(CoreError::Passivity(PassivityError::NotConverged {
                iterations,
                sigma_max,
                best,
                diagnostics,
            })) => {
                verdict.class = CorpusClass::Diverged;
                verdict.iterations = iterations;
                verdict.best_available = best.is_some();
                verdict.audit_sigma_max = diagnostics.best_sigma_max;
                verdict.detail = format!(
                    "weighted enforcement diverged at iteration {iterations} \
                     (sigma_max {sigma_max:.6}, best-so-far {}); {diagnostics}",
                    if best.is_some() { "available" } else { "missing" }
                );
                return verdict;
            }
            Err(e) => {
                verdict.detail = format!("flow: {e}");
                return verdict;
            }
        };

        // Certification gate 1: σ_max ≤ 1 + tol on a dense fixed-log audit
        // grid the enforcement never constrained. The pipeline's accuracy
        // contract sweeps the identical grid (parameters synced above), so
        // reuse it; recompute only when the contract was disabled.
        let audit = match &report.contract {
            Some(c) => (c.audit_sigma_max, None),
            None => {
                let audit_grid = FrequencyGrid::enforcement_log(
                    data.grid().max_omega(),
                    self.flow.enforcement.sweep_points * self.audit_multiplier,
                );
                match assess_on(report.final_model(), &audit_grid) {
                    Ok(a) => (a.sigma_max, Some(a.omega_at_sigma_max)),
                    Err(e) => {
                        verdict.detail = format!("audit: {e}");
                        return verdict;
                    }
                }
            }
        };
        let (audit_sigma_max, audit_omega) = audit;
        verdict.audit_sigma_max = Some(audit_sigma_max);
        verdict.rung = Some(
            report.recovery.as_ref().and_then(|r| r.delivered).unwrap_or(RecoveryRung::Primary),
        );
        verdict.iterations =
            report.weighted_enforcement.as_ref().map(|out| out.iterations).unwrap_or(0);
        let weighted_error = report.weighted_passive_eval.impedance_relative_error;
        verdict.weighted_error = Some(weighted_error);

        // Certification gate 2: weighted beats standard on target-impedance
        // error. The baseline is the standard-norm enforced model when the
        // weighted model needed enforcement; the plain standard fit when it
        // did not; absent (weighted win by default) when the baseline
        // enforcement itself diverged.
        let standard_error = match (&report.weighted_enforcement, &report.standard_passive_eval) {
            (_, Some(eval)) => Some(eval.impedance_relative_error),
            (None, None) => Some(report.standard_model_eval.impedance_relative_error),
            (Some(_), None) => None,
        };
        verdict.standard_error = standard_error;

        let audit_pass = audit_sigma_max <= 1.0 + self.sigma_tolerance;
        let beats_standard = standard_error.is_none_or(|s| weighted_error < s);
        if audit_pass && beats_standard {
            verdict.class = CorpusClass::Certified;
            verdict.detail = format!(
                "audit sigma_max {:.9}; weighted {:.4} vs standard {}",
                audit_sigma_max,
                weighted_error,
                standard_error.map_or("n/a (baseline diverged)".into(), |s| format!("{s:.4}"))
            );
        } else {
            verdict.class = CorpusClass::Adverse;
            let mut reasons = Vec::new();
            if !audit_pass {
                let at =
                    audit_omega.map_or(String::new(), |omega| format!(" at omega {omega:.3e}"));
                reasons.push(format!(
                    "audit sigma_max {:.9} > 1+{:.0e}{at}",
                    audit_sigma_max, self.sigma_tolerance
                ));
            }
            if !beats_standard {
                reasons.push(format!(
                    "weighted {:.4} does not beat standard {:.4}",
                    weighted_error,
                    standard_error.expect("beats_standard false implies a baseline")
                ));
            }
            verdict.detail = reasons.join("; ");
        }
        verdict
    }
}

/// The corpus runner: generates, runs and classifies a seed list in
/// parallel.
pub struct Corpus;

impl Corpus {
    /// Materializes the case for one seed (board generation + numerics
    /// bundling); classification is [`CorpusCase::classify`].
    ///
    /// # Errors
    ///
    /// Propagates generator failures (infeasible configuration).
    pub fn case(config: &CorpusConfig, seed: u64) -> Result<CorpusCase> {
        let board = BoardGenerator::new(config.generator.clone()).generate(seed)?;
        Ok(CorpusCase {
            board,
            flow: config.flow.clone(),
            frequency_samples: config.frequency_samples,
            f_min_hz: config.f_min_hz,
            f_max_hz: config.f_max_hz,
            z_ref: config.z_ref,
            total_current: config.total_current,
            audit_multiplier: config.audit_multiplier,
            sigma_tolerance: config.sigma_tolerance,
        })
    }

    /// Runs the corpus over `seeds` on the global thread pool. One verdict
    /// per seed, in seed-list order; generation failures classify as
    /// [`CorpusClass::Failed`] rather than aborting the run.
    pub fn run(config: &CorpusConfig, seeds: &[u64]) -> Vec<CorpusVerdict> {
        Corpus::run_with(pim_runtime::global(), config, seeds)
    }

    /// [`Corpus::run`] on an explicit pool — results are bit-identical for
    /// every thread count (verdicts are collected by seed index).
    pub fn run_with(
        pool: &pim_runtime::ThreadPool,
        config: &CorpusConfig,
        seeds: &[u64],
    ) -> Vec<CorpusVerdict> {
        pool.par_map(seeds, |_, &seed| match Corpus::case(config, seed) {
            Ok(case) => case.classify(),
            Err(e) => CorpusVerdict {
                seed,
                class: CorpusClass::Failed,
                nx: 0,
                ny: 0,
                ports: 0,
                order: config.flow.vf.n_poles,
                audit_sigma_max: None,
                weighted_error: None,
                standard_error: None,
                iterations: 0,
                rung: None,
                best_available: false,
                detail: format!("generator: {e}"),
            },
        })
    }
}

/// Greedily shrinks a failing case — grid size, decap count, then fitting
/// order — while the failure class reproduces, proptest-style. Every
/// accepted shrink re-runs the full flow, so the result is the smallest
/// scenario (under these moves) that still exhibits the failure.
///
/// Returns the minimized fixture together with the verdict of the minimized
/// case (whose class equals `class` by construction).
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] when the starting case does not
/// exhibit `class` in the first place.
pub fn minimize(
    case: &CorpusCase,
    class: CorpusClass,
) -> Result<(MinimizedFixture, CorpusVerdict)> {
    let start = case.classify();
    if start.class != class {
        return Err(CoreError::InvalidInput(format!(
            "cannot minimize: case classifies as {} rather than {}",
            start.class, class
        )));
    }
    let mut current = case.clone();
    let mut verdict = start;
    'outer: loop {
        for candidate in shrink_candidates(&current) {
            let v = candidate.classify();
            if v.class == class {
                current = candidate;
                verdict = v;
                continue 'outer;
            }
        }
        break;
    }
    let fixture = MinimizedFixture {
        name: format!("seed-{}-{}", current.board.seed, class.name()),
        class,
        pinned_iterations: verdict.iterations,
        detail: verdict.detail.clone(),
        case: current,
    };
    Ok((fixture, verdict))
}

/// The shrink moves tried at each greedy step, in order: drop the last grid
/// column, drop the last grid row, drop the last decap port (and its
/// model), lower the fitting order by one conjugate pair.
fn shrink_candidates(case: &CorpusCase) -> Vec<CorpusCase> {
    let mut out = Vec::new();
    let spec = &case.board.spec;
    let fits = |coords: &[(usize, usize)], nx: usize, ny: usize| {
        coords.iter().all(|&(ix, iy)| ix < nx && iy < ny)
    };
    let all_ports = |spec: &PdnBoardSpec| -> Vec<(usize, usize)> {
        spec.die_ports.iter().chain(&spec.decap_ports).chain(&spec.vrm_ports).copied().collect()
    };
    if spec.nx > 2 && fits(&all_ports(spec), spec.nx - 1, spec.ny) {
        let mut c = case.clone();
        c.board.spec.nx -= 1;
        out.push(c);
    }
    if spec.ny > 2 && fits(&all_ports(spec), spec.nx, spec.ny - 1) {
        let mut c = case.clone();
        c.board.spec.ny -= 1;
        out.push(c);
    }
    if spec.decap_ports.len() > 1 {
        let mut c = case.clone();
        c.board.spec.decap_ports.pop();
        c.board.decap_models.pop();
        out.push(c);
    }
    if case.flow.vf.n_poles > 6 {
        let mut c = case.clone();
        c.flow.vf.n_poles -= 2;
        out.push(c);
    }
    out
}

/// A minimized failing scenario, serializable as a self-contained text
/// fixture: the board, every electrical model, the flow numerics and the
/// expected outcome — replayable without the generator or any non-default
/// configuration.
#[derive(Debug, Clone)]
pub struct MinimizedFixture {
    /// Fixture identifier (used in reports and file names).
    pub name: String,
    /// The failure class the fixture must reproduce.
    pub class: CorpusClass,
    /// Iteration count observed at minimization time; a replay must fail
    /// within this budget (`iterations ≤ pinned_iterations` for
    /// [`CorpusClass::Diverged`]).
    pub pinned_iterations: usize,
    /// Human-readable provenance note.
    pub detail: String,
    /// The minimized case itself.
    pub case: CorpusCase,
}

/// Formats an `f64` as exact bits plus a human-readable comment value.
fn fmt_f64(x: f64) -> String {
    format!("0x{:016x}", x.to_bits())
}

fn parse_f64(s: &str) -> Result<f64> {
    if let Some(hex) = s.strip_prefix("0x") {
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|e| CoreError::InvalidInput(format!("bad f64 bits '{s}': {e}")))?;
        Ok(f64::from_bits(bits))
    } else {
        s.parse::<f64>().map_err(|e| CoreError::InvalidInput(format!("bad f64 '{s}': {e}")))
    }
}

fn parse_usize(s: &str) -> Result<usize> {
    s.parse::<usize>().map_err(|e| CoreError::InvalidInput(format!("bad integer '{s}': {e}")))
}

fn fmt_coords(coords: &[(usize, usize)]) -> String {
    coords.iter().map(|&(x, y)| format!("{x},{y}")).collect::<Vec<_>>().join(";")
}

fn parse_coords(s: &str) -> Result<Vec<(usize, usize)>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|pair| {
            let (x, y) = pair
                .split_once(',')
                .ok_or_else(|| CoreError::InvalidInput(format!("bad coordinate '{pair}'")))?;
            Ok((parse_usize(x.trim())?, parse_usize(y.trim())?))
        })
        .collect()
}

fn fmt_triples(rows: &[[f64; 3]]) -> String {
    rows.iter()
        .map(|r| format!("{},{},{}", fmt_f64(r[0]), fmt_f64(r[1]), fmt_f64(r[2])))
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_triples(s: &str) -> Result<Vec<[f64; 3]>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|row| {
            let parts: Vec<&str> = row.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(CoreError::InvalidInput(format!("bad triple '{row}'")));
            }
            Ok([parse_f64(parts[0])?, parse_f64(parts[1])?, parse_f64(parts[2])?])
        })
        .collect()
}

impl MinimizedFixture {
    /// Serializes the fixture to the committed text format. Floats are
    /// written as exact bit patterns (with decimal comments), so a replay
    /// reruns the identical scenario.
    pub fn serialize(&self) -> String {
        let case = &self.case;
        let spec = &case.board.spec;
        let mut lines = vec![
            "# pim corpus minimized fixture v1".to_string(),
            "# floats are exact f64 bit patterns; decimal values are comments".to_string(),
            format!("name = {}", self.name),
            format!("class = {}", self.class),
            format!("pinned_iterations = {}", self.pinned_iterations),
            format!("detail = {}", self.detail.replace('\n', " ")),
            format!("seed = {}", case.board.seed),
            format!("nx = {}", spec.nx),
            format!("ny = {}", spec.ny),
            format!("die_ports = {}", fmt_coords(&spec.die_ports)),
            format!("decap_ports = {}", fmt_coords(&spec.decap_ports)),
            format!("vrm_ports = {}", fmt_coords(&spec.vrm_ports)),
        ];
        let scalars: [(&str, f64); 6] = [
            ("segment_inductance", spec.segment_inductance),
            ("segment_resistance", spec.segment_resistance),
            ("cell_capacitance", spec.cell_capacitance),
            ("cell_conductance", spec.cell_conductance),
            ("via_inductance", spec.via_inductance),
            ("via_resistance", spec.via_resistance),
        ];
        for (key, value) in scalars {
            lines.push(format!("{key} = {} # {value:e}", fmt_f64(value)));
        }
        lines.push(format!(
            "die_stack = {}",
            fmt_triples(
                &spec
                    .die_stack
                    .iter()
                    .map(|s| [s.inductance, s.resistance, s.shunt_capacitance])
                    .collect::<Vec<_>>()
            )
        ));
        lines.push(format!(
            "decap_models = {}",
            fmt_triples(
                &case
                    .board
                    .decap_models
                    .iter()
                    .map(|m| [m.capacitance, m.esr, m.esl])
                    .collect::<Vec<_>>()
            )
        ));
        lines.push(format!(
            "vrm = {},{}",
            fmt_f64(case.board.vrm.resistance),
            fmt_f64(case.board.vrm.inductance)
        ));
        lines.push(format!(
            "die = {},{}",
            fmt_f64(case.board.die.resistance),
            fmt_f64(case.board.die.capacitance)
        ));
        lines.push(format!("n_poles = {}", case.flow.vf.n_poles));
        lines.push(format!("vf_iterations = {}", case.flow.vf.n_iterations));
        lines.push(format!("sensitivity_order = {}", case.flow.sensitivity_order));
        lines.push(format!(
            "weight_floor = {} # {:e}",
            fmt_f64(case.flow.weight_floor),
            case.flow.weight_floor
        ));
        lines.push(format!("sweep_points = {}", case.flow.enforcement.sweep_points));
        lines.push(format!(
            "sigma_margin = {} # {:e}",
            fmt_f64(case.flow.enforcement.sigma_margin),
            case.flow.enforcement.sigma_margin
        ));
        lines.push(format!("max_iterations = {}", case.flow.enforcement.max_iterations));
        lines.push(format!("divergence_guard = {}", case.flow.enforcement.divergence_guard));
        lines.push(format!("frequency_samples = {}", case.frequency_samples));
        lines.push(format!("f_min_hz = {} # {:e}", fmt_f64(case.f_min_hz), case.f_min_hz));
        lines.push(format!("f_max_hz = {} # {:e}", fmt_f64(case.f_max_hz), case.f_max_hz));
        lines.push(format!("z_ref = {} # {}", fmt_f64(case.z_ref), case.z_ref));
        lines.push(format!(
            "total_current = {} # {}",
            fmt_f64(case.total_current),
            case.total_current
        ));
        lines.push(format!("audit_multiplier = {}", case.audit_multiplier));
        lines.push(format!(
            "sigma_tolerance = {} # {:e}",
            fmt_f64(case.sigma_tolerance),
            case.sigma_tolerance
        ));
        lines.join("\n") + "\n"
    }

    /// Parses a serialized fixture. The sampling strategy is always
    /// [`Adaptive`] (the corpus default; it is not a fixture parameter).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on malformed or incomplete input.
    pub fn parse(text: &str) -> Result<Self> {
        let mut fields = std::collections::BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| CoreError::InvalidInput(format!("bad fixture line '{line}'")))?;
            // Strip trailing comments (detail is free text and keeps them).
            let key = key.trim();
            let value = if key == "detail" || key == "name" {
                value.trim().to_string()
            } else {
                value.split('#').next().unwrap_or("").trim().to_string()
            };
            fields.insert(key.to_string(), value);
        }
        let get = |key: &str| -> Result<&String> {
            fields
                .get(key)
                .ok_or_else(|| CoreError::InvalidInput(format!("fixture is missing '{key}'")))
        };
        let die_stack: Vec<StackStage> = parse_triples(get("die_stack")?)?
            .into_iter()
            .map(|[inductance, resistance, shunt_capacitance]| StackStage {
                inductance,
                resistance,
                shunt_capacitance,
            })
            .collect();
        let decap_models: Vec<DecapPart> = parse_triples(get("decap_models")?)?
            .into_iter()
            .map(|[capacitance, esr, esl]| DecapPart { capacitance, esr, esl })
            .collect();
        let pair = |key: &str| -> Result<(f64, f64)> {
            let raw = get(key)?;
            let (a, b) = raw
                .split_once(',')
                .ok_or_else(|| CoreError::InvalidInput(format!("bad pair '{raw}' for {key}")))?;
            Ok((parse_f64(a.trim())?, parse_f64(b.trim())?))
        };
        let (vrm_resistance, vrm_inductance) = pair("vrm")?;
        let (die_resistance, die_capacitance) = pair("die")?;
        let spec = PdnBoardSpec {
            nx: parse_usize(get("nx")?)?,
            ny: parse_usize(get("ny")?)?,
            segment_inductance: parse_f64(get("segment_inductance")?)?,
            segment_resistance: parse_f64(get("segment_resistance")?)?,
            cell_capacitance: parse_f64(get("cell_capacitance")?)?,
            cell_conductance: parse_f64(get("cell_conductance")?)?,
            via_inductance: parse_f64(get("via_inductance")?)?,
            via_resistance: parse_f64(get("via_resistance")?)?,
            die_ports: parse_coords(get("die_ports")?)?,
            decap_ports: parse_coords(get("decap_ports")?)?,
            vrm_ports: parse_coords(get("vrm_ports")?)?,
            die_stack,
        };
        // Fixtures must stay buildable without running the flow.
        build_board(&spec)?;
        let mut flow = corpus_flow_config(parse_usize(get("n_poles")?)?);
        flow.vf.n_iterations = parse_usize(get("vf_iterations")?)?;
        flow.sensitivity_order = parse_usize(get("sensitivity_order")?)?;
        flow.weight_floor = parse_f64(get("weight_floor")?)?;
        flow.enforcement.sweep_points = parse_usize(get("sweep_points")?)?;
        flow.enforcement.sigma_margin = parse_f64(get("sigma_margin")?)?;
        flow.enforcement.max_iterations = parse_usize(get("max_iterations")?)?;
        flow.enforcement.divergence_guard = parse_usize(get("divergence_guard")?)?;
        let case = CorpusCase {
            board: GeneratedBoard {
                seed: get("seed")?.parse::<u64>().map_err(|e| {
                    CoreError::InvalidInput(format!("bad seed '{}': {e}", fields["seed"]))
                })?,
                spec,
                decap_models,
                vrm: VrmModel { resistance: vrm_resistance, inductance: vrm_inductance },
                die: DieModel { resistance: die_resistance, capacitance: die_capacitance },
            },
            flow,
            frequency_samples: parse_usize(get("frequency_samples")?)?,
            f_min_hz: parse_f64(get("f_min_hz")?)?,
            f_max_hz: parse_f64(get("f_max_hz")?)?,
            z_ref: parse_f64(get("z_ref")?)?,
            total_current: parse_f64(get("total_current")?)?,
            audit_multiplier: parse_usize(get("audit_multiplier")?)?,
            sigma_tolerance: parse_f64(get("sigma_tolerance")?)?,
        };
        Ok(MinimizedFixture {
            name: get("name")?.clone(),
            class: CorpusClass::parse(get("class")?)?,
            pinned_iterations: parse_usize(get("pinned_iterations")?)?,
            detail: get("detail")?.clone(),
            case,
        })
    }

    /// Replays the fixture: reruns the flow and returns the fresh verdict
    /// (callers assert `class` and the pinned iteration budget).
    pub fn replay(&self) -> CorpusVerdict {
        self.case.classify()
    }
}

/// The known 5×5 dense-decap divergence regime (ROADMAP item 3 / the PR 5
/// divergence-guard test) expressed as a corpus case: a 5×5 board ringed by
/// four bulk decap banks, one central die block, an order-22 fit. The
/// *primary* weighted enforcement walks into the divergence regime here;
/// the recovery ladder's regularized rung now converges it, so the
/// committed `tests/fixtures/corpus/dense-decap-5x5.fixture` is this case
/// pinned with its fresh verdict (`corpus_report --pin-dense-decap`), not a
/// [`minimize`] output — shrinking toward the convergent class would
/// collapse the historically-adversarial board.
pub fn dense_decap_divergence_case() -> CorpusCase {
    let bulk = DecapPart { capacitance: 47e-6, esr: 8e-3, esl: 1.2e-9 };
    let spec = PdnBoardSpec {
        nx: 5,
        ny: 5,
        die_ports: vec![(2, 2)],
        decap_ports: vec![(0, 0), (0, 4), (4, 0), (4, 4)],
        vrm_ports: vec![(2, 0)],
        ..PdnBoardSpec::default()
    };
    let decap_models = vec![bulk; 4];
    CorpusCase {
        board: GeneratedBoard {
            seed: 0,
            spec,
            decap_models,
            vrm: VrmModel { resistance: 0.8e-3, inductance: 15e-9 },
            die: DieModel { resistance: 30e-3, capacitance: 60e-9 },
        },
        flow: {
            // The historical regime diverges under the paper-default flow
            // numerics (`FlowConfig::default()` at order 22); the trimmed
            // corpus numerics soften the walk enough to converge, so the
            // fixture pins the defaults explicitly.
            let mut flow = corpus_flow_config(22);
            flow.vf.n_iterations = 6;
            flow.sensitivity_order = 8;
            flow.enforcement.sweep_points = 400;
            flow.enforcement.sigma_margin = 1e-4;
            flow.enforcement.max_iterations = 30;
            flow
        },
        frequency_samples: 80,
        f_min_hz: 1e3,
        f_max_hz: 2e9,
        z_ref: 50.0,
        total_current: 1.0,
        audit_multiplier: 16,
        sigma_tolerance: 1e-8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for class in [
            CorpusClass::Certified,
            CorpusClass::Adverse,
            CorpusClass::Diverged,
            CorpusClass::Failed,
        ] {
            assert_eq!(CorpusClass::parse(class.name()).unwrap(), class);
        }
        assert!(CorpusClass::parse("bogus").is_err());
    }

    #[test]
    fn fixture_serialization_round_trips_bit_exactly() {
        let case = dense_decap_divergence_case();
        let fixture = MinimizedFixture {
            name: "round-trip".into(),
            class: CorpusClass::Diverged,
            pinned_iterations: 9,
            detail: "unit test".into(),
            case,
        };
        let text = fixture.serialize();
        let parsed = MinimizedFixture::parse(&text).unwrap();
        assert_eq!(parsed.name, fixture.name);
        assert_eq!(parsed.class, fixture.class);
        assert_eq!(parsed.pinned_iterations, fixture.pinned_iterations);
        assert_eq!(parsed.case.board, fixture.case.board);
        assert_eq!(parsed.case.flow.vf.n_poles, fixture.case.flow.vf.n_poles);
        assert_eq!(
            parsed.case.flow.enforcement.sweep_points,
            fixture.case.flow.enforcement.sweep_points
        );
        assert_eq!(parsed.case.f_min_hz.to_bits(), fixture.case.f_min_hz.to_bits());
        assert_eq!(parsed.case.z_ref.to_bits(), fixture.case.z_ref.to_bits());
        // Re-serialization is byte-stable.
        assert_eq!(parsed.serialize(), text);
    }

    #[test]
    fn shrink_candidates_respect_port_bounds() {
        let case = dense_decap_divergence_case();
        // Corner decaps at (…,4)/(4,…) pin the 5×5 grid: no grid shrink is
        // proposed, only decap drop and order reduction.
        let candidates = shrink_candidates(&case);
        assert_eq!(candidates.len(), 2);
        assert!(candidates.iter().all(|c| c.board.spec.nx == 5 && c.board.spec.ny == 5));
        assert!(candidates
            .iter()
            .any(|c| c.board.spec.decap_ports.len() == 3 && c.board.decap_models.len() == 3));
        assert!(candidates.iter().any(|c| c.flow.vf.n_poles == 20));
    }

    #[test]
    fn generator_failure_is_a_failed_verdict_not_an_abort() {
        let mut config = CorpusConfig::default();
        config.generator.nx = (1, 1);
        let verdicts = Corpus::run(&config, &[0, 1]);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| v.class == CorpusClass::Failed));
        assert!(verdicts[0].detail.starts_with("generator:"));
    }
}
