//! The enforcement recovery ladder and the accuracy contract.
//!
//! The weighted enforcement loop can diverge on hard boards (the corpus of
//! PR 6 diverged on 16 of 100 generated scenarios). Instead of surfacing a
//! bare `NotConverged` with a best-so-far model stapled on, the pipeline
//! retries under an escalation policy — the **recovery ladder**:
//!
//! 1. [`RecoveryRung::Primary`] — the paper's sensitivity-weighted norm
//!    under the configured numerics (not a retry; the name of the happy
//!    path);
//! 2. [`RecoveryRung::Regularized`] — same norm, but the adaptive QP
//!    damping cap is tightened (default `1e6`) so near-singular Gramian
//!    blocks are Tikhonov-damped hard, and the iteration budget is
//!    extended;
//! 3. [`RecoveryRung::Blended`] — a trace-normalized blend of the weighted
//!    and the standard Gramians (`α` weighted + `1−α` standard): part of
//!    the accuracy weighting survives, conditioning comes from the
//!    unweighted norm;
//! 4. [`RecoveryRung::ReducedOrder`] — the weighted fit is redone at a
//!    lower order (default two poles fewer) and enforced under the weighted
//!    norm; fewer states shrink the constraint null-space that lets the
//!    loop walk in circles.
//!
//! Every attempt is recorded as a [`RungAttempt`] in a [`RecoveryReport`],
//! so callers see *what* degraded and *why*. The delivered model — whatever
//! rung produced it — carries an [`AccuracyContract`]: its σ_max on a dense
//! audit grid it was never constrained on, its target-impedance error, and
//! the rung that produced it. [`ContractPolicy::Refuse`] turns the contract
//! into a hard gate for unattended use.

use std::fmt;

/// The rung of the recovery ladder that produced a delivered model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecoveryRung {
    /// The primary sensitivity-weighted enforcement (no recovery needed).
    Primary,
    /// Same weighted norm with hard adaptive QP damping and an extended
    /// iteration budget.
    Regularized,
    /// Trace-normalized blend of the weighted and the standard norm.
    Blended,
    /// Weighted refit at reduced order, enforced under the weighted norm.
    ReducedOrder,
}

impl RecoveryRung {
    /// Stable lowercase identifier (reports, fixtures, CLI).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryRung::Primary => "primary",
            RecoveryRung::Regularized => "regularized",
            RecoveryRung::Blended => "blended",
            RecoveryRung::ReducedOrder => "reduced-order",
        }
    }

    /// Parses [`RecoveryRung::name`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "primary" => Some(RecoveryRung::Primary),
            "regularized" => Some(RecoveryRung::Regularized),
            "blended" => Some(RecoveryRung::Blended),
            "reduced-order" => Some(RecoveryRung::ReducedOrder),
            _ => None,
        }
    }
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the recovery ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Run the ladder at all. When `false` a diverging weighted enforcement
    /// surfaces its `NotConverged` error exactly as before the ladder
    /// existed.
    pub enabled: bool,
    /// Adaptive QP damping cap applied on every recovery rung (the primary
    /// pass keeps its own, typically much looser, cap). Near-singular
    /// Gramian blocks are Tikhonov-damped until their condition estimate
    /// falls below this.
    pub max_condition: f64,
    /// Outer iterations added to the configured budget on every recovery
    /// rung — a retry that runs out of road helps nobody.
    pub extra_iterations: usize,
    /// Weight of the sensitivity-weighted Gramians in the blended rung
    /// (`α` weighted + `1−α` standard, trace-normalized).
    pub blend_alpha: f64,
    /// Conjugate-pole pairs removed by the reduced-order rung.
    pub order_reduction: usize,
    /// The reduced-order rung never refits below this order.
    pub min_order: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: true,
            max_condition: 1e6,
            extra_iterations: 40,
            blend_alpha: 0.5,
            order_reduction: 2,
            min_order: 6,
        }
    }
}

/// One attempted rung of the recovery ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// Which rung ran.
    pub rung: RecoveryRung,
    /// Whether it produced a passive model.
    pub converged: bool,
    /// Outer iterations the attempt performed.
    pub iterations: usize,
    /// Worst singular value at the end of the attempt.
    pub sigma_max: f64,
    /// Human-readable post-mortem (for failed attempts, the
    /// `NotConvergedDiagnostics` rendering).
    pub detail: String,
}

/// The record of a recovery-ladder run: every attempted rung plus the rung
/// that delivered (when one did).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Every rung attempted, in escalation order.
    pub attempts: Vec<RungAttempt>,
    /// The rung whose model was delivered; `None` when the ladder was
    /// exhausted and the primary failure stands.
    pub delivered: Option<RecoveryRung>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.delivered {
            Some(rung) => write!(f, "recovered at rung '{rung}'")?,
            None => f.write_str("recovery ladder exhausted")?,
        }
        write!(f, " after {} attempt(s)", self.attempts.len())
    }
}

/// What the pipeline does with a delivered model that misses its accuracy
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ContractPolicy {
    /// Do not compute a contract (legacy behavior; `FlowReport.contract`
    /// stays `None`).
    Off,
    /// Compute and attach the contract; never fail on it (the default —
    /// callers inspect [`AccuracyContract::within_envelope`]).
    #[default]
    Report,
    /// Refuse delivery: `Pipeline::report` fails with
    /// `CoreError::ContractViolation` when the delivered model is outside
    /// its envelope — the unattended-use mode.
    Refuse,
}

/// Configuration of the accuracy contract attached to delivered models.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractConfig {
    /// Whether to compute the contract and whether it gates delivery.
    pub policy: ContractPolicy,
    /// Audit-grid density as a multiple of the enforcement working sweep:
    /// the contract sweeps `sweep_points × audit_multiplier` fixed-log
    /// points the model was never constrained on (the corpus certification
    /// gate uses the same grid).
    pub audit_multiplier: usize,
    /// Passivity envelope: within-envelope means
    /// `audit σ_max ≤ 1 + sigma_tolerance`.
    pub sigma_tolerance: f64,
    /// Accuracy envelope: relative RMS target-impedance error bound.
    pub max_impedance_error: f64,
}

impl Default for ContractConfig {
    fn default() -> Self {
        ContractConfig {
            policy: ContractPolicy::Report,
            audit_multiplier: 16,
            sigma_tolerance: 1e-8,
            max_impedance_error: 1.0,
        }
    }
}

/// The accuracy contract of a delivered model: what the pipeline measured
/// about it on grids it was never constrained on, and which recovery rung
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyContract {
    /// The recovery rung that produced the delivered model.
    pub rung: RecoveryRung,
    /// `σ_max` on the dense fixed-log audit grid.
    pub audit_sigma_max: f64,
    /// Number of audit-grid points swept.
    pub audit_points: usize,
    /// The passivity tolerance the contract was checked against.
    pub sigma_tolerance: f64,
    /// Relative RMS target-impedance error of the delivered model against
    /// the nominal (data-based) target impedance.
    pub impedance_error: f64,
    /// The accuracy bound the contract was checked against.
    pub max_impedance_error: f64,
}

impl AccuracyContract {
    /// The delivered model holds `σ_max ≤ 1 + tol` on the audit grid.
    pub fn passivity_ok(&self) -> bool {
        self.audit_sigma_max <= 1.0 + self.sigma_tolerance
    }

    /// The delivered model's target-impedance error is within its bound.
    pub fn accuracy_ok(&self) -> bool {
        self.impedance_error <= self.max_impedance_error
    }

    /// Both contract clauses hold.
    pub fn within_envelope(&self) -> bool {
        self.passivity_ok() && self.accuracy_ok()
    }
}

impl fmt::Display for AccuracyContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rung '{}', audit sigma_max {:.9} over {} points (tol 1+{:.0e}), \
             impedance error {:.4} (bound {:.2}): {}",
            self.rung,
            self.audit_sigma_max,
            self.audit_points,
            self.sigma_tolerance,
            self.impedance_error,
            self.max_impedance_error,
            if self.within_envelope() { "within envelope" } else { "OUTSIDE envelope" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_names_round_trip() {
        for rung in [
            RecoveryRung::Primary,
            RecoveryRung::Regularized,
            RecoveryRung::Blended,
            RecoveryRung::ReducedOrder,
        ] {
            assert_eq!(RecoveryRung::parse(rung.name()), Some(rung));
        }
        assert_eq!(RecoveryRung::parse("bogus"), None);
    }

    #[test]
    fn contract_envelope_checks_both_clauses() {
        let mut contract = AccuracyContract {
            rung: RecoveryRung::Regularized,
            audit_sigma_max: 1.0,
            audit_points: 3200,
            sigma_tolerance: 1e-8,
            impedance_error: 0.2,
            max_impedance_error: 1.0,
        };
        assert!(contract.within_envelope());
        assert!(contract.to_string().contains("within envelope"));
        contract.audit_sigma_max = 1.1;
        assert!(!contract.passivity_ok());
        assert!(!contract.within_envelope());
        contract.audit_sigma_max = 1.0;
        contract.impedance_error = 2.0;
        assert!(!contract.accuracy_ok());
        assert!(contract.to_string().contains("OUTSIDE envelope"));
    }

    #[test]
    fn recovery_report_displays_outcome() {
        let report = RecoveryReport {
            attempts: vec![RungAttempt {
                rung: RecoveryRung::Regularized,
                converged: true,
                iterations: 12,
                sigma_max: 1.0,
                detail: String::new(),
            }],
            delivered: Some(RecoveryRung::Regularized),
        };
        assert!(report.to_string().contains("recovered at rung 'regularized'"));
        let exhausted = RecoveryReport { attempts: Vec::new(), delivered: None };
        assert!(exhausted.to_string().contains("exhausted"));
    }
}
