//! Quickstart: run the staged macromodeling pipeline on a small synthetic
//! PDN — fit, check passivity, enforce it with the sensitivity-weighted norm
//! and print the resulting accuracy summary plus the per-iteration
//! enforcement traces recorded by a `TraceObserver`.
//!
//! Run with `cargo run --release --example quickstart`.

use pim_repro::core_flow::{FlowConfig, Pipeline, Stage, StandardScenario, TraceObserver};
use pim_repro::passivity::check::assess_on;
use pim_repro::passivity::grid::{Adaptive, FrequencyGrid};
use pim_repro::passivity::NormKind;
use pim_repro::PimError;

fn main() -> Result<(), PimError> {
    let scenario = StandardScenario::reduced()?;
    println!(
        "scenario: {} ports, {} frequency samples ({:.0} Hz - {:.2e} Hz)",
        scenario.data.ports(),
        scenario.data.len(),
        scenario.data.grid().freqs_hz()[1],
        scenario.data.grid().max_hz()
    );
    let mut trace = TraceObserver::new();
    let report = Pipeline::from_scenario(&scenario, FlowConfig::default())?
        .with_observer(&mut trace)
        .report()?;
    println!(
        "standard fit   : S rms {:.3e}, target-impedance error {:.1}%",
        report.standard_model_eval.scattering_rms_error,
        100.0 * report.standard_model_eval.impedance_relative_error
    );
    println!(
        "weighted fit   : S rms {:.3e}, target-impedance error {:.1}%",
        report.weighted_model_eval.scattering_rms_error,
        100.0 * report.weighted_model_eval.impedance_relative_error
    );
    println!("sigma_max before enforcement: {:.6}", report.sigma_max_before);
    if let Some(out) = &report.weighted_enforcement {
        println!(
            "weighted enforcement: {} iterations, final sigma_max {:.6}",
            out.iterations, out.report.sigma_max
        );
    } else {
        println!("weighted model was already passive");
    }
    println!(
        "final passive model: target-impedance error {:.1}%",
        100.0 * report.weighted_passive_eval.impedance_relative_error
    );
    if let Some(std_eval) = &report.standard_passive_eval {
        println!(
            "standard-norm baseline: target-impedance error {:.1}%",
            100.0 * std_eval.impedance_relative_error
        );
    }
    // iterations_report: the per-iteration enforcement traces the observer
    // recorded, weighted vs standard norm. (Historical note: this was the
    // diagnostic for the Fig. 5 anomaly, resolved by the adaptive sampling
    // strategy — see the 16x-grid audit below. The reduced board under the
    // paper-sized default enforcement parameters remains an adverse regime
    // for both norms; the paper-faithful comparison is the Paper preset.)
    let weighted = trace.trace(NormKind::SensitivityWeighted);
    let standard = trace.trace(NormKind::Standard);
    if !weighted.is_empty() || !standard.is_empty() {
        println!("iterations_report: per-iteration trace, weighted vs standard norm");
        println!(
            "  {:>4} {:>10} {:>10} {:>11} | {:>10} {:>10} {:>11}",
            "iter", "w sigma", "w step", "w |dS|^2", "s sigma", "s step", "s |dS|^2"
        );
        for k in 0..weighted.len().max(standard.len()) {
            let fmt = |t: &[&pim_repro::passivity::EnforcementIteration]| match t.get(k) {
                Some(ev) => format!(
                    "{:>10.6} {:>10.4} {:>11.3e}",
                    ev.sigma_after, ev.step, ev.norm_increment
                ),
                None => format!("{:>10} {:>10} {:>11}", "(done)", "", ""),
            };
            println!("  {:>4} {} | {}", k + 1, fmt(&weighted), fmt(&standard));
        }
        let total = |t: &[&pim_repro::passivity::EnforcementIteration]| -> f64 {
            t.iter().map(|ev| ev.norm_increment).sum()
        };
        println!(
            "  accumulated perturbation norm: weighted {:.3e}, standard {:.3e}",
            total(&weighted),
            total(&standard)
        );
        if trace.failed.contains(&Stage::Enforcement(NormKind::Standard)) {
            println!(
                "  note: the standard-norm baseline did NOT converge; its trace is the \
                 failed attempt (shown for diagnosis)"
            );
        }
    }

    // Sampling-strategy audit: re-assess the delivered model on a 16x
    // fixed-log grid it was never constrained on, then run the same flow
    // under the adaptive strategy (which bisects toward sub-grid violation
    // bands) and audit that model too. Historically the default-strategy
    // model failed this audit — the Fig. 5 anomaly.
    let band_max_omega = scenario.data.grid().max_omega();
    let audit = FrequencyGrid::enforcement_log(
        band_max_omega,
        FlowConfig::default().enforcement.sweep_points * 16,
    );
    let default_audit = assess_on(report.final_model(), &audit)?;
    println!(
        "16x-grid audit (default sampling):  sigma_max {:.6} -> {}",
        default_audit.sigma_max,
        if default_audit.passive { "passive" } else { "NOT passive" }
    );
    let adaptive_report = Pipeline::from_scenario(&scenario, FlowConfig::default())?
        .sampling(Adaptive::default())
        .report()?;
    let adaptive_audit = assess_on(adaptive_report.final_model(), &audit)?;
    println!(
        "16x-grid audit (adaptive sampling): sigma_max {:.6} -> {} \
         (target-impedance error {:.1}%)",
        adaptive_audit.sigma_max,
        if adaptive_audit.passive { "passive" } else { "NOT passive" },
        100.0 * adaptive_report.weighted_passive_eval.impedance_relative_error
    );
    Ok(())
}
