//! Quickstart: fit a small synthetic PDN, check passivity, enforce it with
//! the sensitivity-weighted norm and print the resulting accuracy summary.
//!
//! Run with `cargo run --release --example quickstart`.

use pim_repro::core_flow::{run_flow, FlowConfig, StandardScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = StandardScenario::reduced()?;
    println!(
        "scenario: {} ports, {} frequency samples ({:.0} Hz - {:.2e} Hz)",
        scenario.data.ports(),
        scenario.data.len(),
        scenario.data.grid().freqs_hz()[1],
        scenario.data.grid().max_hz()
    );
    let report = run_flow(
        &scenario.data,
        &scenario.network,
        scenario.observation_port,
        &FlowConfig::default(),
    )?;
    println!(
        "standard fit   : S rms {:.3e}, target-impedance error {:.1}%",
        report.standard_model_eval.scattering_rms_error,
        100.0 * report.standard_model_eval.impedance_relative_error
    );
    println!(
        "weighted fit   : S rms {:.3e}, target-impedance error {:.1}%",
        report.weighted_model_eval.scattering_rms_error,
        100.0 * report.weighted_model_eval.impedance_relative_error
    );
    println!("sigma_max before enforcement: {:.6}", report.sigma_max_before);
    if let Some(out) = &report.weighted_enforcement {
        println!(
            "weighted enforcement: {} iterations, final sigma_max {:.6}",
            out.iterations, out.report.sigma_max
        );
    } else {
        println!("weighted model was already passive");
    }
    println!(
        "final passive model: target-impedance error {:.1}%",
        100.0 * report.weighted_passive_eval.impedance_relative_error
    );
    if let Some(std_eval) = &report.standard_passive_eval {
        println!(
            "standard-norm baseline: target-impedance error {:.1}%",
            100.0 * std_eval.impedance_relative_error
        );
    }
    // iterations_report: worst singular value after each enforcement
    // iteration under the weighted vs the standard norm. Diagnostic only (no
    // numerics change) — this is the trajectory to inspect for the open
    // Fig. 5 anomaly, where the final weighted model's target-impedance
    // error lands above the standard-norm baseline.
    if let (Some(w), Some(s)) = (&report.weighted_enforcement, &report.standard_enforcement) {
        println!("iterations_report: sigma_max per iteration, weighted vs standard norm");
        let rows = w.sigma_max_history.len().max(s.sigma_max_history.len());
        for k in 0..rows {
            let fmt = |h: &[f64]| match h.get(k) {
                Some(v) => format!("{v:.6}"),
                None => "    (done)".to_string(),
            };
            println!(
                "  iter {k:>2}: weighted {:>10}  standard {:>10}",
                fmt(&w.sigma_max_history),
                fmt(&s.sigma_max_history)
            );
        }
        println!(
            "  accumulated perturbation norm: weighted {:.3e}, standard {:.3e}",
            w.accumulated_norm, s.accumulated_norm
        );
    }
    Ok(())
}
