//! Passivity assessment demo (Fig. 4): singular-value sweep and Hamiltonian
//! crossings of the sensitivity-weighted macromodel before and after
//! enforcement.
//!
//! Run with `cargo run --release --example passivity_check`.

use pim_repro::core_flow::{run_flow, FlowConfig, StandardScenario};
use pim_repro::passivity::check::singular_value_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = StandardScenario::reduced()?;
    let report = run_flow(&sc.data, &sc.network, sc.observation_port, &FlowConfig::default())?;
    let omegas = sc.data.grid().omegas();
    let before = singular_value_sweep(&report.weighted_fit.model, &omegas)?;
    let after = singular_value_sweep(report.final_model(), &omegas)?;
    println!("{:>12} {:>16} {:>16}", "freq (Hz)", "sigma_max before", "sigma_max after");
    for (k, &f) in sc.data.grid().freqs_hz().iter().enumerate().step_by(6) {
        println!("{:>12.3e} {:>16.9} {:>16.9}", f, before[k][0], after[k][0]);
    }
    if let Some(out) = &report.weighted_enforcement {
        println!("\nenforcement iterations: {}", out.iterations);
        println!("sigma_max history: {:?}", out.sigma_max_history);
    }
    Ok(())
}
