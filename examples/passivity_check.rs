//! Passivity assessment demo (Fig. 4), running only the pipeline stages it
//! needs: weighted fit → assessment → weighted enforcement — no standard
//! fit, no baseline enforcement, no evaluation phase.
//!
//! Run with `cargo run --release --example passivity_check`.

use pim_repro::core_flow::{FitKind, FlowConfig, Pipeline, StandardScenario};
use pim_repro::passivity::check::singular_value_sweep;
use pim_repro::passivity::NormKind;
use pim_repro::PimError;

fn main() -> Result<(), PimError> {
    let sc = StandardScenario::reduced()?;
    let mut pipeline = Pipeline::from_scenario(&sc, FlowConfig::default())?;
    let fit = pipeline.fit(FitKind::Weighted)?;
    let enforcement = pipeline.enforce(NormKind::SensitivityWeighted)?;
    let final_model = match &enforcement.outcome {
        Some(out) => &out.model,
        None => &fit.result.model,
    };
    let omegas = sc.data.grid().omegas();
    let before = singular_value_sweep(&fit.result.model, &omegas)?;
    let after = singular_value_sweep(final_model, &omegas)?;
    println!("{:>12} {:>16} {:>16}", "freq (Hz)", "sigma_max before", "sigma_max after");
    for (k, &f) in sc.data.grid().freqs_hz().iter().enumerate().step_by(6) {
        println!("{:>12.3e} {:>16.9} {:>16.9}", f, before[k][0], after[k][0]);
    }
    if let Some(out) = &enforcement.outcome {
        println!("\nenforcement iterations: {}", out.iterations);
        println!("sigma_max history: {:?}", out.sigma_max_history);
    }
    Ok(())
}
