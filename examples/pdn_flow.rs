//! Full PDN macromodeling flow through the staged pipeline, printing the
//! target-impedance comparison of Figs. 2 and 5 as a table.
//!
//! Run with `cargo run --release --example pdn_flow`.

use pim_repro::core_flow::{FlowConfig, Pipeline, ScenarioPreset};
use pim_repro::PimError;

fn main() -> Result<(), PimError> {
    let scenario = ScenarioPreset::Reduced.build()?;
    let report = Pipeline::from_scenario(&scenario, FlowConfig::default())?.report()?;
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "freq (Hz)", "|Z| nominal", "|Z| standard", "|Z| weighted", "|Z| final"
    );
    let n = report.nominal_impedance.freqs_hz.len();
    for k in (0..n).step_by((n / 24).max(1)) {
        println!(
            "{:>12.3e} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e}",
            report.nominal_impedance.freqs_hz[k],
            report.nominal_impedance.values[k].abs(),
            report.standard_model_eval.impedance.values[k].abs(),
            report.weighted_model_eval.impedance.values[k].abs(),
            report.weighted_passive_eval.impedance.values[k].abs(),
        );
    }
    Ok(())
}
