//! Sensitivity analysis of the loaded PDN (Fig. 3): the first-order
//! sensitivity of the target impedance is computed analytically, verified by
//! Monte Carlo, and fitted with Magnitude Vector Fitting.
//!
//! Run with `cargo run --release --example sensitivity_analysis`.

use pim_repro::core_flow::StandardScenario;
use pim_repro::pdn::{analytic_sensitivity, monte_carlo_sensitivity, SensitivityOptions};
use pim_repro::vectfit::{fit_magnitude, MagnitudeFitConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = StandardScenario::reduced()?;
    let xi = analytic_sensitivity(&sc.data, &sc.network, sc.observation_port)?;
    let mc = monte_carlo_sensitivity(
        &sc.data,
        &sc.network,
        sc.observation_port,
        &SensitivityOptions { trials: 32, ..Default::default() },
    )?;
    let omegas = sc.data.grid().omegas();
    let (fo, fx): (Vec<f64>, Vec<f64>) =
        omegas.iter().zip(&xi).filter(|(&w, _)| w > 0.0).map(|(&w, &x)| (w, x)).unzip();
    let model = fit_magnitude(&fo, &fx, &MagnitudeFitConfig { order: 8, ..Default::default() })?;
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "freq (Hz)", "Xi analytic", "Xi MonteCarlo", "|Xi~| model"
    );
    for (k, &f) in sc.data.grid().freqs_hz().iter().enumerate().step_by(8) {
        if f == 0.0 {
            continue;
        }
        let w = 2.0 * std::f64::consts::PI * f;
        println!(
            "{:>12.3e} {:>14.6e} {:>14.6e} {:>14.6e}",
            f,
            xi[k],
            mc[k],
            model.evaluate_magnitude(w)?
        );
    }
    Ok(())
}
