//! Sensitivity analysis of the loaded PDN (Fig. 3): the first-order
//! sensitivity of the target impedance is computed analytically (pipeline
//! sensitivity stage), verified by Monte Carlo, and fitted with Magnitude
//! Vector Fitting (pipeline weighting-model stage).
//!
//! Run with `cargo run --release --example sensitivity_analysis`.

use pim_repro::core_flow::{FlowConfig, Pipeline, StandardScenario};
use pim_repro::pdn::{monte_carlo_sensitivity, SensitivityOptions};
use pim_repro::PimError;

fn main() -> Result<(), PimError> {
    let sc = StandardScenario::reduced()?;
    let mut pipeline = Pipeline::from_scenario(&sc, FlowConfig::default())?;
    let sensitivity = pipeline.sensitivity()?;
    let model = pipeline.weighting_model()?;
    let mc = monte_carlo_sensitivity(
        &sc.data,
        &sc.network,
        sc.observation_port,
        &SensitivityOptions { trials: 32, ..Default::default() },
    )?;
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "freq (Hz)", "Xi analytic", "Xi MonteCarlo", "|Xi~| model"
    );
    for (k, &f) in sc.data.grid().freqs_hz().iter().enumerate().step_by(8) {
        // audit:allow(float-eq): the DC sample is stored as a literal 0.0 by the grid builder
        if f == 0.0 {
            continue;
        }
        let w = 2.0 * std::f64::consts::PI * f;
        println!(
            "{:>12.3e} {:>14.6e} {:>14.6e} {:>14.6e}",
            f,
            sensitivity.sensitivity[k],
            mc[k],
            model.evaluate_magnitude(w)?
        );
    }
    Ok(())
}
