//! Integration tests of the staged `Pipeline` API: bit-identity with the
//! legacy `run_flow`, the preset sweep, and the Fig. 5 enforcement-trace
//! regression fixture.

use pim_repro::core_flow::{
    run_flow, CoreError, FitKind, FlowConfig, FlowReport, ModelEvaluation, Pipeline,
    ScenarioPreset, Stage, StandardScenario, TraceObserver,
};
use pim_repro::linalg::{CMat, Complex64, Mat};
use pim_repro::passivity::{EnforcementOutcome, NormKind, PassivityError};
use pim_repro::runtime::ThreadPool;
use pim_repro::statespace::PoleResidueModel;

/// The trimmed configuration the in-crate flow tests use: identical
/// numerics class, fraction of the runtime — shared with the figure
/// harness so the fixture below is always recorded under the same config.
fn quick_config() -> FlowConfig {
    pim_bench::fixture_flow_config()
}

fn assert_f64_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

fn assert_complex_bits(a: Complex64, b: Complex64, what: &str) {
    assert_f64_bits(a.re, b.re, what);
    assert_f64_bits(a.im, b.im, what);
}

fn assert_slice_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_f64_bits(*x, *y, &format!("{what}[{i}]"));
    }
}

fn assert_mat_bits(a: &Mat, b: &Mat, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_f64_bits(a[(i, j)], b[(i, j)], &format!("{what}[({i},{j})]"));
        }
    }
}

fn assert_cmat_bits(a: &CMat, b: &CMat, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_complex_bits(a[(i, j)], b[(i, j)], &format!("{what}[({i},{j})]"));
        }
    }
}

fn assert_model_bits(a: &PoleResidueModel, b: &PoleResidueModel, what: &str) {
    assert_eq!(a.poles().len(), b.poles().len(), "{what}: pole count");
    for (i, (x, y)) in a.poles().iter().zip(b.poles()).enumerate() {
        assert_complex_bits(*x, *y, &format!("{what}: pole {i}"));
    }
    for (i, (x, y)) in a.residues().iter().zip(b.residues()).enumerate() {
        assert_cmat_bits(x, y, &format!("{what}: residue {i}"));
    }
    assert_mat_bits(a.d(), b.d(), &format!("{what}: D"));
}

fn assert_eval_bits(a: &ModelEvaluation, b: &ModelEvaluation, what: &str) {
    assert_f64_bits(a.scattering_rms_error, b.scattering_rms_error, &format!("{what}: S rms"));
    assert_f64_bits(
        a.impedance_relative_error,
        b.impedance_relative_error,
        &format!("{what}: Z error"),
    );
    assert_slice_bits(&a.impedance.freqs_hz, &b.impedance.freqs_hz, &format!("{what}: Z freqs"));
    for (i, (x, y)) in a.impedance.values.iter().zip(&b.impedance.values).enumerate() {
        assert_complex_bits(*x, *y, &format!("{what}: Z[{i}]"));
    }
}

fn assert_enforcement_bits(
    a: &Option<EnforcementOutcome>,
    b: &Option<EnforcementOutcome>,
    what: &str,
) {
    assert_eq!(a.is_some(), b.is_some(), "{what}: presence");
    if let (Some(x), Some(y)) = (a, b) {
        assert_eq!(x.iterations, y.iterations, "{what}: iterations");
        assert_model_bits(&x.model, &y.model, &format!("{what}: model"));
        assert_slice_bits(&x.sigma_max_history, &y.sigma_max_history, &format!("{what}: history"));
        assert_f64_bits(x.accumulated_norm, y.accumulated_norm, &format!("{what}: norm"));
        assert_eq!(x.report.passive, y.report.passive, "{what}: passive flag");
        assert_f64_bits(x.report.sigma_max, y.report.sigma_max, &format!("{what}: sigma_max"));
    }
}

fn assert_report_bits(a: &FlowReport, b: &FlowReport) {
    assert_slice_bits(&a.nominal_impedance.freqs_hz, &b.nominal_impedance.freqs_hz, "Z freqs");
    for (i, (x, y)) in
        a.nominal_impedance.values.iter().zip(&b.nominal_impedance.values).enumerate()
    {
        assert_complex_bits(*x, *y, &format!("nominal Z[{i}]"));
    }
    assert_slice_bits(&a.sensitivity, &b.sensitivity, "sensitivity");
    assert_slice_bits(&a.weights, &b.weights, "weights");
    assert_model_bits(a.sensitivity_model.model(), b.sensitivity_model.model(), "Xi model");
    assert_model_bits(&a.standard_fit.model, &b.standard_fit.model, "standard fit");
    assert_f64_bits(a.standard_fit.rms_error, b.standard_fit.rms_error, "standard rms");
    assert_model_bits(&a.weighted_fit.model, &b.weighted_fit.model, "weighted fit");
    assert_f64_bits(a.weighted_fit.rms_error, b.weighted_fit.rms_error, "weighted rms");
    assert_f64_bits(
        a.weighted_fit.weighted_rms_error,
        b.weighted_fit.weighted_rms_error,
        "weighted wrms",
    );
    assert_f64_bits(a.sigma_max_before, b.sigma_max_before, "sigma_max_before");
    assert_enforcement_bits(&a.weighted_enforcement, &b.weighted_enforcement, "weighted enf");
    assert_enforcement_bits(&a.standard_enforcement, &b.standard_enforcement, "standard enf");
    assert_eval_bits(&a.standard_model_eval, &b.standard_model_eval, "standard eval");
    assert_eval_bits(&a.weighted_model_eval, &b.weighted_model_eval, "weighted eval");
    assert_eval_bits(&a.weighted_passive_eval, &b.weighted_passive_eval, "final eval");
    assert_eq!(
        a.standard_passive_eval.is_some(),
        b.standard_passive_eval.is_some(),
        "baseline eval presence"
    );
    if let (Some(x), Some(y)) = (&a.standard_passive_eval, &b.standard_passive_eval) {
        assert_eval_bits(x, y, "baseline eval");
    }
}

/// The acceptance test of the API redesign: running the stages by hand — in
/// a scrambled order, with an observer attached — and assembling the report
/// must reproduce `run_flow`'s `FlowReport` bit for bit.
#[test]
fn staged_pipeline_is_bit_identical_to_run_flow() {
    let sc = StandardScenario::reduced().unwrap();
    let config = quick_config();
    let legacy = run_flow(&sc.data, &sc.network, sc.observation_port, &config).unwrap();

    let mut trace = TraceObserver::new();
    let staged = {
        let mut pipeline =
            Pipeline::from_scenario(&sc, config.clone()).unwrap().with_observer(&mut trace);
        // Deliberately not the run_flow order: enforcement first (pulling in
        // its prerequisites lazily), then the remaining stages from cache.
        let enf = pipeline.enforce(NormKind::SensitivityWeighted).unwrap();
        assert!(enf.outcome.is_some(), "reduced scenario needs enforcement");
        let _ = pipeline.weighting_model().unwrap();
        let _ = pipeline.fit(FitKind::Standard).unwrap();
        let _ = pipeline.fit(FitKind::Weighted).unwrap();
        let _ = pipeline.sensitivity().unwrap();
        let _ = pipeline.assess().unwrap();
        pipeline.report().unwrap()
    };
    assert_report_bits(&legacy, &staged);

    // The observer saw the enforcement iterations of both norms and they
    // reconcile with the outcomes in the report.
    let weighted = trace.trace(NormKind::SensitivityWeighted);
    assert_eq!(weighted.len(), staged.weighted_enforcement.as_ref().unwrap().iterations);
    if let Some(std_out) = &staged.standard_enforcement {
        assert_eq!(trace.trace(NormKind::Standard).len(), std_out.iterations);
    }
    // Stage caching: the scrambled calls above must not have re-run any
    // stage — one start event per distinct stage.
    let mut seen = std::collections::BTreeSet::new();
    for stage in &trace.started {
        assert!(seen.insert(*stage), "stage {stage} ran twice");
    }
}

/// Artifacts returned early must match the assembled report (owned values,
/// not views that could drift).
#[test]
fn stage_artifacts_match_the_assembled_report() {
    let sc = StandardScenario::reduced().unwrap();
    let mut pipeline = Pipeline::from_scenario(&sc, quick_config()).unwrap();
    let sensitivity = pipeline.sensitivity().unwrap();
    let weighted = pipeline.fit(FitKind::Weighted).unwrap();
    let assessment = pipeline.assess().unwrap();
    let report = pipeline.report().unwrap();
    assert_slice_bits(&sensitivity.sensitivity, &report.sensitivity, "sensitivity artifact");
    assert_slice_bits(&sensitivity.weights, &report.weights, "weights artifact");
    assert_model_bits(&weighted.result.model, &report.weighted_fit.model, "weighted artifact");
    assert_f64_bits(assessment.sigma_max_before, report.sigma_max_before, "sigma artifact");
    assert!(!assessment.report.passive);
}

/// Compares two recorded sweep traces event for event (floats at the bit
/// level): the per-preset buffers merged at join must not depend on the
/// thread count.
fn assert_trace_bits(a: &TraceObserver, b: &TraceObserver, what: &str) {
    assert_eq!(a.started, b.started, "{what}: started stages");
    assert_eq!(a.completed, b.completed, "{what}: completed stages");
    assert_eq!(a.failed, b.failed, "{what}: failed stages");
    assert_eq!(a.iterations.len(), b.iterations.len(), "{what}: iteration count");
    for (i, ((ka, ea), (kb, eb))) in a.iterations.iter().zip(&b.iterations).enumerate() {
        assert_eq!(ka, kb, "{what}: norm of iteration {i}");
        assert_eq!(ea.iteration, eb.iteration, "{what}: iteration index {i}");
        assert_eq!(ea.constraints, eb.constraints, "{what}: constraints {i}");
        assert_f64_bits(ea.sigma_before, eb.sigma_before, &format!("{what}: sigma_before {i}"));
        assert_f64_bits(ea.sigma_after, eb.sigma_after, &format!("{what}: sigma_after {i}"));
        assert_f64_bits(ea.step, eb.step, &format!("{what}: step {i}"));
        assert_f64_bits(ea.norm_increment, eb.norm_increment, &format!("{what}: norm inc {i}"));
    }
}

/// The acceptance test of the parallel runtime: `Pipeline::sweep` over the
/// registry presets on a multi-thread pool must be **bit-identical** to the
/// serial sweep (float-bit `FlowReport` and trace comparison), and every
/// swept scenario must reproduce the paper's weighted-beats-standard fit
/// claim.
///
/// The preset list includes `Minimal` deliberately: its near-exact order-18
/// fits used to break the Hamiltonian Schur iteration (QR non-convergence,
/// ROADMAP PR 3 note) before the LAPACK-style exceptional shifts — running
/// it end-to-end here is the flow-level regression for that fix
/// (`quick_config` fits at order 18).
#[test]
fn parallel_sweep_is_bit_identical_to_serial_and_upholds_the_fit_claim() {
    let presets = [
        ScenarioPreset::Reduced,
        ScenarioPreset::DenseDecap,
        ScenarioPreset::MultiVrm,
        ScenarioPreset::BulkDecap,
        ScenarioPreset::Minimal,
    ];
    let serial = Pipeline::sweep_with(&ThreadPool::new(1), &presets, &quick_config()).unwrap();
    let parallel = Pipeline::sweep_with(&ThreadPool::new(4), &presets, &quick_config()).unwrap();
    assert_eq!(serial.len(), presets.len());
    assert_eq!(parallel.len(), presets.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.preset, p.preset);
        assert_report_bits(&s.report, &p.report);
        assert_trace_bits(&s.trace, &p.trace, s.preset.name());
    }
    for (entry, preset) in parallel.iter().zip(presets) {
        assert_eq!(entry.preset, preset);
        let r = &entry.report;
        let name = preset.name();
        // The merged per-preset trace reconciles with the report: one event
        // per weighted enforcement iteration, delivered in order.
        let weighted_trace = entry.trace.trace(NormKind::SensitivityWeighted);
        let expected_iters = r.weighted_enforcement.as_ref().map(|out| out.iterations).unwrap_or(0);
        assert_eq!(weighted_trace.len(), expected_iters, "{name}: trace length");
        for (k, ev) in weighted_trace.iter().enumerate() {
            assert_eq!(ev.iteration, k + 1, "{name}: trace order");
        }
        // Fig. 1 claim: the standard fit is a good scattering fit.
        assert!(
            r.standard_model_eval.scattering_rms_error < 1e-2,
            "{name}: standard S rms {}",
            r.standard_model_eval.scattering_rms_error
        );
        // Fig. 2 claim: the weighted fit beats it on the target impedance.
        assert!(
            r.weighted_model_eval.impedance_relative_error
                < r.standard_model_eval.impedance_relative_error,
            "{name}: weighted fit ({}) must beat standard fit ({})",
            r.weighted_model_eval.impedance_relative_error,
            r.standard_model_eval.impedance_relative_error
        );
        // The delivered model is passive whenever enforcement ran.
        if let Some(out) = &r.weighted_enforcement {
            assert!(out.report.passive, "{name}: weighted enforcement must certify passivity");
        }
        assert!(
            r.weighted_passive_eval.impedance_relative_error.is_finite(),
            "{name}: final evaluation must be finite"
        );
    }
}

/// A `NotConverged` enforcement is reported to the observer as a failed
/// stage, cached, and never re-run (which would duplicate the recorded
/// trace).
#[test]
fn not_converged_enforcement_is_cached_and_marked_failed() {
    let sc = StandardScenario::reduced().unwrap();
    let mut config = quick_config();
    config.enforcement.max_iterations = 0; // force NotConverged immediately
    let mut trace = TraceObserver::new();
    {
        let mut pipeline = Pipeline::from_scenario(&sc, config).unwrap().with_observer(&mut trace);
        let unpack = |e: CoreError| match e {
            CoreError::Passivity(PassivityError::NotConverged {
                iterations, sigma_max, ..
            }) => (iterations, sigma_max),
            other => panic!("expected NotConverged, got {other}"),
        };
        let first = unpack(pipeline.enforce(NormKind::Standard).unwrap_err());
        let second = unpack(pipeline.enforce(NormKind::Standard).unwrap_err());
        assert_eq!(first.0, 0);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1.to_bits(), second.1.to_bits());
    }
    let enforcement = Stage::Enforcement(NormKind::Standard);
    assert_eq!(trace.failed, vec![enforcement]);
    // The loop ran exactly once: the second call was served from the
    // failure cache without re-starting the stage.
    assert_eq!(trace.started.iter().filter(|s| **s == enforcement).count(), 1);
}

/// Regression fixture for the Fig. 5 anomaly investigation: the weighted and
/// standard per-iteration enforcement traces on the reduced scenario.
///
/// Regenerate with `PIM_REGEN_FIXTURE=1 cargo test --test pipeline fig5`
/// (running this test with the variable set rewrites the file); review the
/// diff before committing.
#[test]
fn fig5_iteration_traces_match_the_fixture() {
    const FIXTURE: &str =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/fig5_iterations.txt");
    let sc = StandardScenario::reduced().unwrap();
    let mut trace = TraceObserver::new();
    let _report = Pipeline::from_scenario(&sc, quick_config())
        .unwrap()
        .with_observer(&mut trace)
        .report()
        .unwrap();

    let mut lines = vec![
        "# norm iteration sigma_before sigma_after step norm_increment constraints".to_string(),
    ];
    for (kind, label) in
        [(NormKind::SensitivityWeighted, "weighted"), (NormKind::Standard, "standard")]
    {
        for ev in trace.trace(kind) {
            lines.push(format!(
                "{label} {} {:.12e} {:.12e} {:.6} {:.12e} {}",
                ev.iteration,
                ev.sigma_before,
                ev.sigma_after,
                ev.step,
                ev.norm_increment,
                ev.constraints
            ));
        }
    }
    let current = lines.join("\n") + "\n";

    if std::env::var_os("PIM_REGEN_FIXTURE").is_some() {
        std::fs::write(FIXTURE, &current).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing; regenerate with PIM_REGEN_FIXTURE=1");
    let exp_lines: Vec<&str> = expected.lines().collect();
    let cur_lines: Vec<&str> = current.lines().collect();
    assert_eq!(
        exp_lines.len(),
        cur_lines.len(),
        "trace length changed; regenerate the fixture if intentional\n{current}"
    );
    for (e, c) in exp_lines.iter().zip(&cur_lines).skip(1) {
        let ef: Vec<&str> = e.split_whitespace().collect();
        let cf: Vec<&str> = c.split_whitespace().collect();
        assert_eq!(ef.len(), cf.len(), "field count: {e} vs {c}");
        // norm label, iteration and constraint count are exact ...
        assert_eq!(ef[0], cf[0], "norm label: {e} vs {c}");
        assert_eq!(ef[1], cf[1], "iteration: {e} vs {c}");
        assert_eq!(ef[6], cf[6], "constraints: {e} vs {c}");
        // ... floats compare with a 1e-6 relative band (cross-platform libm).
        for idx in 2..6 {
            let a: f64 = ef[idx].parse().unwrap();
            let b: f64 = cf[idx].parse().unwrap();
            let tol = 1e-6 * a.abs().max(1e-12);
            assert!((a - b).abs() <= tol, "field {idx} drifted: {e} vs {c}");
        }
    }
}

/// Corpus extension of the serial-vs-parallel guarantee: running the
/// stress corpus on a single-thread pool (the `PIM_THREADS=1` fallback
/// path) and on a multi-thread pool must generate bit-identical boards and
/// bit-identical verdicts for every seed.
#[test]
fn corpus_run_is_bit_identical_across_thread_pools() {
    use pim_repro::circuit::BoardGenerator;
    use pim_repro::core_flow::{Corpus, CorpusVerdict};

    let config = pim_bench::corpus_smoke_config();
    let seeds: Vec<u64> = (0..3).collect();

    // Board generation is pool-independent by construction; pin it anyway —
    // the verdict comparison below silently weakens if boards ever drift.
    for &seed in &seeds {
        let a = BoardGenerator::new(config.generator.clone()).generate(seed).unwrap();
        let b = BoardGenerator::new(config.generator.clone()).generate(seed).unwrap();
        assert_eq!(a, b, "seed {seed}: board regeneration is not bit-identical");
    }

    let serial = Corpus::run_with(&ThreadPool::new(1), &config, &seeds);
    let parallel = Corpus::run_with(&ThreadPool::new(4), &config, &seeds);
    assert_eq!(serial.len(), parallel.len());
    let opt_bits = |x: Option<f64>| x.map(f64::to_bits);
    let assert_verdict_bits = |s: &CorpusVerdict, p: &CorpusVerdict| {
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.class, p.class, "seed {}: class drift across pools", s.seed);
        assert_eq!((s.nx, s.ny, s.ports, s.order), (p.nx, p.ny, p.ports, p.order));
        assert_eq!(s.iterations, p.iterations, "seed {}: iteration drift", s.seed);
        assert_eq!(s.best_available, p.best_available);
        assert_eq!(
            opt_bits(s.audit_sigma_max),
            opt_bits(p.audit_sigma_max),
            "seed {}: audit sigma drift",
            s.seed
        );
        assert_eq!(
            opt_bits(s.weighted_error),
            opt_bits(p.weighted_error),
            "seed {}: weighted error drift",
            s.seed
        );
        assert_eq!(
            opt_bits(s.standard_error),
            opt_bits(p.standard_error),
            "seed {}: standard error drift",
            s.seed
        );
        assert_eq!(s.detail, p.detail, "seed {}: detail drift", s.seed);
    };
    for (s, p) in serial.iter().zip(&parallel) {
        assert_verdict_bits(s, p);
    }
}
