//! Cross-crate integration tests: synthetic board -> data -> fit -> loaded
//! impedance, exercising every crate of the workspace together.

use pim_repro::circuit::standard_board;
use pim_repro::core_flow::{ScenarioConfig, ScenarioPreset, StandardScenario};
use pim_repro::passivity::check::assess;
use pim_repro::pdn::{analytic_sensitivity, target_impedance};
use pim_repro::rfdata::touchstone::{
    from_touchstone_string, to_touchstone_string, TouchstoneFormat,
};
use pim_repro::rfdata::FrequencyGrid;
use pim_repro::vectfit::{vector_fit, VfConfig};

#[test]
fn board_data_round_trips_through_touchstone() {
    let board = standard_board().unwrap();
    let grid = FrequencyGrid::log_space(1e3, 2e9, 20).unwrap().with_dc();
    let data = board.circuit.scattering_parameters(&grid, 50.0).unwrap();
    let text = to_touchstone_string(&data, TouchstoneFormat::Ri);
    let back = from_touchstone_string(&text, data.ports()).unwrap();
    for k in 0..data.len() {
        assert!(back.matrix(k).max_abs_diff(data.matrix(k)) < 1e-9);
    }
}

#[test]
fn fitted_model_predicts_the_loaded_impedance() -> pim_repro::Result<()> {
    // The unified PimError lets `?` cross stage boundaries: scenario
    // construction (CoreError), fitting (VectFitError), assessment
    // (PassivityError) and impedance extraction (PdnError) below.
    let sc = ScenarioPreset::Reduced.build()?;
    let fit = vector_fit(&sc.data, None, &VfConfig::with_order(16))?;
    assert!(fit.rms_error < 1e-2, "rms error {}", fit.rms_error);
    // The raw data is passive; the plain fit may still carry localized
    // passivity violations (this is precisely why the enforcement stage
    // exists), but its assessment must complete and report finite values.
    let rep = assess(&fit.model, &sc.data.grid().omegas())?;
    assert!(rep.sigma_max.is_finite() && rep.sigma_max > 0.5);
    // The model-based loaded impedance follows the data-based one except
    // where the sensitivity amplifies the fitting error.
    let z_data = target_impedance(&sc.data, &sc.network, sc.observation_port)?;
    let sampled =
        fit.model.sample(sc.data.grid(), pim_repro::rfdata::ParameterKind::Scattering, 50.0)?;
    let z_model = target_impedance(&sampled, &sc.network, sc.observation_port)?;
    assert_eq!(z_model.values.len(), z_data.values.len());
    // At the top of the band (low sensitivity) the two agree tightly.
    let last = z_data.values.len() - 1;
    let rel = (z_model.values[last] - z_data.values[last]).abs() / z_data.values[last].abs();
    assert!(rel < 0.15, "high-frequency relative error {rel}");
    Ok(())
}

#[test]
fn sensitivity_profile_is_reproducible_across_scenario_sizes() {
    // The low-frequency sensitivity amplification must appear for both the
    // reduced and a slightly larger scenario (structural property, not a
    // tuning accident).
    {
        let cfg = ScenarioConfig::reduced();
        let sc = StandardScenario::build(cfg).unwrap();
        let xi = analytic_sensitivity(&sc.data, &sc.network, sc.observation_port).unwrap();
        assert!(xi[1] > 10.0 * xi[xi.len() - 1]);
    }
}
