//! Fig. 5 anomaly regression — **promoted from an ignored diagnostic to an
//! asserting test** now that the adaptive sampling strategy resolves the
//! anomaly.
//!
//! History (ROADMAP PRs 3–4): the weighted enforcement on the reduced
//! scenario used to deliver a model that was "certified passive" on its
//! working and 4× verification grids while a violation band near
//! ω ≈ 7.04·10⁹ rad/s — true σ ≈ 1.36 — hid *between* the grid points for
//! 12 iterations and survived into the final model (σ_max ≈ 1.02 on a 16×
//! grid). This test pins the fix: under
//! [`pim_repro::passivity::grid::Adaptive`] sampling the band is exposed at
//! full strength on the very first assessment, the enforcement constrains
//! it away, and the delivered model stays passive on a dense 16× audit grid
//! it was never constrained on.
//!
//! The historical `CrossingRefined` path is asserted too: it must keep
//! missing the band on its working grid (if it stops missing it, the
//! numerics changed and the fixture story needs revisiting).

use pim_repro::core_flow::{FitKind, FlowConfig, Pipeline, StandardScenario, TraceObserver};
use pim_repro::passivity::check::{assess_on, assess_with_sampling};
use pim_repro::passivity::grid::{Adaptive, CrossingRefined, FrequencyGrid};
use pim_repro::passivity::NormKind;
use pim_repro::runtime::ThreadPool;

/// The hidden violation band of the anomaly (rad/s).
const OMEGA_BAND: f64 = 7.04e9;

/// The trimmed configuration of `tests/pipeline.rs`, shared with the
/// figure harness: the pinned `fig5_iterations.txt` fixture was recorded
/// under it.
fn quick_config() -> FlowConfig {
    pim_bench::fixture_flow_config()
}

#[test]
fn adaptive_sampling_exposes_and_eliminates_the_hidden_band() {
    let sc = StandardScenario::reduced().unwrap();
    let config = quick_config();
    let pool = ThreadPool::new(1);

    // The weighted fit and the enforcement working-grid shape, exactly as
    // the enforcement loop builds them.
    let mut pipeline = Pipeline::from_scenario(&sc, config.clone()).unwrap();
    let fit = pipeline.fit(FitKind::Weighted).unwrap();
    let band_max_omega = sc.data.grid().max_omega();
    let working = FrequencyGrid::enforcement_log(band_max_omega, config.enforcement.sweep_points);

    // --- 1. The historical strategy still under-reports the band on the
    //        working grid (the anomaly's mechanism)...
    let crossing_report =
        assess_with_sampling(&pool, &fit.result.model, &working, &CrossingRefined).unwrap();
    let sigma_near_band = |report: &pim_repro::passivity::PassivityReport| -> f64 {
        report
            .bands
            .iter()
            .filter(|b| b.omega_peak >= 0.9 * OMEGA_BAND && b.omega_peak <= 1.1 * OMEGA_BAND)
            .map(|b| b.sigma_peak)
            .fold(0.0_f64, f64::max)
    };
    let hidden = sigma_near_band(&crossing_report);
    assert!(
        hidden < 1.3,
        "the crossing-refined working sweep used to under-report the band \
         (σ ≈ 1.006); it now sees {hidden} — the anomaly mechanism changed, revisit this test"
    );

    // --- 2. ... while the adaptive strategy exposes it at full strength on
    //        the very first assessment (satellite acceptance: σ ≥ 1.3 at
    //        first exposure).
    let adaptive_report =
        assess_with_sampling(&pool, &fit.result.model, &working, &Adaptive::default()).unwrap();
    let exposed = sigma_near_band(&adaptive_report);
    assert!(
        exposed >= 1.3,
        "the adaptive assessment must expose the ω≈7.04e9 band at first exposure \
         (σ ≥ 1.3), got {exposed}"
    );
    // The adaptive grid grew beyond the crossing-refined one to do it.
    assert!(adaptive_report.grid.len() > crossing_report.grid.len());

    // --- 3. The full adaptive flow: the enforcement constrains the exposed
    //        band away and the delivered model survives a 16× fixed-log
    //        audit grid it was never constrained on.
    let mut trace = TraceObserver::new();
    let report = Pipeline::from_scenario(&sc, config.clone())
        .unwrap()
        .sampling(Adaptive::default())
        .with_observer(&mut trace)
        .report()
        .unwrap();
    let out = report.weighted_enforcement.as_ref().expect("enforcement must run");
    assert!(out.report.passive, "the adaptive enforcement must certify passivity");
    let audit =
        FrequencyGrid::enforcement_log(band_max_omega, config.enforcement.sweep_points * 16);
    let audit_report = assess_on(report.final_model(), &audit).unwrap();
    assert!(
        audit_report.sigma_max <= 1.0 + 1e-8,
        "the delivered model must stay passive on the 16x audit grid \
         (sigma_max = {}, at ω = {:.3e})",
        audit_report.sigma_max,
        audit_report.omega_at_sigma_max
    );

    // --- 4. With the anomaly gone, the paper's Fig. 5 claim holds: the
    //        weighted enforcement beats the standard-norm baseline on the
    //        target-impedance error.
    let std_eval = report
        .standard_passive_eval
        .as_ref()
        .expect("the standard baseline converges on the reduced scenario");
    assert!(
        report.weighted_passive_eval.impedance_relative_error < std_eval.impedance_relative_error,
        "weighted enforcement ({}) must beat the standard baseline ({})",
        report.weighted_passive_eval.impedance_relative_error,
        std_eval.impedance_relative_error
    );

    // --- 5. Observability: the adaptive working grid grew beyond the
    //        fixed 201-point baseline in every recorded iteration.
    let growth = trace.grid_growth(NormKind::SensitivityWeighted);
    assert_eq!(growth.len(), out.iterations);
    assert!(
        growth.iter().all(|&n| n > working.len()),
        "adaptive iterations must refine beyond the {}-point baseline: {growth:?}",
        working.len()
    );
}

/// Full-size acceptance run (paper scenario, `FlowConfig::default`): the
/// delivered weighted model must certify σ_max ≤ 1 + 1e-8 on a 16× audit
/// grid it was not constrained on. Takes minutes in release mode — CI runs
/// it in the diagnostics step (`cargo test --release --test fig5_anomaly --
/// --ignored`).
#[test]
#[ignore = "full paper-size scenario: minutes in release, run by the CI diagnostics step"]
fn paper_scenario_adaptive_enforcement_certifies_on_a_16x_grid() {
    let sc = StandardScenario::standard().unwrap();
    let config = FlowConfig::default();
    let report = Pipeline::from_scenario(&sc, config.clone())
        .unwrap()
        .sampling(Adaptive::default())
        .report()
        .unwrap();
    let band_max_omega = sc.data.grid().max_omega();
    let audit =
        FrequencyGrid::enforcement_log(band_max_omega, config.enforcement.sweep_points * 16);
    let audit_report = assess_on(report.final_model(), &audit).unwrap();
    assert!(
        audit_report.sigma_max <= 1.0 + 1e-8,
        "paper-scenario delivered model must stay passive on the 16x audit grid \
         (sigma_max = {})",
        audit_report.sigma_max
    );
    let std_eval = report.standard_passive_eval.as_ref().expect("baseline available");
    assert!(
        report.weighted_passive_eval.impedance_relative_error < std_eval.impedance_relative_error,
        "weighted ({}) must beat standard ({}) on the paper scenario",
        report.weighted_passive_eval.impedance_relative_error,
        std_eval.impedance_relative_error
    );
}

// The 5×5 dense-decap divergence diagnostic that used to live here was
// promoted to a committed minimized corpus fixture:
// `tests/fixtures/corpus/dense-decap-5x5.fixture`, replayed by the
// (release-only) regression in `tests/corpus.rs` — same regime, same
// divergence-guard assertions, now expressed as a self-contained corpus
// case instead of an inline scenario tweak.
