//! Ignored-by-default diagnostic for the open Fig. 5 anomaly (ROADMAP):
//! an executable record of **where dense-grid violations re-expose** during
//! the weighted enforcement on the reduced scenario, replacing the prose
//! note with assertions against the pinned
//! `tests/fixtures/fig5_iterations.txt` trace.
//!
//! Run with `cargo test --test fig5_anomaly -- --ignored` (CI runs it in the
//! nightly-style diagnostics step). The assertions pin the *current*
//! behavior of weighted iterations 13–17; when the anomaly is fixed they
//! are expected to fail, prompting an update of this artifact.
//!
//! What the diagnostic shows today (16× dense grid vs the 200-point working
//! sweep):
//!
//! * a violation band near ω ≈ 7.04e9 rad/s hides *between* working-grid
//!   points for the first 12 iterations — the working sweep reports
//!   σ_max ≈ 1.006 while the true peak sits at σ ≈ 1.36;
//! * the 4× verification grid re-exposes it at iterations 13, 15 and 17
//!   (σ_before jumps back above 1 right after an apparently converged
//!   iteration), which is the saw-tooth visible in the pinned fixture;
//! * the final model — certified passive on the 4× verification grid —
//!   still carries σ_max ≈ 1.02 on the 16× grid, i.e. the delivered
//!   weighted model is not truly passive. This residual violation is a
//!   concrete lead for why the weighted flow's final target-impedance error
//!   exceeds the standard baseline's, contradicting Fig. 5.

use pim_repro::core_flow::{
    sensitivity_weighted_norm, FitKind, FlowConfig, Pipeline, StandardScenario,
};
use pim_repro::passivity::check::singular_value_sweep;
use pim_repro::passivity::enforce::{
    enforce_passivity_observed, EnforcementConfig, EnforcementIteration, EnforcementObserver,
};
use pim_repro::statespace::PoleResidueModel;
use pim_repro::vectfit::VfConfig;

/// The trimmed configuration of `tests/pipeline.rs` — keep in sync: the
/// fixture was recorded under it.
fn quick_config() -> FlowConfig {
    FlowConfig {
        vf: VfConfig { n_poles: 18, n_iterations: 5, ..VfConfig::default() },
        sensitivity_order: 6,
        weight_floor: 1e-2,
        enforcement: EnforcementConfig {
            sweep_points: 200,
            sigma_margin: 1e-3,
            max_iterations: 60,
            ..Default::default()
        },
        run_standard_enforcement: true,
    }
}

/// Records every iteration event plus model snapshots for the window under
/// investigation (weighted iterations 12–17: the saw-tooth of the fixture).
#[derive(Default)]
struct Snapshot {
    events: Vec<EnforcementIteration>,
    models: Vec<(usize, PoleResidueModel)>,
}

impl EnforcementObserver for Snapshot {
    fn on_enforcement_iteration(&mut self, event: &EnforcementIteration) {
        self.events.push(*event);
    }

    fn on_iteration_model(&mut self, iteration: usize, model: &PoleResidueModel) {
        if (12..=17).contains(&iteration) {
            self.models.push((iteration, model.clone()));
        }
    }
}

/// The enforcement loop's logarithmic sweep grid shape at a configurable
/// resolution (`sweep_points` of the working grid × `factor`), plus DC.
fn dense_grid(band_max_omega: f64, sweep_points: usize, factor: usize) -> Vec<f64> {
    let top = band_max_omega * 2.0;
    let bottom = band_max_omega * 1e-8;
    let n = sweep_points * factor;
    let mut v: Vec<f64> = (0..n)
        .map(|k| {
            10f64.powf(bottom.log10() + (top.log10() - bottom.log10()) * k as f64 / (n - 1) as f64)
        })
        .collect();
    v.insert(0, 0.0);
    v
}

fn sigma_max_on(model: &PoleResidueModel, grid: &[f64]) -> (f64, f64, usize) {
    let sweep = singular_value_sweep(model, grid).expect("dense sweep");
    let mut smax = 0.0f64;
    let mut at = 0.0f64;
    let mut violations = 0usize;
    for (k, sv) in sweep.iter().enumerate() {
        let s = sv.first().copied().unwrap_or(0.0);
        if s > 1.0 {
            violations += 1;
        }
        if s > smax {
            smax = s;
            at = grid[k];
        }
    }
    (smax, at, violations)
}

#[test]
#[ignore = "nightly-style diagnostic: sweeps weighted iterations 13-17 on dense grids"]
fn weighted_iterations_13_to_17_re_expose_dense_grid_violations() {
    const FIXTURE: &str =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/fig5_iterations.txt");
    let sc = StandardScenario::reduced().unwrap();
    let config = quick_config();

    // Rebuild exactly the pipeline's weighted-enforcement inputs, then run
    // the loop with the snapshotting observer (observers never change
    // numerics, so the trace must reproduce the pinned fixture).
    let mut pipeline = Pipeline::from_scenario(&sc, config.clone()).unwrap();
    let fit = pipeline.fit(FitKind::Weighted).unwrap();
    let ximodel = pipeline.weighting_model().unwrap();
    let assessment = pipeline.assess().unwrap();
    let norm = sensitivity_weighted_norm(&fit.result.model, &ximodel).unwrap();
    let mut snap = Snapshot::default();
    let outcome = enforce_passivity_observed(
        &fit.result.model,
        &norm,
        assessment.band_max_omega,
        &config.enforcement,
        &mut snap,
    )
    .expect("the weighted enforcement converges on the reduced scenario");
    assert!(outcome.report.passive, "the working/verification grids certify passivity");

    // --- 1. The recorded trace matches the pinned fixture on iterations
    //        13–17 (floats at 1e-6 relative, counts exactly).
    let fixture = std::fs::read_to_string(FIXTURE).expect("pinned fixture present");
    let mut pinned = 0usize;
    for line in fixture.lines().filter(|l| l.starts_with("weighted ")) {
        let f: Vec<&str> = line.split_whitespace().collect();
        let iteration: usize = f[1].parse().unwrap();
        if !(13..=17).contains(&iteration) {
            continue;
        }
        pinned += 1;
        let ev = snap.events.get(iteration - 1).expect("trace long enough");
        assert_eq!(ev.iteration, iteration);
        assert_eq!(ev.constraints.to_string(), f[6], "constraints at iteration {iteration}");
        for (field, value) in [(2, ev.sigma_before), (3, ev.sigma_after), (5, ev.norm_increment)] {
            let expected: f64 = f[field].parse().unwrap();
            let tol = 1e-6 * expected.abs().max(1e-12);
            assert!(
                (expected - value).abs() <= tol,
                "iteration {iteration} field {field}: fixture {expected} vs run {value}"
            );
        }
    }
    assert_eq!(pinned, 5, "fixture must pin weighted iterations 13-17");

    // --- 2. Dense-grid re-exposure, the anomaly's mechanism. On a 16×
    //        grid every snapshot in the window still violates, including
    //        the iterations the working sweep declared passive — and the
    //        re-exposed peak sits at the same frequency throughout.
    let grid16 = dense_grid(assessment.band_max_omega, config.enforcement.sweep_points, 16);
    println!("# iteration working_sigma_after dense16x_sigma_max omega_at violating_points");
    let mut peak_omegas: Vec<f64> = Vec::new();
    for (iteration, model) in &snap.models {
        let ev = &snap.events[iteration - 1];
        let (smax, at, violations) = sigma_max_on(model, &grid16);
        println!("{iteration} {:.9} {smax:.9} {at:.6e} {violations}", ev.sigma_after);
        assert!(
            smax > 1.0,
            "iteration {iteration}: the 16x grid no longer re-exposes a violation \
             (sigma_max {smax}) — the anomaly mechanism changed; update this diagnostic"
        );
        peak_omegas.push(at);
        if ev.sigma_after < 1.0 {
            // An apparently converged iteration: the violation hides
            // strictly between working-grid points.
            assert!(
                smax > 1.0 + 10.0 * (1.0 - ev.sigma_after),
                "iteration {iteration}: hidden violation ({smax}) should dwarf the margin"
            );
        }
    }
    // The saw-tooth is one persistent band, not scattered noise: every
    // re-exposed peak lies in the same narrow frequency neighbourhood.
    let w0 = peak_omegas[0];
    for w in &peak_omegas {
        assert!(
            (w - w0).abs() <= 0.05 * w0,
            "re-exposure wandered: {w} vs {w0} — update this diagnostic"
        );
    }

    // --- 3. The delivered model itself: certified passive on the 4×
    //        verification grid, but still violating on the 16× grid. This
    //        residual violation is the concrete Fig. 5 lead.
    let (final_smax, final_at, _) = sigma_max_on(&outcome.model, &grid16);
    println!("final {final_smax:.9} at {final_at:.6e}");
    assert!(
        final_smax > 1.0,
        "the certified-passive model no longer violates the 16x grid \
         ({final_smax}) — the anomaly may be fixed; update ROADMAP and this diagnostic"
    );
}
