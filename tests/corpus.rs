//! Integration tests of the stress-corpus harness: the committed pinned
//! dense-decap fixture, its convergence-regression replay, a seeded corpus
//! smoke run with classification invariants, and the robustness-layer
//! properties (trust-region descent, recovery-ladder thread determinism).

use pim_repro::core_flow::corpus::dense_decap_divergence_case;
use pim_repro::core_flow::{
    Corpus, CorpusClass, MinimizedFixture, Pipeline, RecoveryRung, TraceObserver,
};
use pim_runtime::ThreadPool;

/// The committed fixture of the historical 5×5 dense-decap divergence
/// regime, pinned with its fresh verdict (the recovery ladder now converges
/// it). Regenerate with
/// `cargo run --release -p pim-bench --bin corpus_report -- --pin-dense-decap tests/fixtures/corpus/dense-decap-5x5.fixture`.
const DENSE_DECAP_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/corpus/dense-decap-5x5.fixture");

/// Fast guard on the committed artifact: it must parse, describe the known
/// (historically diverging) regime, re-serialize byte-identically, assemble
/// into a solvable scenario, and stay in sync with the in-code regime
/// description it was pinned from.
#[test]
fn committed_dense_decap_fixture_parses_builds_and_round_trips() {
    let text = std::fs::read_to_string(DENSE_DECAP_FIXTURE)
        .expect("committed fixture missing; regenerate with corpus_report --pin-dense-decap");
    let fixture = MinimizedFixture::parse(&text).unwrap();
    // The regime used to classify Diverged; the recovery ladder converts it
    // into a completed, contract-carrying delivery. It stays Adverse (the
    // 16x audit finds sigma_max ~1.0000168 between the enforcement's
    // constrained points and the recovered model does not beat the standard
    // baseline) — but the divergence guard no longer fires and a model is
    // delivered (see EXPERIMENTS.md).
    assert_eq!(fixture.class, CorpusClass::Adverse);
    // The canonical regime: the full 5×5 ring with four bulk banks at
    // order 22 (pinned as-is, not minimized — shrinking toward the
    // convergent class would collapse the historically-adversarial board).
    let spec = &fixture.case.board.spec;
    assert_eq!((spec.nx, spec.ny), (5, 5));
    assert_eq!(spec.die_ports, vec![(2, 2)]);
    assert_eq!(spec.decap_ports.len(), 4);
    assert_eq!(fixture.case.board.decap_models.len(), 4);
    assert_eq!(fixture.case.flow.vf.n_poles, 22);
    assert!(fixture.pinned_iterations > 0);
    // Byte-stable round trip: parse ∘ serialize = identity on the file.
    assert_eq!(fixture.serialize(), text);
    // The scenario assembles and solves without running the flow.
    let (pdn, data, _network, observation_port) = fixture.case.assemble().unwrap();
    assert_eq!(pdn.ports(), 6);
    assert_eq!(observation_port, pdn.die_ports[0]);
    assert_eq!(data.grid().len(), fixture.case.frequency_samples + 1);
    // The committed fixture pins the in-code regime; the two must not
    // drift apart.
    let regime = dense_decap_divergence_case();
    assert_eq!(regime.board.spec, fixture.case.board.spec);
    assert_eq!(regime.flow.vf.n_poles, fixture.case.flow.vf.n_poles);
}

/// The promoted convergence regression (formerly the divergence replay):
/// replaying the committed fixture must *converge* through the recovery
/// ladder — no divergence guard, a delivered model, the delivery rung and
/// the audit recorded — reproducing the pinned verdict exactly.
/// Release-only: the order-22 6-port flow is slow in debug (CI runs it in
/// the release test step).
#[test]
#[ignore = "order-22 6-port board: slow in debug, run by the CI release test step"]
fn dense_decap_fixture_replays_to_convergence() {
    let text = std::fs::read_to_string(DENSE_DECAP_FIXTURE).unwrap();
    let fixture = MinimizedFixture::parse(&text).unwrap();
    let verdict = fixture.replay();
    assert_ne!(
        verdict.class,
        CorpusClass::Diverged,
        "the historical divergence regime must converge through the recovery \
         ladder ({}) — if this regressed, the robustness layer changed; \
         re-pin the fixture and update the EXPERIMENTS story",
        verdict.detail
    );
    assert_eq!(verdict.class, fixture.class, "replay must reproduce the pinned class");
    assert_eq!(
        verdict.iterations, fixture.pinned_iterations,
        "the delivering enforcement must match the pinned iteration count"
    );
    assert_eq!(verdict.detail, fixture.detail, "replay must reproduce the pinned detail");
    let rung = verdict.rung.expect("a completed flow carries its delivery rung");
    assert!(
        rung > RecoveryRung::Primary,
        "the regime diverges under the primary enforcement; delivery must \
         come from a recovery rung, got {rung}"
    );
    let sigma = verdict.audit_sigma_max.expect("completed flows carry the 16x audit");
    assert!(sigma.is_finite() && sigma > 0.0, "audit sigma_max {sigma}");
}

/// Seeded corpus smoke run: every seed of the trimmed configuration yields
/// a verdict whose fields are self-consistent with its class, and repeating
/// the run reproduces the verdicts exactly.
#[test]
fn seeded_corpus_run_classifies_consistently_and_reproduces() {
    let config = pim_bench::corpus_smoke_config();
    let seeds: Vec<u64> = (0..4).collect();
    let verdicts = Corpus::run(&config, &seeds);
    assert_eq!(verdicts.len(), seeds.len());
    for (v, &seed) in verdicts.iter().zip(&seeds) {
        assert_eq!(v.seed, seed);
        match v.class {
            CorpusClass::Certified => {
                let sigma = v.audit_sigma_max.expect("certified implies an audit");
                assert!(sigma <= 1.0 + config.sigma_tolerance, "seed {seed}: {sigma}");
                let weighted = v.weighted_error.expect("certified implies evaluation");
                if let Some(standard) = v.standard_error {
                    assert!(weighted < standard, "seed {seed}: gate 2 must hold");
                }
                assert!(v.rung.is_some(), "seed {seed}: completed flows carry the rung");
            }
            CorpusClass::Adverse => {
                assert!(v.audit_sigma_max.is_some(), "adverse implies a completed flow");
                assert!(v.rung.is_some(), "seed {seed}: completed flows carry the rung");
                assert!(!v.detail.is_empty());
            }
            CorpusClass::Diverged => {
                assert!(v.iterations > 0, "divergence carries the failing iteration");
                assert!(v.rung.is_none(), "diverged flows deliver no model, hence no rung");
            }
            CorpusClass::Failed => {
                assert!(!v.detail.is_empty(), "failures must carry a reason");
            }
        }
    }
    // The corpus is deterministic: the same (config, seeds) run reproduces
    // every verdict, bit for bit (PartialEq covers the f64 fields).
    let again = Corpus::run(&config, &seeds);
    assert_eq!(verdicts, again);
}

/// Trust-region-era descent invariant, swept across corpus seeds: every
/// accepted enforcement iteration either decreases `σ_max` or had its
/// backtracking bottom out at the minimum step (1/16) — growth at larger
/// steps would mean the line search accepted a worsening move, which it
/// never does. Converged enforcements additionally show strict net descent.
#[test]
fn enforcement_iterations_descend_or_bottom_out_across_corpus_seeds() {
    let config = pim_bench::corpus_smoke_config();
    for seed in (0..64).step_by(8) {
        let case = Corpus::case(&config, seed).expect("generator");
        let (_pdn, data, network, observation_port) = case.assemble().expect("assemble");
        let mut trace = TraceObserver::new();
        let mut pipeline =
            Pipeline::from_data(&data, &network, observation_port, case.flow.clone())
                .unwrap()
                .with_observer(&mut trace);
        // Failures are fine here (some seeds legitimately diverge): the
        // invariant is on the recorded iterations either way.
        let converged = pipeline.report().is_ok();
        drop(pipeline);
        for (kind, ev) in &trace.iterations {
            assert!(
                ev.sigma_after < ev.sigma_before || ev.step <= 1.0 / 16.0 + 1e-12,
                "seed {seed} {kind} iteration {}: sigma grew {} -> {} at step {}",
                ev.iteration,
                ev.sigma_before,
                ev.sigma_after,
                ev.step
            );
        }
        if converged && !trace.iterations.is_empty() {
            let first = trace.iterations.first().unwrap().1.sigma_before;
            let last = trace.iterations.last().unwrap().1.sigma_after;
            assert!(
                last < first,
                "seed {seed}: converged enforcement must show net descent ({first} -> {last})"
            );
        }
    }
}

/// The full recovery ladder is bit-identical across thread counts: the
/// dense-decap regime (primary divergence + ladder delivery) classifies to
/// the same verdict — every f64 field included — on 1 and 4 threads.
/// Release-only for the same reason as the replay above.
#[test]
#[ignore = "order-22 6-port board: slow in debug, run by the CI release test step"]
fn recovery_ladder_is_bit_identical_across_thread_counts() {
    let config = pim_bench::corpus_smoke_config();
    // Smoke-config boards plus the canonical dense-decap regime: the former
    // exercise the happy path cheaply, the latter walks the full ladder.
    let seeds: Vec<u64> = (0..4).collect();
    let serial = Corpus::run_with(&ThreadPool::new(1), &config, &seeds);
    let parallel = Corpus::run_with(&ThreadPool::new(4), &config, &seeds);
    assert_eq!(serial, parallel, "corpus verdicts drifted across thread counts");

    let case = dense_decap_divergence_case();
    let a = case.classify();
    let b = case.classify();
    assert_eq!(a, b, "dense-decap classification must be deterministic");
    assert!(a.rung.is_some_and(|r| r > RecoveryRung::Primary));
}
