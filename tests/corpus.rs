//! Integration tests of the stress-corpus harness: the committed minimized
//! divergence fixture, its replay regression, and a seeded corpus smoke run
//! with classification invariants.

use pim_repro::core_flow::corpus::dense_decap_divergence_case;
use pim_repro::core_flow::{Corpus, CorpusClass, MinimizedFixture};

/// The committed minimized fixture of the known 5×5 dense-decap divergence
/// (ROADMAP PR 3 note). Regenerate with
/// `cargo run --release -p pim-bench --bin corpus_report -- --minimize-dense-decap tests/fixtures/corpus/dense-decap-5x5.fixture`.
const DENSE_DECAP_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/corpus/dense-decap-5x5.fixture");

/// Fast guard on the committed artifact: it must parse, describe the known
/// divergence regime, re-serialize byte-identically, assemble into a
/// solvable scenario, and stay in sync with the in-code regime description
/// it was minimized from.
#[test]
fn committed_dense_decap_fixture_parses_builds_and_round_trips() {
    let text = std::fs::read_to_string(DENSE_DECAP_FIXTURE)
        .expect("committed fixture missing; regenerate with corpus_report --minimize-dense-decap");
    let fixture = MinimizedFixture::parse(&text).unwrap();
    assert_eq!(fixture.class, CorpusClass::Diverged);
    // The minimizer found the historical regime already minimal under its
    // shrink moves: the full 5×5 ring with four bulk banks at order 22.
    let spec = &fixture.case.board.spec;
    assert_eq!((spec.nx, spec.ny), (5, 5));
    assert_eq!(spec.die_ports, vec![(2, 2)]);
    assert_eq!(spec.decap_ports.len(), 4);
    assert_eq!(fixture.case.board.decap_models.len(), 4);
    assert_eq!(fixture.case.flow.vf.n_poles, 22);
    // The guard fired early: the pinned iteration count is strictly inside
    // the enforcement budget.
    assert!(fixture.pinned_iterations > 0);
    assert!(fixture.pinned_iterations < fixture.case.flow.enforcement.max_iterations);
    // Byte-stable round trip: parse ∘ serialize = identity on the file.
    assert_eq!(fixture.serialize(), text);
    // The scenario assembles and solves without running the flow.
    let (pdn, data, _network, observation_port) = fixture.case.assemble().unwrap();
    assert_eq!(pdn.ports(), 6);
    assert_eq!(observation_port, pdn.die_ports[0]);
    assert_eq!(data.grid().len(), fixture.case.frequency_samples + 1);
    // The committed fixture is the minimization of the in-code regime; the
    // two must not drift apart.
    let regime = dense_decap_divergence_case();
    assert_eq!(regime.board.spec, fixture.case.board.spec);
    assert_eq!(regime.flow.vf.n_poles, fixture.case.flow.vf.n_poles);
}

/// The promoted divergence regression (formerly the ignored diagnostic in
/// `tests/fig5_anomaly.rs`): replaying the committed fixture must diverge —
/// `NotConverged` with the best-so-far model populated — and the divergence
/// guard must fire within the pinned iteration budget. Release-only: the
/// order-22 6-port flow is slow in debug (CI runs it in the diagnostics
/// step).
#[test]
#[ignore = "order-22 6-port board: slow in debug, run by the CI diagnostics step"]
fn dense_decap_fixture_replays_to_divergence() {
    let text = std::fs::read_to_string(DENSE_DECAP_FIXTURE).unwrap();
    let fixture = MinimizedFixture::parse(&text).unwrap();
    let verdict = fixture.replay();
    assert_eq!(
        verdict.class,
        CorpusClass::Diverged,
        "the committed regime no longer diverges ({}) — the numerics changed; \
         re-minimize the fixture and update the ROADMAP story",
        verdict.detail
    );
    assert!(verdict.best_available, "the divergence guard must hand back the best-so-far model");
    assert!(
        verdict.iterations <= fixture.pinned_iterations,
        "guard fired at iteration {} but the fixture pins {}",
        verdict.iterations,
        fixture.pinned_iterations
    );
    assert!(
        verdict.iterations < fixture.case.flow.enforcement.max_iterations,
        "the guard must trip before the enforcement budget"
    );
}

/// Seeded corpus smoke run: every seed of the trimmed configuration yields
/// a verdict whose fields are self-consistent with its class, and repeating
/// the run reproduces the verdicts exactly.
#[test]
fn seeded_corpus_run_classifies_consistently_and_reproduces() {
    let config = pim_bench::corpus_smoke_config();
    let seeds: Vec<u64> = (0..4).collect();
    let verdicts = Corpus::run(&config, &seeds);
    assert_eq!(verdicts.len(), seeds.len());
    for (v, &seed) in verdicts.iter().zip(&seeds) {
        assert_eq!(v.seed, seed);
        match v.class {
            CorpusClass::Certified => {
                let sigma = v.audit_sigma_max.expect("certified implies an audit");
                assert!(sigma <= 1.0 + config.sigma_tolerance, "seed {seed}: {sigma}");
                let weighted = v.weighted_error.expect("certified implies evaluation");
                if let Some(standard) = v.standard_error {
                    assert!(weighted < standard, "seed {seed}: gate 2 must hold");
                }
            }
            CorpusClass::Adverse => {
                assert!(v.audit_sigma_max.is_some(), "adverse implies a completed flow");
                assert!(!v.detail.is_empty());
            }
            CorpusClass::Diverged => {
                assert!(v.iterations > 0, "divergence carries the failing iteration");
            }
            CorpusClass::Failed => {
                assert!(!v.detail.is_empty(), "failures must carry a reason");
            }
        }
    }
    // The corpus is deterministic: the same (config, seeds) run reproduces
    // every verdict, bit for bit (PartialEq covers the f64 fields).
    let again = Corpus::run(&config, &seeds);
    assert_eq!(verdicts, again);
}
