//! Workspace root crate: re-exports the component crates so that the
//! examples in `examples/` and the integration tests in `tests/` can use a
//! single dependency, and defines the unified [`PimError`] so application
//! code can `?` across stage boundaries. See the individual crates for the
//! actual library API, `README.md` for the workspace layout, and `PAPER.md`
//! for the algorithm the workspace reproduces.
//!
//! # Example
//!
//! The staged [`Pipeline`](core_flow::Pipeline) is the primary entry point:
//! build a scenario (here the reduced synthetic PDN), then run exactly the
//! stages you need — each call returns an owned artifact and caches it, so
//! later stages (or a final [`report()`](core_flow::Pipeline::report)) reuse
//! the work. The one-shot [`core_flow::run_flow`] remains as a compatibility
//! wrapper producing the identical `FlowReport`.
//!
//! ```
//! use pim_repro::core_flow::{FitKind, FlowConfig, Pipeline, StandardScenario};
//! use pim_repro::passivity::grid::Adaptive;
//! use pim_repro::vectfit::VfConfig;
//! use pim_repro::PimError;
//!
//! # fn main() -> Result<(), PimError> {
//! let scenario = StandardScenario::reduced()?;
//!
//! // A light configuration for the doc test; FlowConfig::default() is the
//! // paper-faithful one. The `sampling` builder picks the sweep-grid
//! // strategy: `Adaptive` bisects toward violation bands narrower than
//! // the grid spacing (the default `CrossingRefined` reproduces the
//! // historical grids bit for bit).
//! let config = FlowConfig { vf: VfConfig::with_order(10).iterations(3), ..Default::default() };
//! let mut pipeline =
//!     Pipeline::from_scenario(&scenario, config)?.sampling(Adaptive::default());
//!
//! // Sensitivity of the target impedance to scattering perturbations
//! // (eq. 5–6): large at low frequency, small at the top of the band.
//! let sensitivity = pipeline.sensitivity()?;
//! assert!(sensitivity.sensitivity[1] > *sensitivity.sensitivity.last().unwrap());
//!
//! // Sensitivity-weighted Vector Fitting of the scattering data.
//! let fit = pipeline.fit(FitKind::Weighted)?;
//! assert!(fit.result.rms_error.is_finite() && fit.result.rms_error < 0.1);
//!
//! // Hamiltonian passivity assessment of the fitted macromodel: the
//! // report records the provenance-tagged grid the sweep actually ran on.
//! let assessment = pipeline.assess()?;
//! assert!(assessment.sigma_max_before > 0.0);
//! assert!(!assessment.report.grid.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! The full flow — including the weighted residue-perturbation passivity
//! enforcement and the standard-norm baseline — is
//! [`core_flow::Pipeline::report`]
//! (`cargo run --release --example quickstart`), and
//! [`core_flow::Pipeline::sweep`] batches it over
//! [`core_flow::ScenarioPreset`]s.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;

pub use error::{PimError, Result};

pub use pim_circuit as circuit;
pub use pim_core as core_flow;
pub use pim_linalg as linalg;
pub use pim_passivity as passivity;
pub use pim_pdn as pdn;
pub use pim_rfdata as rfdata;
pub use pim_runtime as runtime;
pub use pim_statespace as statespace;
pub use pim_vectfit as vectfit;
