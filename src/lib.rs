//! Workspace root crate: re-exports the component crates so that the
//! examples in `examples/` and the integration tests in `tests/` can use a
//! single dependency. See the individual crates for the actual library API,
//! `README.md` for the workspace layout, and `PAPER.md` for the algorithm
//! the workspace reproduces.
//!
//! # Example
//!
//! A condensed version of the paper's flow — build the synthetic PDN
//! scenario, extract the target-impedance sensitivity (eq. 5), run a
//! sensitivity-weighted Vector Fit (eq. 3–4 with the weights of eq. 6), and
//! assess the passivity of the resulting macromodel:
//!
//! ```
//! use pim_repro::core_flow::StandardScenario;
//! use pim_repro::passivity::check::assess;
//! use pim_repro::pdn::analytic_sensitivity;
//! use pim_repro::pdn::sensitivity::sensitivity_to_weights;
//! use pim_repro::vectfit::{vector_fit, VfConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = StandardScenario::reduced()?;
//!
//! // Sensitivity of the target impedance to scattering perturbations.
//! let xi = analytic_sensitivity(&scenario.data, &scenario.network, scenario.observation_port)?;
//! let weights = sensitivity_to_weights(&xi, 1e-2)?;
//!
//! // Sensitivity-weighted Vector Fitting of the scattering data.
//! let cfg = VfConfig { n_poles: 10, n_iterations: 3, ..VfConfig::default() };
//! let fit = vector_fit(&scenario.data, Some(&weights), &cfg)?;
//! assert!(fit.rms_error.is_finite() && fit.rms_error < 0.1);
//!
//! // Hamiltonian passivity assessment of the fitted macromodel.
//! let report = assess(&fit.model, &scenario.data.grid().omegas())?;
//! assert!(report.sigma_max > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! The full flow — including the weighted residue-perturbation passivity
//! enforcement — is wrapped by [`core_flow::run_flow`]
//! (`cargo run --release --example quickstart`).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use pim_circuit as circuit;
pub use pim_core as core_flow;
pub use pim_linalg as linalg;
pub use pim_passivity as passivity;
pub use pim_pdn as pdn;
pub use pim_rfdata as rfdata;
pub use pim_statespace as statespace;
pub use pim_vectfit as vectfit;
