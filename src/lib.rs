//! Workspace root crate: re-exports the component crates so that the
//! examples in `examples/` and the integration tests in `tests/` can use a
//! single dependency. See the individual crates for the actual library API.

pub use pim_circuit as circuit;
pub use pim_core as core_flow;
pub use pim_linalg as linalg;
pub use pim_passivity as passivity;
pub use pim_pdn as pdn;
pub use pim_rfdata as rfdata;
pub use pim_statespace as statespace;
pub use pim_vectfit as vectfit;
