//! The unified workspace error type.
//!
//! Every component crate defines its own error enum (`LinalgError`,
//! `VectFitError`, `PassivityError`, ...). Downstream code that crosses
//! stage boundaries — build a scenario (`CircuitError`), fit it
//! (`VectFitError`), enforce passivity (`PassivityError`) — previously had
//! to erase them into `Box<dyn Error>`. [`PimError`] is the typed union:
//! `From` impls exist for every crate error, so `?` works across any
//! combination of stages, and [`CoreError`](pim_core::CoreError) is
//! *flattened* into the underlying component variant rather than nested.

use std::error::Error;
use std::fmt;

/// Unified error for the whole reproduction workspace.
#[derive(Debug)]
pub enum PimError {
    /// Linear algebra kernel failure (`pim-linalg`).
    Linalg(pim_linalg::LinalgError),
    /// Frequency-data handling failure (`pim-rfdata`).
    RfData(pim_rfdata::RfDataError),
    /// Model manipulation failure (`pim-statespace`).
    StateSpace(pim_statespace::StateSpaceError),
    /// Rational fitting failure (`pim-vectfit`).
    VectFit(pim_vectfit::VectFitError),
    /// Passivity assessment / enforcement failure (`pim-passivity`).
    Passivity(pim_passivity::PassivityError),
    /// PDN analysis failure (`pim-pdn`).
    Pdn(pim_pdn::PdnError),
    /// Synthetic circuit failure (`pim-circuit`).
    Circuit(pim_circuit::CircuitError),
    /// Accuracy-contract violation under
    /// [`ContractPolicy::Refuse`](pim_core::ContractPolicy::Refuse)
    /// (`pim-core`): the delivered model fell outside the certified
    /// envelope and the flow refused to deliver it.
    ContractViolation(Box<pim_core::AccuracyContract>),
    /// Invalid configuration or inconsistent inputs (any layer).
    InvalidInput(String),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PimError::RfData(e) => write!(f, "data handling failure: {e}"),
            PimError::StateSpace(e) => write!(f, "model manipulation failure: {e}"),
            PimError::VectFit(e) => write!(f, "rational fitting failure: {e}"),
            PimError::Passivity(e) => write!(f, "passivity failure: {e}"),
            PimError::Pdn(e) => write!(f, "pdn analysis failure: {e}"),
            PimError::Circuit(e) => write!(f, "circuit failure: {e}"),
            PimError::ContractViolation(c) => write!(f, "accuracy contract violated: {c}"),
            PimError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for PimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PimError::Linalg(e) => Some(e),
            PimError::RfData(e) => Some(e),
            PimError::StateSpace(e) => Some(e),
            PimError::VectFit(e) => Some(e),
            PimError::Passivity(e) => Some(e),
            PimError::Pdn(e) => Some(e),
            PimError::Circuit(e) => Some(e),
            PimError::ContractViolation(_) => None,
            PimError::InvalidInput(_) => None,
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for PimError {
            fn from(e: $ty) -> Self {
                PimError::$variant(e)
            }
        }
    };
}

impl_from!(Linalg, pim_linalg::LinalgError);
impl_from!(RfData, pim_rfdata::RfDataError);
impl_from!(StateSpace, pim_statespace::StateSpaceError);
impl_from!(VectFit, pim_vectfit::VectFitError);
impl_from!(Passivity, pim_passivity::PassivityError);
impl_from!(Pdn, pim_pdn::PdnError);
impl_from!(Circuit, pim_circuit::CircuitError);

impl From<pim_core::CoreError> for PimError {
    fn from(e: pim_core::CoreError) -> Self {
        use pim_core::CoreError;
        match e {
            CoreError::Linalg(e) => PimError::Linalg(e),
            CoreError::RfData(e) => PimError::RfData(e),
            CoreError::StateSpace(e) => PimError::StateSpace(e),
            CoreError::VectFit(e) => PimError::VectFit(e),
            CoreError::Passivity(e) => PimError::Passivity(e),
            CoreError::Pdn(e) => PimError::Pdn(e),
            CoreError::Circuit(e) => PimError::Circuit(e),
            CoreError::ContractViolation(c) => PimError::ContractViolation(c),
            CoreError::InvalidInput(msg) => PimError::InvalidInput(msg),
        }
    }
}

/// Result alias over [`PimError`] for downstream application code.
pub type Result<T> = std::result::Result<T, PimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_flatten_into_component_variants() {
        let core = pim_core::CoreError::InvalidInput("bad".into());
        match PimError::from(core) {
            PimError::InvalidInput(msg) => assert_eq!(msg, "bad"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        let core = pim_core::CoreError::Passivity(pim_passivity::PassivityError::NotConverged {
            iterations: 3,
            sigma_max: 1.2,
            best: None,
            diagnostics: Box::default(),
        });
        let err = PimError::from(core);
        assert!(matches!(err, PimError::Passivity(_)));
        assert!(err.to_string().contains("passivity failure"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn question_mark_works_across_stage_boundaries() {
        fn cross_stage() -> Result<usize> {
            // CircuitError and PassivityError in the same function body.
            let board = pim_circuit::standard_board()?;
            let kind = pim_passivity::NormKind::Standard;
            assert_eq!(kind.to_string(), "standard");
            Ok(board.ports())
        }
        assert_eq!(cross_stage().unwrap(), 8);
    }
}
